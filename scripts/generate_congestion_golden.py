#!/usr/bin/env python
"""Regenerate the golden congestion-study output.

Usage::

    PYTHONPATH=src python scripts/generate_congestion_golden.py

Writes ``tests/analysis/golden_congestion.json``: the exact floats and
strategy rankings of :func:`repro.analysis.congestion_study.run_congestion_study`
on its default grid, which the golden test compares with strict equality.
The study's point is the pinned ranking flip (the analytic engine and the
contention-aware network engine prefer different strategy orders on the
torus), so rerun this script only when an engine or cost-model change is
intended, and say so in the commit message.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.congestion_study import run_congestion_study  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests",
    "analysis",
    "golden_congestion.json",
)


def main() -> int:
    study = run_congestion_study()
    payload = {"num_flips": study.num_flips, "rows": study.as_rows()}
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(study.describe())
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
