#!/usr/bin/env python
"""Regenerate the golden study outputs pinned by tests/analysis/test_golden_studies.py.

Usage::

    PYTHONPATH=src python scripts/generate_study_goldens.py

Writes ``tests/analysis/golden_studies.json``: the figure-level numbers of
every `repro.analysis` study (Figures 6-13 plus the sensitivity sweeps) at
full float precision.  The golden tests compare freshly computed studies
against this file with exact equality, so any change to the cost model, the
search, the simulator or the sweep engine that moves a figure output shows
up as a diff.  Rerun this script only when an output change is intended,
and say so in the commit message.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.experiments import ExperimentRunner  # noqa: E402
from repro.analysis.exploration import ParallelismExplorer  # noqa: E402
from repro.analysis.scalability import run_scalability_study  # noqa: E402
from repro.analysis.sensitivity import (  # noqa: E402
    batch_size_sensitivity,
    link_bandwidth_sensitivity,
    precision_sensitivity,
)
from repro.analysis.topology_study import run_topology_study  # noqa: E402
from repro.analysis.trick_study import run_trick_study  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests",
    "analysis",
    "golden_studies.json",
)


def _exploration_payload(result) -> dict:
    return {
        "model_name": result.model_name,
        "free_positions": [list(position) for position in result.free_positions],
        "hypar_performance": result.hypar_performance,
        "points": [
            {"bits": point.bits, "normalized_performance": point.normalized_performance}
            for point in result.points
        ],
        "peak_bits": result.peak.bits,
        "hypar_is_peak": result.hypar_is_peak,
    }


def build_goldens() -> dict:
    runner = ExperimentRunner()
    evaluation = runner.run()
    explorer = ParallelismExplorer()
    scalability = run_scalability_study()
    topology = run_topology_study()
    trick = run_trick_study()

    return {
        "figures_6_to_8": {
            "performance": evaluation.performance(),
            "energy_efficiency": evaluation.energy_efficiency(),
            "communication_gb": evaluation.communication(),
            "formatted": evaluation.format(),
        },
        "figure_9_lenet": _exploration_payload(explorer.explore_lenet()),
        "figure_10_vgg_a": _exploration_payload(explorer.explore_vgg_a()),
        "figure_11_scalability": {
            "model_name": scalability.model_name,
            "single_accelerator_seconds": scalability.single_accelerator_seconds,
            "rows": scalability.as_rows(),
        },
        "figure_12_topology": {
            "rows": topology.as_rows(),
            "gmean_htree": topology.gmean_htree(),
            "gmean_torus": topology.gmean_torus(),
        },
        "figure_13_trick": {
            "rows": trick.as_rows(),
            "gmean_performance": trick.gmean_performance(),
            "gmean_energy": trick.gmean_energy(),
        },
        "sensitivity_batch_size": {"rows": batch_size_sensitivity().as_rows()},
        "sensitivity_link_bandwidth": {"rows": link_bandwidth_sensitivity().as_rows()},
        "sensitivity_precision": {"rows": precision_sensitivity().as_rows()},
    }


def main() -> int:
    goldens = build_goldens()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
