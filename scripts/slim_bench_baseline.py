#!/usr/bin/env python
"""Slim a pytest-benchmark JSON file to the committed summary baseline.

``pytest-benchmark --benchmark-json`` output carries every raw timing
sample plus the full machine description -- ~12.5k lines for the search
suite.  The regression guardrail only consumes the per-benchmark mean (and
the recorded ``extra_info`` speedups), so the committed baseline keeps
summary statistics only::

    PYTHONPATH=src python -m pytest benchmarks/bench_search_performance.py \
        benchmarks/bench_sweep_throughput.py --benchmark-only \
        --benchmark-json=bench_full.json
    python scripts/slim_bench_baseline.py bench_full.json BENCH_search.json

``scripts/check_bench_regression.py`` reads both the full pytest-benchmark
format and this summary format interchangeably.
"""

from __future__ import annotations

import argparse
import json
import sys

SUMMARY_FORMAT = "hypar-bench-summary/1"

#: The per-benchmark summary statistics kept in the slim baseline.
SUMMARY_STATS = ("mean", "stddev", "rounds")


def slim(payload: dict) -> dict:
    """The summary document of one full pytest-benchmark payload."""
    machine = payload.get("machine_info", {})
    benchmarks = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "fullname": bench["fullname"],
                "stats": {key: stats.get(key) for key in SUMMARY_STATS},
                "extra_info": bench.get("extra_info", {}),
            }
        )
    return {
        "format": SUMMARY_FORMAT,
        "datetime": payload.get("datetime"),
        "machine": {
            "cpu_brand": machine.get("cpu", {}).get("brand_raw"),
            "python_version": machine.get("python_version"),
            "system": machine.get("system"),
        },
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("source", help="full pytest-benchmark JSON file")
    parser.add_argument("target", help="summary baseline to write")
    args = parser.parse_args(argv)

    with open(args.source) as handle:
        payload = json.load(handle)
    if payload.get("format") == SUMMARY_FORMAT:
        print(f"error: {args.source} is already a summary baseline")
        return 2
    summary = slim(payload)
    with open(args.target, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.target}: {len(summary['benchmarks'])} benchmarks "
        f"({SUMMARY_FORMAT})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
