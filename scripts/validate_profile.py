#!/usr/bin/env python
"""Validate hypar-profile/v1 JSON packs before they reach the cost model.

Usage::

    python scripts/validate_profile.py src/repro/core/profiles/*.json

Each argument is checked against the ``hypar-profile/v1`` schema that
:mod:`repro.core.costmodel` enforces at load time (same validator, so a
pack this script accepts is a pack ``--cost-model profiled:<path>``
accepts).  On success the fitted summary is printed -- the intra/inter
bandwidth scales, the latency-equivalent bytes and any per-layer scales
-- which is usually enough to eyeball whether a hand-edited pack says
what its author meant.

Exit codes:

* 0 -- every file is valid;
* 1 -- at least one file parsed as JSON but failed schema validation
  (every violation is listed, one per line);
* 2 -- at least one file could not be read or is not JSON at all.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _import_costmodel():
    """Import repro.core.costmodel, adding src/ to the path if needed."""
    try:
        from repro.core import costmodel
    except ImportError:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        sys.path.insert(0, src)
        from repro.core import costmodel
    return costmodel


def _check_file(path: str, costmodel) -> int:
    """Validate one pack; returns its exit-code contribution (0, 1 or 2)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        print(f"{path}: cannot read: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"{path}: not valid JSON: {error}", file=sys.stderr)
        return 2
    errors = costmodel.validate_profile_payload(payload)
    if errors:
        for message in errors:
            print(f"{path}: {message}", file=sys.stderr)
        return 1
    model = costmodel.ProfiledCostModel(payload, source=path)
    report = model.fit_report()
    layer_scales = report["layer_scales"]
    layers = (
        ", ".join(f"{name}={scale:g}" for name, scale in sorted(layer_scales.items()))
        if layer_scales
        else "none"
    )
    print(
        f"{path}: ok ({report['name']}: intra x{report['intra_scale']:g}, "
        f"inter x{report['inter_scale']:g}, "
        f"latency {report['inter_latency_bytes']:g} B, layers: {layers})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate hypar-profile/v1 cost-model profile packs."
    )
    parser.add_argument("profiles", nargs="+", metavar="FILE", help="profile JSON files")
    args = parser.parse_args(argv)
    costmodel = _import_costmodel()
    # The worst failure class wins the exit code: unreadable (2) over
    # schema-invalid (1) over valid (0), so automation can distinguish
    # "fix the JSON" from "fix the numbers".
    worst = 0
    for path in args.profiles:
        worst = max(worst, _check_file(path, costmodel))
    return worst


if __name__ == "__main__":
    sys.exit(main())
