#!/usr/bin/env python
"""Fail when search/sweep benchmarks regress against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_search_performance.py \
        benchmarks/bench_sweep_throughput.py --benchmark-only \
        --benchmark-json=bench_current.json
    python scripts/check_bench_regression.py BENCH_search.json bench_current.json

Compares the mean latency of every benchmark present in both files and
exits non-zero when any regresses by more than the threshold (20% by
default, overridable with ``--threshold``).  Also re-checks the recorded
``speedup_vs_reference`` extra-info values against the acceptance floor of
20x, so the vectorized engine cannot silently fall back below its bar even
if it stays self-consistent between runs.

Both sides accept either the full ``pytest-benchmark`` JSON format or the
slim summary baseline written by ``scripts/slim_bench_baseline.py`` (the
committed ``BENCH_search.json`` is the latter: per-benchmark
mean/stddev/rounds plus ``extra_info``, without the raw samples).

Absolute latencies are machine-specific: the committed baseline is only
meaningful on hardware comparable to the machine that produced it.  On a
different machine, regenerate the baseline once (the pytest command above
with ``--benchmark-json=BENCH_search.json``) and compare subsequent runs
against that.  The ``speedup_vs_reference`` floor is self-relative (both
paths run in the same process) and holds on any machine.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Acceptance floor for the vectorized-vs-object-path speedups recorded by
#: benchmarks/bench_sweep_throughput.py.
MIN_SPEEDUP = 20.0


def load_benchmarks(path: str) -> dict[str, dict]:
    """Benchmarks keyed by fullname, from either supported format.

    The full pytest-benchmark payload and the slim summary baseline both
    carry ``benchmarks`` entries with ``fullname``, ``stats.mean`` and
    ``extra_info``, so a single mapping serves both; the ``format`` marker
    merely distinguishes them for error messages.
    """
    with open(path) as handle:
        payload = json.load(handle)
    benchmarks = payload.get("benchmarks")
    if benchmarks is None:
        raise SystemExit(
            f"error: {path} is neither a pytest-benchmark JSON nor a "
            "summary baseline (no 'benchmarks' key)"
        )
    return {bench["fullname"]: bench for bench in benchmarks}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (BENCH_search.json)")
    parser.add_argument("current", help="freshly produced --benchmark-json output")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated relative mean-latency regression (default 0.20)",
    )
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: the two benchmark files have no benchmarks in common")
        return 2

    failures: list[str] = []
    for name in shared:
        base_mean = baseline[name]["stats"]["mean"]
        new_mean = current[name]["stats"]["mean"]
        ratio = new_mean / base_mean if base_mean > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: mean {base_mean * 1e3:.3f} ms -> {new_mean * 1e3:.3f} ms "
                f"({ratio:.2f}x, limit {1.0 + args.threshold:.2f}x)"
            )
        print(f"{status:>10}  {name}: {base_mean * 1e3:.3f} ms -> {new_mean * 1e3:.3f} ms ({ratio:.2f}x)")

        # The baseline defines which benchmarks must carry a measured
        # speedup: dropping the extra_info in a refactor must not silently
        # disable the floor check.
        speedup = current[name].get("extra_info", {}).get("speedup_vs_reference")
        if baseline[name].get("extra_info", {}).get("speedup_vs_reference") is not None:
            if speedup is None:
                failures.append(
                    f"{name}: baseline records speedup_vs_reference but the "
                    "current run does not — the floor check was skipped"
                )
            elif speedup < MIN_SPEEDUP:
                failures.append(
                    f"{name}: speedup over the object-path reference fell to "
                    f"{speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)"
                )

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"   missing  {name}: present in baseline but not in current run")
        failures.append(
            f"{name}: present in baseline but missing from the current run "
            "(run the full benchmark set named in the baseline)"
        )

    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark regression check passed ({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
