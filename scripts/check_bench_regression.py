#!/usr/bin/env python
"""Fail when search/sweep benchmarks regress against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_search_performance.py \
        benchmarks/bench_sweep_throughput.py --benchmark-only \
        --benchmark-json=bench_current.json
    python scripts/check_bench_regression.py BENCH_search.json bench_current.json

Compares the mean latency of every benchmark present in both files and
exits non-zero when any regresses by more than the threshold (20% by
default, overridable with ``--threshold``).  Also re-checks the recorded
speedup extra-info values against their acceptance floors --
``speedup_vs_reference`` >= 20x (the vectorized engine over the object
path), ``warm_vs_cold_speedup`` >= 10x (the service's warm requests over
a cold CLI run) and ``deep_dp_speedup`` >= 10x (the memoized chain DP
over the cold layer loop on the 1024-block transformer) -- so none can
silently fall below its bar even if it stays self-consistent between
runs.

Both sides accept either the full ``pytest-benchmark`` JSON format or the
slim summary baseline written by ``scripts/slim_bench_baseline.py`` (the
committed ``BENCH_search.json`` is the latter: per-benchmark
mean/stddev/rounds plus ``extra_info``, without the raw samples).

Absolute latencies are machine-specific: the committed baseline is only
meaningful on hardware comparable to the machine that produced it.  On a
different machine, regenerate the baseline once (the pytest command above
with ``--benchmark-json=BENCH_search.json``) and compare subsequent runs
against that.  The ``speedup_vs_reference`` floor is self-relative (both
paths run in the same process) and holds on any machine.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Acceptance floors for speedups recorded in ``benchmark.extra_info``:
#: the vectorized-vs-object-path ratio of bench_sweep_throughput.py and
#: the warm-service-vs-cold-CLI ratio of bench_service_throughput.py.
#: Whenever the committed baseline records one of these keys, the current
#: run must record it too and clear the floor.
SPEEDUP_FLOORS = {
    "speedup_vs_reference": 20.0,
    "warm_vs_cold_speedup": 10.0,
    # Block-repetition memoized chain DP over the gpt_s --layers 1024
    # deep transformer vs the cold NumPy layer loop
    # (bench_search_performance.py::test_deep_transformer_dp_memoized).
    "deep_dp_speedup": 10.0,
    # Compiled (numba) kernels vs the NumPy oracle, measured in-process
    # by bench_search_performance.py on machines with numba installed:
    # the DAG cut-vertex DP (test_dag_dp_compiled) and the hierarchical
    # level scorer (test_hierarchical_scoring_compiled).  These benches
    # skip without numba -- a baseline regenerated on a numba-less
    # machine omits them -- so the floors are also enforced on
    # current-run-only benchmarks (see below).
    "dag_compiled_speedup": 2.0,
    "hier_compiled_speedup": 2.0,
    "hier_parallel_speedup": 2.0,
}


def load_benchmarks(path: str, role: str) -> dict[str, dict]:
    """Benchmarks keyed by fullname, from either supported format.

    The full pytest-benchmark payload and the slim summary baseline both
    carry ``benchmarks`` entries with ``fullname``, ``stats.mean`` and
    ``extra_info``, so a single mapping serves both; the ``format`` marker
    merely distinguishes them for error messages.

    A missing, empty or unparseable file -- typically the *current*
    results file when the benchmark run died before ``--benchmark-json``
    wrote anything -- exits non-zero with a message saying so, instead of
    a traceback.
    """
    try:
        with open(path) as handle:
            content = handle.read()
    except OSError as error:
        raise SystemExit(
            f"error: cannot read the {role} results file {path!r} ({error}); "
            "did the benchmark run fail before writing it?"
        )
    if not content.strip():
        raise SystemExit(
            f"error: the {role} results file {path!r} is empty; the benchmark "
            "run was interrupted before pytest-benchmark wrote its JSON"
        )
    try:
        payload = json.loads(content)
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"error: the {role} results file {path!r} is not valid JSON "
            f"({error}); the benchmark run may have been interrupted mid-write"
        )
    benchmarks = payload.get("benchmarks") if isinstance(payload, dict) else None
    if benchmarks is None:
        raise SystemExit(
            f"error: {path} is neither a pytest-benchmark JSON nor a "
            "summary baseline (no 'benchmarks' key)"
        )
    if not benchmarks:
        raise SystemExit(
            f"error: the {role} results file {path!r} contains no benchmarks; "
            "run the benchmark set named in the baseline"
        )
    return {bench["fullname"]: bench for bench in benchmarks}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (BENCH_search.json)")
    parser.add_argument("current", help="freshly produced --benchmark-json output")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated relative mean-latency regression (default 0.20)",
    )
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline, role="baseline")
    current = load_benchmarks(args.current, role="current")
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: the two benchmark files have no benchmarks in common")
        return 2

    failures: list[str] = []
    for name in shared:
        base_mean = baseline[name]["stats"]["mean"]
        new_mean = current[name]["stats"]["mean"]
        ratio = new_mean / base_mean if base_mean > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: mean {base_mean * 1e3:.3f} ms -> {new_mean * 1e3:.3f} ms "
                f"({ratio:.2f}x, limit {1.0 + args.threshold:.2f}x)"
            )
        print(f"{status:>10}  {name}: {base_mean * 1e3:.3f} ms -> {new_mean * 1e3:.3f} ms ({ratio:.2f}x)")

        # The baseline defines which benchmarks must carry a measured
        # speedup: dropping the extra_info in a refactor must not silently
        # disable the floor check.
        for key, floor in SPEEDUP_FLOORS.items():
            if baseline[name].get("extra_info", {}).get(key) is None:
                continue
            speedup = current[name].get("extra_info", {}).get(key)
            if speedup is None:
                failures.append(
                    f"{name}: baseline records {key} but the current run "
                    "does not — the floor check was skipped"
                )
            elif speedup < floor:
                failures.append(
                    f"{name}: {key} fell to {speedup:.1f}x "
                    f"(floor {floor:.0f}x)"
                )

    # Benchmarks only the current run recorded (e.g. the numba-gated
    # compiled-kernel benches on a machine whose committed baseline was
    # regenerated without numba) have no latency baseline, but their
    # self-relative speedup floors still bind.
    for name in sorted(set(current) - set(baseline)):
        for key, floor in SPEEDUP_FLOORS.items():
            speedup = current[name].get("extra_info", {}).get(key)
            if speedup is None:
                continue
            if speedup < floor:
                failures.append(
                    f"{name}: {key} fell to {speedup:.1f}x (floor {floor:.0f}x)"
                )
            else:
                print(f"        ok  {name}: {key} {speedup:.1f}x (floor {floor:.0f}x)")

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"   missing  {name}: present in baseline but not in current run")
        failures.append(
            f"{name}: present in baseline but missing from the current run "
            "(run the full benchmark set named in the baseline)"
        )

    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark regression check passed ({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
