"""Cost of the contention-aware network engine (informational).

The discrete-event network simulator prices real link occupancy --
per-device PU resources, per-physical-link queueing, compute/comm overlap
-- which the closed-form analytic engine folds into one shared level
resource.  These benches record what that fidelity costs: the wall time of
one simulated training step under each engine and their ratio, plus the
full congestion-study grid (the artifact CI pins against its golden).

The recorded ``network_vs_analytic_slowdown`` is informational -- there is
no acceptance floor; the engine trades simulation speed for routed-link
fidelity by design.  Only the generic mean-latency threshold of
``scripts/check_bench_regression.py`` gates catastrophic blowups.
"""

from __future__ import annotations

import time

from repro.accelerator.array import ArrayConfig
from repro.analysis.congestion_study import run_congestion_study
from repro.core.hierarchical import HierarchicalPartitioner
from repro.interconnect import HTreeTopology
from repro.nn.model_zoo import alexnet
from repro.sim.training import TrainingSimulator

from conftest import emit


def _paper_platform(sim_engine: str) -> TrainingSimulator:
    array = ArrayConfig()
    topology = HTreeTopology(array.num_accelerators, array.link_bandwidth_bytes)
    return TrainingSimulator(array, topology, sim_engine=sim_engine)


def test_network_step_alexnet(benchmark):
    """One AlexNet training step through the network engine (paper platform)."""
    model = alexnet()
    network = _paper_platform("network")
    analytic = _paper_platform("analytic")
    table = network.cost_table(model, 256)
    assignment = HierarchicalPartitioner(num_levels=4).partition(
        model, 256, table=table
    ).assignment

    report = benchmark(
        network.simulate, model, assignment, 256, "HyPar", cost_table=table
    )

    # Time the analytic engine on the same step in-process, so the JSON
    # carries the measured engine-overhead ratio rather than a number
    # transcribed from an old run.
    start = time.perf_counter()
    rounds = 10
    for _ in range(rounds):
        analytic_report = analytic.simulate(
            model, assignment, 256, "HyPar", cost_table=table
        )
    analytic_seconds = (time.perf_counter() - start) / rounds
    slowdown = benchmark.stats["mean"] / analytic_seconds if analytic_seconds else 0.0
    benchmark.extra_info["step_seconds"] = report.step_seconds
    benchmark.extra_info["analytic_step_seconds"] = analytic_report.step_seconds
    benchmark.extra_info["network_vs_analytic_slowdown"] = slowdown
    emit(
        "Network engine: one AlexNet step (16 accelerators, H tree)",
        f"simulated step: {report.step_seconds * 1e3:.3f} ms "
        f"(analytic {analytic_report.step_seconds * 1e3:.3f} ms)\n"
        f"engine wall-time overhead: {slowdown:.1f}x the analytic engine",
    )


def test_congestion_study_grid(benchmark):
    """The full golden-pinned congestion grid (both engines, 4 configs)."""
    study = benchmark(run_congestion_study)
    benchmark.extra_info["num_flips"] = study.num_flips
    benchmark.extra_info["num_configs"] = len(study.comparisons)
    assert study.num_flips >= 1
    emit("Congestion study grid", study.describe())
