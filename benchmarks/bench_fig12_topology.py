"""Figure 12: H-tree versus torus interconnect.

The per-layer parallelism is HyPar's searched choice in both columns; only
the physical topology of the sixteen-accelerator array changes.  The paper
reports geometric means of 3.39x (H tree) versus 2.23x (torus), both
normalised to Data Parallelism, because the binary-tree traffic pattern of
the hierarchical partition maps naturally onto the fat tree but zig-zags
across the mesh.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.topology_study import run_topology_study

PAPER_GMEANS = {"Torus": 2.23, "H Tree": 3.39}


def test_fig12_htree_vs_torus(benchmark):
    study = benchmark.pedantic(run_topology_study, rounds=1, iterations=1)

    rows = {
        row["model"]: {"Torus": row["torus"], "H Tree": row["h_tree"]}
        for row in study.as_rows()
    }
    emit(
        "Figure 12: normalized performance (to Data Parallelism) of torus and "
        "H-tree topology (paper gmeans: torus 2.23x, H tree 3.39x)",
        format_table("measured", rows, ["Torus", "H Tree"]),
    )

    benchmark.extra_info.update(
        {
            "gmean_torus": study.gmean_torus(),
            "gmean_htree": study.gmean_htree(),
            "paper_gmean_torus": PAPER_GMEANS["Torus"],
            "paper_gmean_htree": PAPER_GMEANS["H Tree"],
        }
    )

    # Shape assertions: the H tree wins overall and never loses per network.
    assert study.gmean_htree() > study.gmean_torus()
    for comparison in study.comparisons:
        assert comparison.htree_performance >= comparison.torus_performance - 1e-9
