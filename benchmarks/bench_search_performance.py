"""Micro-benchmarks of the partition search itself.

Section 4 claims the search is practical because its time complexity is
linear in the number of weighted layers.  These benches measure the search
latency on the smallest and largest evaluation networks and on synthetic
networks of growing depth, so the linearity is visible in the benchmark
table itself.
"""

import time

import numpy as np
import pytest

from repro.core import kernels
from repro.core.costmodel import resolve_cost_model
from repro.core.costs import CostTable, HierarchicalCostTable
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import model_tensors
from repro.nn.layers import ConvLayer
from repro.nn.model import build_model
from repro.nn.model_zoo import gpt_s, lenet_c, resnet_s, vgg_e

from conftest import emit


def _synthetic_network(depth: int):
    specs = [
        ConvLayer(name=f"conv{i}", out_channels=16, kernel_size=3, padding=1)
        for i in range(depth)
    ]
    return build_model(f"synthetic-{depth}", (32, 32, 16), specs)


def test_two_way_search_lenet(benchmark):
    tensors = model_tensors(lenet_c(), 256)
    partitioner = TwoWayPartitioner()
    result = benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = result.num_layers


def test_two_way_search_vgg_e(benchmark):
    tensors = model_tensors(vgg_e(), 256)
    partitioner = TwoWayPartitioner()
    result = benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = result.num_layers


def test_hierarchical_search_vgg_e_four_levels(benchmark):
    partitioner = HierarchicalPartitioner(num_levels=4)
    model = vgg_e()
    result = benchmark(partitioner.partition, model, 256)
    benchmark.extra_info["layers"] = result.assignment.num_layers
    benchmark.extra_info["levels"] = result.num_levels


@pytest.mark.parametrize("depth", [32, 128, 512])
def test_two_way_search_scales_linearly(benchmark, depth):
    """Search latency should grow roughly linearly with network depth."""
    tensors = model_tensors(_synthetic_network(depth), 32)
    partitioner = TwoWayPartitioner()
    benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = depth


@pytest.mark.parametrize("blocks", [128, 512, 1024])
def test_deep_transformer_dp_memoized(benchmark, blocks):
    """Chain DP over ``gpt_s`` transformer depths, memoized vs cold.

    The parameterized transformer chains are exactly periodic in their
    interior, so the block-repetition memoizer converges after a handful of
    blocks and replays the rest by translation.  The cold NumPy layer loop
    runs like-for-like inside the bench (best round on both sides, as in
    the gated sweep ratios) and the measured speedup lands in
    ``extra_info``; at 1024 blocks it is recorded as ``deep_dp_speedup``,
    whose >= 10x acceptance floor ``scripts/check_bench_regression.py``
    enforces against the committed baseline.  Bit-exact agreement between
    the two paths is asserted on every run.
    """
    tensors = model_tensors(gpt_s(blocks), 256)
    table = CostTable.from_tensors(tensors)

    result = benchmark(table.dp_partition)

    cold_rounds = []
    for _ in range(3):
        start = time.perf_counter()
        cold = table.dp_partition(memoize=False)
        cold_rounds.append(time.perf_counter() - start)
    assert cold.communication_bytes == result.communication_bytes
    assert cold.assignment.choices == result.assignment.choices

    cold_seconds = min(cold_rounds)
    memoized_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / memoized_seconds
    benchmark.extra_info["layers"] = len(tensors)
    benchmark.extra_info["blocks"] = blocks
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["memoized_seconds"] = memoized_seconds
    # Only the deepest case is gated: the floor protects the regime the
    # acceptance bar names (1024 blocks), while the shallower depths keep
    # an informational measurement in the baseline history.
    key = "deep_dp_speedup" if blocks == 1024 else "memoized_speedup"
    benchmark.extra_info[key] = speedup
    emit(
        f"Deep-chain DP: gpt_s --layers {blocks} ({len(tensors)} layers)",
        f"cold    : {cold_seconds * 1e3:.2f} ms\n"
        f"memoized: {memoized_seconds * 1e3:.2f} ms\n"
        f"speedup : {speedup:.1f}x",
    )
    if blocks == 1024:
        assert speedup >= 10.0, (
            f"memoized deep-chain DP must be >= 10x the cold path, got {speedup:.1f}x"
        )


def test_profiled_table_compile_overhead(benchmark):
    """Profiled-provider table compilation vs the inlined analytic path.

    The calibrated provider fills the vectorized tables by dispatching
    per entry through the same byte-level methods the object oracle
    calls, instead of the analytic path's inlined NumPy expressions --
    the price of the bit-exactness contract.  This bench compiles the
    ``vgg_e`` hierarchical table (the largest eval network, 4 levels)
    under ``profiled:slow-interconnect`` and runs the analytic compile
    like-for-like in-process; the ratio lands in ``extra_info`` as
    ``profiled_compile_overhead`` (informational, no acceptance floor --
    the compile is a once-per-configuration cost the TableCache
    amortizes across every point that shares the configuration).
    """
    model = vgg_e()
    calibrated = resolve_cost_model("profiled:slow-interconnect").communication_model()

    result = benchmark(
        HierarchicalCostTable, model, 256, 4, communication_model=calibrated
    )

    analytic_rounds = []
    for _ in range(3):
        start = time.perf_counter()
        HierarchicalCostTable(model, 256, 4)
        analytic_rounds.append(time.perf_counter() - start)

    analytic_seconds = min(analytic_rounds)
    profiled_seconds = benchmark.stats.stats.min
    overhead = profiled_seconds / analytic_seconds
    benchmark.extra_info["layers"] = len(result.model)
    benchmark.extra_info["levels"] = result.num_levels
    benchmark.extra_info["analytic_seconds"] = analytic_seconds
    benchmark.extra_info["profiled_seconds"] = profiled_seconds
    benchmark.extra_info["profiled_compile_overhead"] = overhead
    emit(
        "Profiled table compile: vgg_e, 4 levels, slow-interconnect pack",
        f"analytic: {analytic_seconds * 1e3:.2f} ms\n"
        f"profiled: {profiled_seconds * 1e3:.2f} ms\n"
        f"overhead: {overhead:.2f}x",
    )


@pytest.mark.skipif(not kernels.NUMBA_AVAILABLE, reason="numba not installed")
def test_dag_dp_compiled(benchmark):
    """Compiled DAG cut-vertex DP vs the NumPy oracle on long branches.

    A 34-layer synthetic chain with two skip edges spanning 16 layers each
    gives the cut-vertex DP two branch interiors of 2**15 candidate
    patterns -- exactly the batched enumeration the ``@njit`` block scorer
    accelerates.  The cold NumPy side runs like-for-like in-process, the
    measured self-relative ratio lands in ``extra_info`` as
    ``dag_compiled_speedup`` (floor >= 2x, enforced both here and by
    ``scripts/check_bench_regression.py``), and bit-exact agreement with
    the oracle is asserted on every run.  Skips without numba, so the
    committed baseline (regenerated on a numba-less machine) omits it; the
    floor binds in the numba CI leg.
    """
    tensors = model_tensors(_synthetic_network(34), 32)
    edges = [(i, i + 1) for i in range(33)] + [(0, 16), (17, 33)]
    compiled_table = CostTable.from_tensors(tensors, edges=edges, backend="compiled")
    numpy_table = CostTable.from_tensors(tensors, edges=edges, backend="numpy")
    compiled_table.dp_partition()  # warm the JIT outside the timed rounds

    result = benchmark(compiled_table.dp_partition)

    cold_rounds = []
    for _ in range(3):
        start = time.perf_counter()
        cold = numpy_table.dp_partition()
        cold_rounds.append(time.perf_counter() - start)
    assert cold.communication_bytes == result.communication_bytes
    assert cold.assignment.choices == result.assignment.choices

    cold_seconds = min(cold_rounds)
    compiled_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / compiled_seconds
    benchmark.extra_info["layers"] = len(tensors)
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["compiled_seconds"] = compiled_seconds
    benchmark.extra_info["dag_compiled_speedup"] = speedup
    emit(
        "Compiled DAG cut-vertex DP: synthetic-34 + two 16-layer skips",
        f"numpy   : {cold_seconds * 1e3:.2f} ms\n"
        f"compiled: {compiled_seconds * 1e3:.2f} ms\n"
        f"speedup : {speedup:.1f}x",
    )
    assert speedup >= 2.0, (
        f"compiled DAG DP must be >= 2x the NumPy path, got {speedup:.1f}x"
    )


@pytest.mark.skipif(not kernels.NUMBA_AVAILABLE, reason="numba not installed")
@pytest.mark.parametrize("backend", ["compiled", "compiled-parallel"])
def test_hierarchical_scoring_compiled(benchmark, backend):
    """Compiled hierarchical level scorers vs the NumPy gather loops.

    Scores a 2**16-candidate slab of ``resnet_s`` hierarchical codes --
    the batched inner loop behind the Figure-9/10 restricted sweeps and
    ``exhaustive_hierarchical``.  Records the self-relative ratio as
    ``hier_compiled_speedup`` / ``hier_parallel_speedup`` (floor >= 2x
    each); byte-identical totals against the NumPy table are asserted on
    every run.
    """
    model = resnet_s()
    compiled_table = HierarchicalCostTable(model, 64, 3, backend=backend)
    numpy_table = HierarchicalCostTable(model, 64, 3, backend="numpy")
    codes = np.arange(
        min(1 << 16, compiled_table.num_assignments), dtype=np.int64
    )
    compiled_table.score_codes(codes[:64])  # warm the JIT

    totals = benchmark(compiled_table.score_codes, codes)

    cold_rounds = []
    for _ in range(3):
        start = time.perf_counter()
        baseline = numpy_table.score_codes(codes)
        cold_rounds.append(time.perf_counter() - start)
    assert np.array_equal(totals, baseline)

    cold_seconds = min(cold_rounds)
    compiled_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / compiled_seconds
    key = (
        "hier_parallel_speedup" if backend == "compiled-parallel"
        else "hier_compiled_speedup"
    )
    benchmark.extra_info["candidates"] = int(codes.size)
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["compiled_seconds"] = compiled_seconds
    benchmark.extra_info[key] = speedup
    emit(
        f"Compiled hierarchical scoring ({backend}): resnet_s, {codes.size} codes",
        f"numpy   : {cold_seconds * 1e3:.2f} ms\n"
        f"compiled: {compiled_seconds * 1e3:.2f} ms\n"
        f"speedup : {speedup:.1f}x",
    )
    assert speedup >= 2.0, (
        f"compiled hierarchical scoring must be >= 2x NumPy, got {speedup:.1f}x"
    )
