"""Micro-benchmarks of the partition search itself.

Section 4 claims the search is practical because its time complexity is
linear in the number of weighted layers.  These benches measure the search
latency on the smallest and largest evaluation networks and on synthetic
networks of growing depth, so the linearity is visible in the benchmark
table itself.
"""

import pytest

from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import model_tensors
from repro.nn.layers import ConvLayer
from repro.nn.model import build_model
from repro.nn.model_zoo import lenet_c, vgg_e


def _synthetic_network(depth: int):
    specs = [
        ConvLayer(name=f"conv{i}", out_channels=16, kernel_size=3, padding=1)
        for i in range(depth)
    ]
    return build_model(f"synthetic-{depth}", (32, 32, 16), specs)


def test_two_way_search_lenet(benchmark):
    tensors = model_tensors(lenet_c(), 256)
    partitioner = TwoWayPartitioner()
    result = benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = result.num_layers


def test_two_way_search_vgg_e(benchmark):
    tensors = model_tensors(vgg_e(), 256)
    partitioner = TwoWayPartitioner()
    result = benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = result.num_layers


def test_hierarchical_search_vgg_e_four_levels(benchmark):
    partitioner = HierarchicalPartitioner(num_levels=4)
    model = vgg_e()
    result = benchmark(partitioner.partition, model, 256)
    benchmark.extra_info["layers"] = result.assignment.num_layers
    benchmark.extra_info["levels"] = result.num_levels


@pytest.mark.parametrize("depth", [32, 128, 512])
def test_two_way_search_scales_linearly(benchmark, depth):
    """Search latency should grow roughly linearly with network depth."""
    tensors = model_tensors(_synthetic_network(depth), 32)
    partitioner = TwoWayPartitioner()
    benchmark(partitioner.partition_tensors, tensors)
    benchmark.extra_info["layers"] = depth
