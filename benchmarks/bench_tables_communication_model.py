"""Tables 1 and 2: the communication model itself.

These benches time the primitive cost-model evaluations (they are the inner
loop of the partition search) and print the worked examples of Section 3.4,
which instantiate Table 1 and Table 2 for a fully-connected and a
convolutional layer.
"""

from conftest import emit

from repro.core.communication import CommunicationModel
from repro.core.parallelism import DATA, MODEL
from repro.core.tensors import layer_tensors, model_tensors
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.nn.model_zoo import vgg_e


def _fc_example():
    model = build_model("fc", (1, 1, 70), [FCLayer(name="fc", out_features=100)])
    return layer_tensors(model[0], batch_size=32)


def _conv_example():
    model = build_model(
        "conv", (12, 12, 20), [ConvLayer(name="conv", out_channels=50, kernel_size=5)]
    )
    return layer_tensors(model[0], batch_size=32)


def test_table1_intra_layer_amounts(benchmark):
    """Table 1 + the Section 3.4 worked examples."""
    comm = CommunicationModel()
    fc = _fc_example()
    conv = _conv_example()

    def evaluate():
        return {
            "fc_dp_bytes": comm.intra_layer_bytes(fc, DATA),
            "fc_mp_bytes": comm.intra_layer_bytes(fc, MODEL),
            "conv_dp_bytes": comm.intra_layer_bytes(conv, DATA),
            "conv_mp_bytes": comm.intra_layer_bytes(conv, MODEL),
        }

    result = benchmark(evaluate)
    benchmark.extra_info.update(result)
    emit(
        "Table 1 / Section 3.4 intra-layer communication (paper: fc dp=56KB, "
        "fc mp=25.6KB, conv dp=200KB, conv mp=819KB)",
        "\n".join(f"  {key:<14s} {value / 1e3:8.1f} KB" for key, value in result.items()),
    )


def test_table2_inter_layer_amounts(benchmark):
    """Table 2: the four transition costs, on the fc example's boundary tensor."""
    comm = CommunicationModel()
    boundary = _fc_example()

    def evaluate():
        return {
            "dp-dp": comm.inter_layer_bytes(DATA, DATA, boundary),
            "dp-mp": comm.inter_layer_bytes(DATA, MODEL, boundary),
            "mp-mp": comm.inter_layer_bytes(MODEL, MODEL, boundary),
            "mp-dp": comm.inter_layer_bytes(MODEL, DATA, boundary),
        }

    result = benchmark(evaluate)
    benchmark.extra_info.update(result)
    emit(
        "Table 2 inter-layer communication for the fc boundary "
        "(paper formulas: 0, 0.25A(F)+0.25A(E), 0.5A(E), 0.5A(E))",
        "\n".join(f"  {key:<6s} {value / 1e3:8.1f} KB" for key, value in result.items()),
    )


def test_whole_network_cost_evaluation(benchmark):
    """Throughput of evaluating one full assignment on the largest network."""
    comm = CommunicationModel()
    model = vgg_e()
    tensors = model_tensors(model, 256)
    from repro.core.parallelism import LayerAssignment

    assignment = LayerAssignment.uniform(DATA, len(model))
    total = benchmark(comm.total_bytes, tensors, assignment)
    benchmark.extra_info["vgg_e_dp_bytes_per_pair"] = total
