"""Figure 8: total communication per training step (GB).

The paper reports per-network absolute traffic and geometric means of
8.88 GB (Model Parallelism), 1.83 GB (Data Parallelism) and 0.318 GB
(HyPar) per step on the sixteen-accelerator array at batch 256.
"""

from conftest import emit

from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ExperimentRunner,
)
from repro.analysis.report import format_table
from repro.nn.model_zoo import all_models

PAPER_GB = {
    "SFC": {"Model Parallelism": 0.723, "Data Parallelism": 16.9, "HyPar": 0.681},
    "SCONV": {"Model Parallelism": 0.480, "Data Parallelism": 0.0121, "HyPar": 0.0121},
    "Lenet-c": {"Model Parallelism": 0.112, "Data Parallelism": 0.0517, "HyPar": 0.0161},
    "Cifar-c": {"Model Parallelism": 0.206, "Data Parallelism": 0.0174, "HyPar": 0.0135},
    "AlexNet": {"Model Parallelism": 13.0, "Data Parallelism": 2.00, "HyPar": 0.289},
    "VGG-A": {"Model Parallelism": 50.1, "Data Parallelism": 15.9, "HyPar": 1.47},
    "VGG-B": {"Model Parallelism": 134.0, "Data Parallelism": 16.0, "HyPar": 1.47},
    "VGG-C": {"Model Parallelism": 157.0, "Data Parallelism": 16.6, "HyPar": 2.13},
    "VGG-D": {"Model Parallelism": 180.0, "Data Parallelism": 17.2, "HyPar": 2.76},
    "VGG-E": {"Model Parallelism": 157.0, "Data Parallelism": 16.0, "HyPar": 1.58},
    "Gmean": {"Model Parallelism": 8.88, "Data Parallelism": 1.83, "HyPar": 0.318},
}


def test_fig08_total_communication(benchmark, paper_runner: ExperimentRunner):
    models = all_models()

    def run():
        return paper_runner.run(models)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    comm = table.communication()

    strategies = [MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR]
    emit(
        "Figure 8: total communication per step in GB "
        "(paper gmeans: MP 8.88, DP 1.83, HyPar 0.318)",
        format_table("measured (GB)", comm, strategies),
    )

    gmean_mp = table.gmean(comm, MODEL_PARALLELISM)
    gmean_dp = table.gmean(comm, DATA_PARALLELISM)
    gmean_hypar = table.gmean(comm, HYPAR)
    benchmark.extra_info.update(
        {
            "gmean_mp_gb": gmean_mp,
            "gmean_dp_gb": gmean_dp,
            "gmean_hypar_gb": gmean_hypar,
            "paper_gmean_mp_gb": PAPER_GB["Gmean"]["Model Parallelism"],
            "paper_gmean_dp_gb": PAPER_GB["Gmean"]["Data Parallelism"],
            "paper_gmean_hypar_gb": PAPER_GB["Gmean"]["HyPar"],
        }
    )

    # Shape assertions: the ordering and rough magnitudes of the paper hold.
    assert gmean_mp > gmean_dp > gmean_hypar
    assert 0.9 < gmean_dp < 4.0
    assert gmean_hypar < 0.7
