"""Figure 5: optimised parallelism for every weighted layer of the ten networks.

The bench times HyPar's hierarchical search over the whole model zoo
(which also demonstrates the linear-time claim: even VGG-E's 19 layers x 4
levels partition in well under a millisecond) and prints the per-level
parallelism lists in the same layout as Figure 5.
"""

from conftest import emit

from repro.analysis.experiments import ExperimentRunner
from repro.nn.model_zoo import all_models


def test_fig05_optimized_parallelism(benchmark, paper_runner: ExperimentRunner):
    models = all_models()

    def search_all():
        return {model.name: paper_runner.optimized_parallelism(model) for model in models}

    results = benchmark(search_all)

    lines = []
    for name, result in results.items():
        lines.append(result.describe())
        lines.append("")
    emit(
        "Figure 5: optimized parallelism for weighted layers at four hierarchy "
        "levels (paper: conv layers mostly dp, fc layers mostly mp; SCONV all dp; "
        "SFC nearly all mp)",
        "\n".join(lines),
    )

    benchmark.extra_info["sconv_all_dp"] = all(
        choice.short == "dp"
        for level in results["SCONV"].assignment
        for choice in level
    )
    benchmark.extra_info["total_comm_gb_vgg_a"] = (
        results["VGG-A"].total_communication_bytes / 1e9
    )


def test_fig05_search_time_scales_linearly(benchmark, paper_runner: ExperimentRunner):
    """The partition search is O(L): time the deepest network alone."""
    from repro.nn.model_zoo import vgg_e

    model = vgg_e()
    result = benchmark(paper_runner.optimized_parallelism, model)
    benchmark.extra_info["vgg_e_total_comm_gb"] = result.total_communication_bytes / 1e9
