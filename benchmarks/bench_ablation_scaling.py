"""Ablation: hierarchical tensor-scaling modes.

Algorithm 2's pseudocode does not state how tensor amounts shrink as the
array is halved recursively, so DESIGN.md calls this choice out as the main
modelling decision of the reproduction.  This bench compares the three
implemented modes on the full model zoo:

* ``parallelism-aware`` (default) -- dp halves the per-group batch, mp
  halves the per-group kernel/output channels (matches the tensor holdings
  of Figure 1);
* ``uniform`` -- the batch fraction halves per level regardless of the
  choice (feature maps, errors and MACs halve; kernels stay whole);
* ``none`` -- the literal pseudocode: identical amounts at every level.

The headline observation: the qualitative result (HyPar >> Data
Parallelism) holds under every mode, but only the parallelism-aware mode
reproduces the level-dependent choices visible in Figure 5 (e.g. fc layers
flipping to mp only at deeper levels).
"""

from conftest import emit

from repro.analysis.experiments import DATA_PARALLELISM, HYPAR, ExperimentRunner
from repro.analysis.report import format_table
from repro.core.tensors import ScalingMode
from repro.nn.model_zoo import get_model

MODELS = ("Lenet-c", "AlexNet", "VGG-A")


def test_ablation_scaling_modes(benchmark):
    def run_all_modes():
        results = {}
        for mode in ScalingMode:
            runner = ExperimentRunner(scaling_mode=mode)
            table = runner.run([get_model(name) for name in MODELS])
            perf = table.performance()
            results[mode.value] = {
                name: perf[name][HYPAR] for name in MODELS
            }
            results[mode.value]["gmean"] = table.gmean(perf, HYPAR)
        return results

    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)

    rows = {
        name: {mode: results[mode][name] for mode in results}
        for name in (*MODELS, "gmean")
    }
    emit(
        "Ablation: HyPar speedup over Data Parallelism under the three "
        "hierarchical scaling modes",
        format_table("HyPar speedup", rows, list(results), add_gmean=False),
    )
    benchmark.extra_info.update(
        {f"gmean_{mode}": values["gmean"] for mode, values in results.items()}
    )

    # The qualitative claim is scaling-mode independent.
    for mode, values in results.items():
        assert values["gmean"] > 1.0, f"HyPar must beat DP under mode {mode}"


def test_ablation_level_dependence_requires_scaling(benchmark):
    """Only the scaling-aware modes produce different lists across levels."""
    from repro.core.hierarchical import HierarchicalPartitioner

    model = get_model("Lenet-c")

    def partition_under_all_modes():
        return {
            mode.value: HierarchicalPartitioner(
                num_levels=4, scaling_mode=mode
            ).partition(model, 256)
            for mode in ScalingMode
        }

    results = benchmark.pedantic(partition_under_all_modes, rounds=1, iterations=1)

    def has_level_dependence(result):
        first = result.assignment[0]
        return any(level != first for level in result.assignment)

    emit(
        "Ablation: level-dependent parallelism choices per scaling mode "
        "(Figure 5 shows per-level differences, e.g. Lenet-c's fc layers)",
        "\n".join(
            f"  {mode:<20s} level-dependent={has_level_dependence(result)}"
            for mode, result in results.items()
        ),
    )

    assert has_level_dependence(results[ScalingMode.PARALLELISM_AWARE.value])
    assert not has_level_dependence(results[ScalingMode.NONE.value])
