"""Figure 10: parallelism-space exploration for VGG-A.

Every layer keeps HyPar's choice except ``conv5_2`` and ``fc1``, whose
parallelism sweeps across all four hierarchy levels (256 points).  In the
paper the sweep's peak is 5.05x over Data Parallelism while HyPar's own
point reaches 4.97x: HyPar optimises total communication as a *proxy* for
performance, so it can land marginally off the true peak but stays within a
few percent of it.
"""

from conftest import emit

from repro.analysis.exploration import ParallelismExplorer, bit_string


def test_fig10_vgga_parallelism_space(benchmark):
    explorer = ParallelismExplorer()

    result = benchmark.pedantic(explorer.explore_vgg_a, rounds=1, iterations=1)

    peak = result.peak
    num_positions = len(result.free_positions)
    top = sorted(
        result.points, key=lambda point: point.normalized_performance, reverse=True
    )[:5]
    lines = [
        f"swept positions: {num_positions} (conv5_2 and fc1 across H1-H4), "
        f"{len(result.points)} points",
        f"HyPar normalized performance: {result.hypar_performance:.2f}x (paper: 4.97x)",
        f"peak normalized performance:  {peak.normalized_performance:.2f}x "
        f"at bits {bit_string(peak, num_positions)} "
        "(paper: 5.05x at conv5_2=1000, fc1=1111)",
        f"HyPar-to-peak gap: {result.hypar_gap * 100:.2f}% (paper: ~1.6%)",
        "top-5 points:",
    ]
    for point in top:
        lines.append(
            f"  bits {bit_string(point, num_positions)}  "
            f"{point.normalized_performance:.3f}x"
        )
    emit("Figure 10: parallelism space exploration for VGG-A", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "hypar_performance": result.hypar_performance,
            "peak_performance": peak.normalized_performance,
            "gap_fraction": result.hypar_gap,
            "paper_hypar": 4.97,
            "paper_peak": 5.05,
        }
    )

    # Shape assertions: HyPar is within a few percent of the sweep's peak and
    # far above the Data Parallelism baseline.
    assert result.hypar_gap <= 0.05
    assert result.hypar_performance > 1.5
