"""Ablation: communication bytes as a proxy for simulated time.

HyPar minimises total communication, not end-to-end time (Section 6.3.2
admits the proxy can miss the true optimum: 4.97x versus a 5.05x peak on
VGG-A).  This bench quantifies the proxy's quality on a small network where
the *time*-optimal hierarchical assignment can be found by brute force, and
reports how much performance the byte-optimal search leaves on the table.
"""

from conftest import emit

from repro.accelerator.array import ArrayConfig
from repro.core.exhaustive import all_layer_assignments
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import HierarchicalAssignment
from repro.nn.model_zoo import lenet_c
from repro.sim.training import TrainingSimulator

NUM_LEVELS = 2  # 4 accelerators keeps the brute-force space at 256 points.
BATCH = 256


def test_ablation_bytes_vs_time_objective(benchmark):
    model = lenet_c()
    array = ArrayConfig(num_accelerators=1 << NUM_LEVELS)
    simulator = TrainingSimulator(array)
    partitioner = HierarchicalPartitioner(num_levels=NUM_LEVELS)

    def run():
        level_space = list(all_layer_assignments(len(model)))
        best_time = None
        best_assignment = None
        for first in level_space:
            for second in level_space:
                assignment = HierarchicalAssignment((first, second))
                seconds = simulator.simulate(model, assignment, BATCH).step_seconds
                if best_time is None or seconds < best_time:
                    best_time, best_assignment = seconds, assignment
        byte_optimal = partitioner.partition(model, BATCH).assignment
        byte_optimal_time = simulator.simulate(model, byte_optimal, BATCH).step_seconds
        return best_time, best_assignment, byte_optimal_time

    best_time, best_assignment, byte_optimal_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    gap = byte_optimal_time / best_time - 1.0

    emit(
        "Ablation: byte-optimal (HyPar) versus time-optimal (brute force) on "
        "Lenet-c with 4 accelerators",
        "\n".join(
            [
                f"  time-optimal step latency:  {best_time * 1e3:.3f} ms",
                f"  byte-optimal step latency:  {byte_optimal_time * 1e3:.3f} ms",
                f"  proxy gap:                  {gap * 100:.2f}% "
                "(paper's VGG-A gap: ~1.6%)",
                f"  time-optimal assignment:    {best_assignment}",
            ]
        ),
    )
    benchmark.extra_info.update(
        {
            "time_optimal_ms": best_time * 1e3,
            "byte_optimal_ms": byte_optimal_time * 1e3,
            "proxy_gap_fraction": gap,
        }
    )

    # The proxy must stay within a few percent of the true optimum.
    assert gap <= 0.05
