"""Figure 13: HyPar versus "one weird trick" (Krizhevsky, 2014).

Six configurations built around two VGG-E layers that the trick's
conv→dp / fc→mp rule gets wrong once batch size and hierarchy depth vary:
``conv5`` at batch 32 (should flip to mp as the per-group batch shrinks)
and ``fc3`` at batch 4096 (should stay dp because dp-dp boundaries are
free).  The paper reports HyPar 1.62x faster and 1.22x more energy
efficient than the trick on average, and up to 2.40x faster.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.trick_study import run_trick_study

PAPER_GMEANS = {"performance": 1.62, "energy_efficiency": 1.22, "max_performance": 2.40}


def test_fig13_hypar_vs_trick(benchmark):
    study = benchmark.pedantic(run_trick_study, rounds=1, iterations=1)

    rows = {
        row["config"]: {
            "Performance": row["performance"],
            "Energy Efficiency": row["energy_efficiency"],
        }
        for row in study.as_rows()
    }
    emit(
        'Figure 13: HyPar versus "one weird trick" '
        "(paper gmeans: performance 1.62x, energy 1.22x; max 2.40x)",
        format_table("measured", rows, ["Performance", "Energy Efficiency"]),
    )

    benchmark.extra_info.update(
        {
            "gmean_performance": study.gmean_performance(),
            "gmean_energy": study.gmean_energy(),
            "max_performance": study.max_performance(),
            "paper_gmean_performance": PAPER_GMEANS["performance"],
            "paper_gmean_energy": PAPER_GMEANS["energy_efficiency"],
        }
    )

    # Shape assertions: HyPar never loses to the trick, wins on average, and
    # the conv5 advantage grows with hierarchy depth.
    for comparison in study.comparisons:
        assert comparison.performance_ratio >= 1.0 - 1e-9
    assert study.gmean_performance() > 1.05
    conv5 = sorted(
        (c for c in study.comparisons if c.label.startswith("conv5")),
        key=lambda c: c.num_levels,
    )
    assert conv5[-1].performance_ratio > conv5[0].performance_ratio
