"""Throughput of the vectorized enumeration / sweep engine.

The acceptance bar for the cost-table engine is a >= 20x speedup of the
enumeration workloads over the original per-candidate object path:

* ``exhaustive_two_way`` over the 2^20 assignments of a 20-layer synthetic
  network, and
* the Figure 9 Lenet-c sweep (256 restricted candidates).

Each bench times the vectorized path with ``pytest-benchmark`` and *also*
times the in-tree object-based reference path on (a slice of) the same
workload inside the run, recording both throughputs and their ratio in
``benchmark.extra_info`` -- so ``BENCH_search.json`` carries the measured
speedup, not a number transcribed from an old run.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.exploration import ParallelismExplorer
from repro.core.exhaustive import (
    enumerate_restricted,
    enumerate_restricted_communication,
    exhaustive_two_way,
)
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import LayerAssignment
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import model_tensors
from repro.nn.layers import ConvLayer
from repro.nn.model import build_model
from repro.nn.model_zoo import lenet_c

from conftest import emit


def _synthetic_network(depth: int):
    specs = [
        ConvLayer(name=f"conv{i}", out_channels=16, kernel_size=3, padding=1)
        for i in range(depth)
    ]
    return build_model(f"synthetic-{depth}", (32, 32, 16), specs)


def _synthetic_residual_network(depth: int):
    """A residual ladder: every third layer also consumes the output three
    layers back (an ADD merge), so the layer graph is a genuine DAG and the
    enumeration exercises the edge-indexed scoring path."""
    from repro.nn.shapes import MergeOp

    specs = []
    for i in range(depth):
        inputs = None
        merge = MergeOp.ADD
        if i >= 3 and i % 3 == 0:
            inputs = (f"conv{i - 3}", f"conv{i - 1}")
        specs.append(
            ConvLayer(
                name=f"conv{i}",
                out_channels=16,
                kernel_size=3,
                padding=1,
                inputs=inputs,
                merge=merge,
            )
        )
    return build_model(f"synthetic-residual-{depth}", (32, 32, 16), specs)


def _figure9_free_positions(model, num_levels: int) -> list[tuple[int, int]]:
    """All layers at the first and the last hierarchy level (Figure 9)."""
    free = [(0, layer) for layer in range(len(model))]
    free += [(num_levels - 1, layer) for layer in range(len(model))]
    return free


def test_exhaustive_two_way_20_layer_throughput(benchmark):
    """2^20 candidates scored in batched NumPy ops vs the object loop."""
    tensors = model_tensors(_synthetic_network(20), 32)
    num_layers = len(tensors)
    candidates = 1 << num_layers

    result = benchmark(exhaustive_two_way, tensors)

    # Reference throughput, measured like-for-like: the same per-candidate
    # object-path work (LayerAssignment decode + evaluate) over the same
    # 20-layer tensors, on a 2^14 slice of the space (the full space takes
    # ~40 s per round in pure Python).
    reference_candidates = 1 << 14
    partitioner = TwoWayPartitioner()
    start = time.perf_counter()
    best = np.inf
    for bits in range(reference_candidates):
        assignment = LayerAssignment.from_codes(bits, num_layers)
        cost = partitioner.evaluate(tensors, assignment).communication_bytes
        if cost < best:
            best = cost
    reference_seconds = time.perf_counter() - start

    vectorized_cps = candidates / benchmark.stats.stats.mean
    reference_cps = reference_candidates / reference_seconds
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["candidates_per_second"] = vectorized_cps
    benchmark.extra_info["reference_candidates_per_second"] = reference_cps
    benchmark.extra_info["speedup_vs_reference"] = vectorized_cps / reference_cps
    emit(
        "Sweep throughput: exhaustive two-way, 20-layer synthetic network",
        f"vectorized: {vectorized_cps:,.0f} candidates/s\n"
        f"reference : {reference_cps:,.0f} candidates/s\n"
        f"speedup   : {vectorized_cps / reference_cps:.1f}x "
        f"(optimum {result.communication_bytes / 1e6:.3f} MB)",
    )
    assert vectorized_cps >= 20 * reference_cps


def test_restricted_sweep_communication_throughput(benchmark):
    """Figure 9's 256 candidates scored against the hierarchical cost table."""
    model = lenet_c()
    partitioner = HierarchicalPartitioner(num_levels=4)
    table = partitioner.compile_table(model, 256)
    base = partitioner.partition(model, 256, table=table).assignment
    free = _figure9_free_positions(model, 4)
    candidates = 1 << len(free)

    totals = benchmark(
        enumerate_restricted_communication, model, 256, base, free, table=table
    )

    def reference_objective(assignment):
        return partitioner.evaluate(
            model, assignment, 256, table=table
        ).total_communication_bytes

    start = time.perf_counter()
    reference = enumerate_restricted(model, 256, base, free, reference_objective)
    reference_seconds = time.perf_counter() - start
    assert [cost for _, cost in reference] == list(totals)

    vectorized_cps = candidates / benchmark.stats.stats.mean
    reference_cps = candidates / reference_seconds
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["candidates_per_second"] = vectorized_cps
    benchmark.extra_info["reference_candidates_per_second"] = reference_cps
    benchmark.extra_info["speedup_vs_reference"] = vectorized_cps / reference_cps
    emit(
        "Sweep throughput: Figure 9 restricted enumeration (communication)",
        f"vectorized: {vectorized_cps:,.0f} candidates/s\n"
        f"reference : {reference_cps:,.0f} candidates/s\n"
        f"speedup   : {vectorized_cps / reference_cps:.1f}x\n"
        f"best swept point: {np.min(totals) / 1e6:.3f} MB",
    )


def test_exhaustive_dag_20_layer_throughput(benchmark):
    """2^20 candidates of a residual (DAG) network scored edge-indexed.

    Same shape as the chain benchmark above, but over a branching model:
    the vectorized scorer takes the per-edge accumulation path and the
    winner comes from the cut-vertex DP's brute-force certificate space.
    The in-process object-path reference (the generalized
    ``CommunicationModel.total_bytes`` over the model's edge list) anchors
    the recorded ``speedup_vs_reference``.
    """
    model = _synthetic_residual_network(20)
    tensors = model_tensors(model, 32)
    num_layers = len(tensors)
    candidates = 1 << num_layers

    result = benchmark(exhaustive_two_way, tensors, edges=model.edges)

    reference_candidates = 1 << 14
    partitioner = TwoWayPartitioner()
    start = time.perf_counter()
    best = np.inf
    for bits in range(reference_candidates):
        assignment = LayerAssignment.from_codes(bits, num_layers)
        cost = partitioner.evaluate(
            tensors, assignment, edges=model.edges
        ).communication_bytes
        if cost < best:
            best = cost
    reference_seconds = time.perf_counter() - start

    vectorized_cps = candidates / benchmark.stats.stats.mean
    reference_cps = reference_candidates / reference_seconds
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["candidates_per_second"] = vectorized_cps
    benchmark.extra_info["reference_candidates_per_second"] = reference_cps
    benchmark.extra_info["speedup_vs_reference"] = vectorized_cps / reference_cps
    emit(
        "Sweep throughput: exhaustive two-way, 20-layer residual DAG",
        f"edges     : {len(model.edges)} ({len(model.edges) - (num_layers - 1)} skip)\n"
        f"vectorized: {vectorized_cps:,.0f} candidates/s\n"
        f"reference : {reference_cps:,.0f} candidates/s\n"
        f"speedup   : {vectorized_cps / reference_cps:.1f}x "
        f"(optimum {result.communication_bytes / 1e6:.3f} MB)",
    )
    assert vectorized_cps >= 20 * reference_cps


def test_figure6_grid_engine_throughput(benchmark):
    """The Figure 6 grid (ten networks, search + three simulations each)
    through the sweep engine.

    The timed path is the *serial* engine with warm process-global caches
    (the compiled tables exist, so the bench isolates the orchestration +
    simulation cost).  A four-worker process pool then runs the identical
    grid; its speedup over the serial path is recorded as
    ``parallel_speedup`` and, on machines with at least four CPUs, gated
    at the >= 2x acceptance bar.  On smaller machines the measured value
    is still recorded so regressions remain visible in the baseline
    history.  Row-level equality between the two runs is asserted every
    time -- the parallel path may only ever be *faster*, never different.
    """
    from repro.sweep import SweepEngine, load_spec, run_sweep

    spec = load_spec("fig6")
    run_sweep(spec)  # warm the shared table cache + runtime objects

    serial_result = benchmark(run_sweep, spec)
    # Like-for-like with the parallel measurement below: best round on
    # both sides, so scheduler noise cannot inflate the gated ratio.
    serial_seconds = benchmark.stats.stats.min

    cpus = os.cpu_count() or 1
    workers = min(4, cpus)
    with SweepEngine(workers=workers) as engine:
        run_sweep(spec, engine=engine)  # warm the pool and worker caches
        rounds = []
        for _ in range(5):
            start = time.perf_counter()
            parallel_result = run_sweep(spec, engine=engine)
            rounds.append(time.perf_counter() - start)
        pool_active = engine.pool_active
    parallel_seconds = min(rounds)
    assert parallel_result.to_rows() == serial_result.to_rows()

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["points"] = spec.num_points
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["parallel_speedup"] = speedup
    benchmark.extra_info["pool_active"] = pool_active
    emit(
        "Sweep throughput: Figure 6 grid through the sweep engine",
        f"{spec.num_points} points (search + 3 simulations each)\n"
        f"serial  : {serial_seconds * 1e3:.1f} ms\n"
        f"parallel: {parallel_seconds * 1e3:.1f} ms ({workers} workers on {cpus} CPUs"
        f"{', pool degraded to serial' if not pool_active else ''})\n"
        f"speedup : {speedup:.2f}x",
    )
    # The >= 2x acceptance bar only applies where four workers actually
    # ran: on fewer CPUs (or when the engine degraded to its serial
    # fallback) the measured value is recorded but not gated.
    if cpus >= 4 and pool_active:
        assert speedup >= 2.0, (
            f"4-worker Figure 6 grid must be >= 2x the serial path, got {speedup:.2f}x"
        )


def test_figure9_simulated_sweep_throughput(benchmark):
    """The full simulated Figure 9 sweep (shared cost table + cached hops).

    The seed implementation re-derived the tensor lists and the networkx
    all-pairs hop counts for every one of the 256 simulated points and ran
    this sweep in ~2.7 s on the reference machine; the committed baseline
    (`BENCH_search.json`) pins the improved time so regressions past the
    20x bar fail the benchmark-regression check.
    """
    explorer = ParallelismExplorer()

    result = benchmark(explorer.explore_lenet)

    points = len(result.points)
    points_per_second = points / benchmark.stats.stats.mean
    benchmark.extra_info["points"] = points
    benchmark.extra_info["points_per_second"] = points_per_second
    emit(
        "Sweep throughput: Figure 9 simulated sweep (Lenet-c)",
        f"{points} simulated points, {points_per_second:,.0f} points/s\n"
        f"HyPar at peak: {result.hypar_is_peak}",
    )
