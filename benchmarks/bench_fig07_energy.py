"""Figure 7: energy efficiency of Model Parallelism, Data Parallelism and HyPar.

Energy efficiency is the energy saving normalised to the default Data
Parallelism.  The paper reports a geometric-mean gain of 1.51x for HyPar --
smaller than the 3.39x performance gain because only the communication
share of the energy is affected by the partition.
"""

from conftest import emit

from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ExperimentRunner,
)
from repro.analysis.report import format_table
from repro.nn.model_zoo import all_models

PAPER_GMEANS = {"Model Parallelism": 0.474, "Data Parallelism": 1.00, "HyPar": 1.51}


def test_fig07_normalized_energy_efficiency(benchmark, paper_runner: ExperimentRunner):
    models = all_models()

    def run():
        return paper_runner.run(models)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    energy = table.energy_efficiency()
    perf = table.performance()

    strategies = [MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR]
    emit(
        "Figure 7: energy efficiency normalized to Data Parallelism "
        "(paper gmeans: MP 0.474x, DP 1.00x, HyPar 1.51x)",
        format_table("measured", energy, strategies),
    )

    gmean_energy = table.gmean(energy, HYPAR)
    gmean_perf = table.gmean(perf, HYPAR)
    benchmark.extra_info["gmean_hypar_energy"] = gmean_energy
    benchmark.extra_info["paper_gmean_hypar_energy"] = PAPER_GMEANS["HyPar"]

    # Shape assertions: a real but modest gain, smaller than the speed gain.
    assert 1.0 < gmean_energy < gmean_perf
    assert table.gmean(energy, MODEL_PARALLELISM) < 1.0
