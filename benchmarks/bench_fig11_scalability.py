"""Figure 11: scalability of HyPar versus Data Parallelism on VGG-A.

The array is scaled from one to sixty-four accelerators.  The left axis of
the paper's figure is the performance gain normalised to one accelerator,
the right axis the total communication per step; Data Parallelism's gain
saturates around eight accelerators while HyPar keeps improving until
thirty-two and beyond, always with less communication.
"""

from conftest import emit

from repro.analysis.report import format_series
from repro.analysis.scalability import DEFAULT_ARRAY_SIZES, run_scalability_study


def test_fig11_scalability(benchmark):
    study = benchmark.pedantic(
        run_scalability_study,
        kwargs={"array_sizes": DEFAULT_ARRAY_SIZES},
        rounds=1,
        iterations=1,
    )
    rows = study.as_rows()
    sizes = [row["num_accelerators"] for row in rows]

    sections = [
        format_series(
            "HyPar performance gain (vs one accelerator)",
            sizes,
            [row["hypar_gain"] for row in rows],
        ),
        format_series(
            "Data Parallelism performance gain (vs one accelerator)",
            sizes,
            [row["dp_gain"] for row in rows],
        ),
        format_series(
            "HyPar total communication (GB/step)",
            sizes,
            [row["hypar_comm_gb"] for row in rows],
        ),
        format_series(
            "Data Parallelism total communication (GB/step)",
            sizes,
            [row["dp_comm_gb"] for row in rows],
        ),
    ]
    emit(
        "Figure 11: scalability on VGG-A (paper: DP saturates after 8 "
        "accelerators, HyPar keeps gaining until 32+, always with lower "
        "communication)",
        "\n\n".join(sections),
    )

    by_size = {row["num_accelerators"]: row for row in rows}
    benchmark.extra_info.update(
        {
            "hypar_gain_at_64": by_size[64]["hypar_gain"],
            "dp_gain_at_64": by_size[64]["dp_gain"],
            "dp_saturation_size": study.data_parallelism.saturation_size(
                study.single_accelerator_seconds
            ),
            "hypar_saturation_size": study.hypar.saturation_size(
                study.single_accelerator_seconds
            ),
        }
    )

    # Shape assertions: HyPar beats DP at every size, DP's growth from 16 to 64
    # accelerators is marginal while HyPar's is substantial.
    for row in rows:
        assert row["hypar_gain"] >= row["dp_gain"] - 1e-9
        assert row["hypar_comm_gb"] <= row["dp_comm_gb"] + 1e-12
    assert by_size[64]["dp_gain"] / by_size[16]["dp_gain"] < 1.6
    assert by_size[64]["hypar_gain"] / by_size[16]["hypar_gain"] > 1.6
