"""Sensitivity sweeps beyond the paper's figures (batch size, link bandwidth).

These are extension experiments: they answer the "what if" questions the
paper's fixed configuration (batch 256, 1600 Mb/s links) leaves open, using
the same partition search and simulator as the headline figures.
"""

from conftest import emit

from repro.analysis.report import format_series
from repro.analysis.sensitivity import (
    batch_size_sensitivity,
    link_bandwidth_sensitivity,
    precision_sensitivity,
)
from repro.nn.model_zoo import vgg_a


def test_sensitivity_batch_size(benchmark):
    study = benchmark.pedantic(
        batch_size_sensitivity, kwargs={"model": vgg_a()}, rounds=1, iterations=1
    )
    rows = study.as_rows()
    emit(
        "Sensitivity: HyPar speedup over Data Parallelism vs batch size (VGG-A)",
        format_series(
            "speedup", [int(r["parameter"]) for r in rows], [r["speedup"] for r in rows]
        )
        + "\n"
        + format_series(
            "communication reduction",
            [int(r["parameter"]) for r in rows],
            [r["comm_reduction"] for r in rows],
        ),
    )
    benchmark.extra_info["speedups"] = {
        int(r["parameter"]): round(r["speedup"], 3) for r in rows
    }
    for row in rows:
        assert row["speedup"] >= 1.0 - 1e-9


def test_sensitivity_link_bandwidth(benchmark):
    study = benchmark.pedantic(
        link_bandwidth_sensitivity, kwargs={"model": vgg_a()}, rounds=1, iterations=1
    )
    rows = study.as_rows()
    emit(
        "Sensitivity: HyPar speedup over Data Parallelism vs link bandwidth (VGG-A)",
        format_series(
            "speedup",
            [f"{r['parameter'] / 1e6:.0f}Mb/s" for r in rows],
            [r["speedup"] for r in rows],
        ),
    )
    speedups = [r["speedup"] for r in rows]
    benchmark.extra_info["speedup_slowest_link"] = speedups[0]
    benchmark.extra_info["speedup_fastest_link"] = speedups[-1]
    # Faster links shrink the advantage but never flip the ordering.
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[-1] >= 1.0 - 1e-9


def test_sensitivity_precision(benchmark):
    study = benchmark.pedantic(
        precision_sensitivity, kwargs={"model": vgg_a()}, rounds=1, iterations=1
    )
    rows = study.as_rows()
    emit(
        "Sensitivity: HyPar speedup over Data Parallelism vs tensor precision (VGG-A)",
        format_series(
            "speedup",
            [f"{int(r['parameter'])}B/elem" for r in rows],
            [r["speedup"] for r in rows],
        ),
    )
    for row in rows:
        assert row["speedup"] >= 1.0 - 1e-9
