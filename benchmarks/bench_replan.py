"""Resilience: warm-start DP speedup and elastic re-planning throughput.

Node churn makes the partitioner re-solve the hierarchical DP over and
over on mostly unchanged cost tables; the warm-start solver reuses the
layer-prefix frontier state across consecutive solves (bit-exact with a
cold solve -- the property tests pin that).  This bench measures what the
reuse is worth on a real churn replay: the same trace replanned with a
shared :class:`~repro.core.hierarchical.HierarchicalWarmStart` versus a
fresh replanner state every event.
"""

from conftest import emit

from repro.core.costs import CostTable, WarmStartDP
from repro.nn.model_zoo import get_model
from repro.resilience.replan import ReplanConfig, run_replan
from repro.resilience.traces import synthesize_trace

BATCH = 64
NUM_EVENTS = 10
SEED = 7


def test_replan_trace_throughput(benchmark):
    """End-to-end churn replay (the `hypar replan` hot path)."""
    trace = synthesize_trace("spot", num_nodes=16, seed=SEED, num_events=NUM_EVENTS)
    config = ReplanConfig(model="Lenet-c", batch_size=BATCH, policy="every-event")

    report = benchmark(lambda: run_replan(trace, config))

    totals = report.totals()
    benchmark.extra_info["events"] = len(trace.events)
    benchmark.extra_info["replans"] = totals["replans"]
    benchmark.extra_info["warm_full_hits"] = totals["warm_start"]["full_hits"]
    emit(
        "Resilience: elastic re-planning of a 10-event spot trace (Lenet-c)",
        "\n".join(
            [
                f"  replans:           {totals['replans']}",
                f"  mean utilization:  {totals['mean_utilization']:.3f}",
                f"  warm-start hits:   {totals['warm_start']['full_hits']} full, "
                f"{totals['warm_start']['reused_layers']} layers reused",
            ]
        ),
    )


def test_warm_start_dp_speedup(benchmark):
    """Warm versus cold chain-DP solves on an unchanged cost table."""
    model = get_model("VGG-A")
    table = CostTable.compile(model, BATCH)

    cold_result = table.dp_partition()
    warm = WarmStartDP()
    warm.solve(table)  # populate the frontier state

    warm_result = benchmark(lambda: warm.solve(table))

    assert warm_result.assignment == cold_result.assignment
    assert warm_result.communication_bytes == cold_result.communication_bytes
    benchmark.extra_info["full_hits"] = warm.full_hits
    emit(
        "Resilience: warm-start DP re-solve of an unchanged VGG-A table",
        "\n".join(
            [
                f"  layers:     {table.num_layers}",
                f"  full hits:  {warm.full_hits} (re-solves short-circuit entirely)",
                "  bit-exact:  assignment and bytes equal the cold solve",
            ]
        ),
    )
