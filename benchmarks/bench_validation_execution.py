"""Validation bench: the communication model versus real partitioned arithmetic.

Not a paper figure, but the strongest evidence the reproduction's cost model
is right: a small conv+fc network is trained for one step both monolithically
and split across two accelerator groups (numpy arithmetic, every reduction
and re-layout performed explicitly) for **every** dp/mp assignment, and the
bytes actually moved are compared with Tables 1 and 2.
"""

import numpy as np
from conftest import emit

from repro.core.communication import CommunicationModel
from repro.core.execution import TwoGroupExecutor
from repro.core.parallelism import LayerAssignment
from repro.core.tensors import model_tensors
from repro.nn.layers import Activation, ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.nn.reference import ReferenceNetwork

BATCH = 8


def _network() -> ReferenceNetwork:
    model = build_model(
        "validation-net",
        (10, 10, 3),
        [
            ConvLayer(name="conv1", out_channels=6, kernel_size=3, activation=Activation.RELU),
            FCLayer(name="fc1", out_features=24, activation=Activation.RELU),
            FCLayer(name="fc2", out_features=8, activation=Activation.NONE),
        ],
    )
    return ReferenceNetwork(model, seed=17)


def test_partitioned_execution_validates_communication_model(benchmark):
    network = _network()
    model = network.model
    x = network.random_batch(BATCH, seed=1)
    grad_output = np.random.default_rng(2).standard_normal((BATCH, 8))
    comm = CommunicationModel()
    tensors = model_tensors(model, BATCH)

    def validate_all_assignments():
        reference = network.training_step(x, grad_output)
        worst_error = 0.0
        worst_comm_error = 0.0
        rows = []
        for bits in range(1 << len(model)):
            assignment = LayerAssignment.from_codes(bits, len(model))
            result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)
            error = max(
                float(np.max(np.abs(result.gradients[i] - reference[i].grad_weight)))
                for i in range(len(model))
            )
            measured = result.total_elements() * comm.bytes_per_element
            predicted = comm.total_bytes(tensors, assignment)
            worst_error = max(worst_error, error)
            worst_comm_error = max(
                worst_comm_error, abs(measured - predicted) / max(1.0, predicted)
            )
            rows.append((str(assignment), measured / 1e3, predicted / 1e3))
        return worst_error, worst_comm_error, rows

    worst_error, worst_comm_error, rows = benchmark.pedantic(
        validate_all_assignments, rounds=1, iterations=1
    )

    lines = [f"{'assignment':<12s} {'measured KB':>12s} {'predicted KB':>13s}"]
    lines += [f"{name:<12s} {measured:>12.1f} {predicted:>13.1f}" for name, measured, predicted in rows]
    lines.append(f"worst numerical error vs monolithic step: {worst_error:.2e}")
    lines.append(f"worst relative traffic mismatch vs model: {worst_comm_error:.2e}")
    emit(
        "Validation: partitioned numpy execution vs the Table 1/2 communication model",
        "\n".join(lines),
    )

    benchmark.extra_info["worst_numeric_error"] = worst_error
    benchmark.extra_info["worst_traffic_mismatch"] = worst_comm_error
    assert worst_error < 1e-9
    assert worst_comm_error < 1e-9
