"""Shared fixtures and helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md for the experiment index).  The benches are run
with::

    pytest benchmarks/ --benchmark-only

Each bench times the experiment with ``pytest-benchmark`` and *prints* the
regenerated rows/series in the same structure the paper reports, so the
output can be compared side by side with the original figures (recorded in
EXPERIMENTS.md).  Key reproduced values are also attached to
``benchmark.extra_info`` so they end up in the benchmark JSON.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.accelerator.array import ArrayConfig  # noqa: E402
from repro.analysis.experiments import ExperimentRunner  # noqa: E402


def emit(title: str, text: str) -> None:
    """Print a regenerated figure with a recognisable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@pytest.fixture(scope="session")
def paper_runner():
    """The paper's configuration: sixteen accelerators, H tree, batch 256."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def paper_array():
    return ArrayConfig()


@pytest.fixture(scope="session")
def full_evaluation(paper_runner):
    """Figures 6-8 data over all ten networks, computed once per session."""
    return paper_runner.run()
