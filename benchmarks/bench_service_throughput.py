"""Throughput of the ``hypar serve`` daemon: warm requests vs cold CLI runs.

The service exists so repeated traffic stops paying the one-shot CLI tax
(interpreter startup, imports, model construction, cost-table
compilation).  This bench quantifies that: it stands up a real daemon on
an ephemeral port, primes it with one request, then

* times warm repeated ``POST /partition`` requests over HTTP (the
  pytest-benchmark stat *and* a manual requests/sec loop), and
* times the identical workload as cold ``hypar partition`` CLI
  subprocesses, exactly as a non-daemon caller would pay for it.

Both throughputs and their ratio land in ``benchmark.extra_info`` /
``BENCH_search.json``.  The acceptance bar (ISSUE 5) is a >= 10x warm
advantage; in practice the warm path is hundreds of times faster because
a cache hit is a dictionary lookup plus HTTP framing.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from repro.service.client import ServiceClient
from repro.service.server import build_server

from conftest import emit

#: The workload, identical on both paths: partition Lenet-c on a
#: four-accelerator array at batch 64.
_FIELDS = {"model": "Lenet-c", "batch_size": 64, "num_accelerators": 4}
_CLI_ARGS = ["partition", "Lenet-c", "--batch-size", "64", "--accelerators", "4"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Acceptance floor for the warm-vs-cold advantage.
MIN_WARM_SPEEDUP = 10.0


def _cold_cli_seconds(runs: int = 2) -> float:
    """Mean wall-clock of a cold ``hypar partition`` CLI invocation."""
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    total = 0.0
    for _ in range(runs):
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", *_CLI_ARGS],
            check=True,
            capture_output=True,
            cwd=_REPO_ROOT,
            env=env,
        )
        total += time.perf_counter() - start
    return total / runs


def test_service_warm_requests_vs_cold_cli(benchmark):
    """Warm daemon latency must beat the cold CLI by >= 10x (it's ~100x+)."""
    server = build_server(port=0)
    acceptor = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    acceptor.start()
    try:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.wait_until_healthy()
            client.partition(**_FIELDS)  # prime: compile table, fill cache

            warm_requests = 100
            start = time.perf_counter()
            for _ in range(warm_requests):
                client.partition(**_FIELDS)
            warm_seconds = (time.perf_counter() - start) / warm_requests

            benchmark(client.partition, **_FIELDS)

            cold_seconds = _cold_cli_seconds()
            health = client.healthz()
    finally:
        server.close()
        acceptor.join(timeout=5.0)

    warm_rps = 1.0 / warm_seconds
    cold_rps = 1.0 / cold_seconds
    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["warm_requests_per_second"] = warm_rps
    benchmark.extra_info["cold_cli_requests_per_second"] = cold_rps
    benchmark.extra_info["warm_vs_cold_speedup"] = speedup
    benchmark.extra_info["result_cache_hits"] = health["result_cache"]["hits"]
    emit(
        "Service throughput: warm POST /partition vs cold `hypar partition`",
        f"warm    : {warm_rps:,.0f} requests/s ({warm_seconds * 1e3:.3f} ms each)\n"
        f"cold CLI: {cold_rps:,.2f} requests/s ({cold_seconds:.3f} s each)\n"
        f"speedup : {speedup:.0f}x (floor {MIN_WARM_SPEEDUP:.0f}x)",
    )
    assert health["result_cache"]["hits"] >= warm_requests
    assert speedup >= MIN_WARM_SPEEDUP
