"""Figure 9: parallelism-space exploration for Lenet-c.

The parallelisms of all four layers at hierarchy levels H2 and H3 are fixed
to HyPar's choices while the four layers at H1 and H4 sweep through every
dp/mp combination (256 points).  The paper finds the performance peak at
H1 = 0011, H4 = 0011 (dp, dp, mp, mp at both levels), which is exactly the
assignment HyPar's search returns, at 3.05x over Data Parallelism.
"""

from conftest import emit

from repro.analysis.exploration import ParallelismExplorer, bit_string


def test_fig09_lenet_parallelism_space(benchmark):
    explorer = ParallelismExplorer()

    result = benchmark.pedantic(explorer.explore_lenet, rounds=1, iterations=1)

    peak = result.peak
    num_positions = len(result.free_positions)
    top = sorted(
        result.points, key=lambda point: point.normalized_performance, reverse=True
    )[:5]
    lines = [
        f"swept positions: {num_positions} (4 layers x levels H1 and H4), "
        f"{len(result.points)} points",
        f"HyPar normalized performance: {result.hypar_performance:.2f}x "
        "(paper: 3.05x)",
        f"peak normalized performance:  {peak.normalized_performance:.2f}x at "
        f"bits {bit_string(peak, num_positions)} (paper: 3.05x at H1=0011, H4=0011)",
        f"HyPar achieves the peak: {result.hypar_is_peak}",
        "top-5 points:",
    ]
    for point in top:
        lines.append(
            f"  bits {bit_string(point, num_positions)}  "
            f"{point.normalized_performance:.3f}x"
        )
    emit("Figure 9: parallelism space exploration for Lenet-c", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "hypar_performance": result.hypar_performance,
            "peak_performance": peak.normalized_performance,
            "hypar_is_peak": result.hypar_is_peak,
            "paper_peak": 3.05,
        }
    )

    # Shape assertions: HyPar sits at (or within 5% of) the sweep's peak.
    assert result.hypar_gap <= 0.05
    assert result.hypar_performance > 1.0
