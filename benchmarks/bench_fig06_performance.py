"""Figure 6: performance of Model Parallelism, Data Parallelism and HyPar.

Every value is the simulated training-step speedup normalised to the
default Data Parallelism on the sixteen-accelerator H-tree array.  The
paper reports a geometric-mean gain of 3.39x for HyPar and shows Model
Parallelism losing to Data Parallelism on every network except SFC.
"""

from conftest import emit

from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ExperimentRunner,
)
from repro.analysis.report import format_table
from repro.nn.model_zoo import all_models

PAPER_VALUES = {
    "SFC": {"Model Parallelism": 22.19, "HyPar": 23.48},
    "SCONV": {"Model Parallelism": 0.0374, "HyPar": 1.00},
    "Lenet-c": {"Model Parallelism": 0.469, "HyPar": 3.05},
    "Cifar-c": {"Model Parallelism": 0.100, "HyPar": 1.23},
    "AlexNet": {"Model Parallelism": 0.183, "HyPar": 3.27},
    "VGG-A": {"Model Parallelism": 0.346, "HyPar": 4.97},
    "VGG-B": {"Model Parallelism": 0.130, "HyPar": 3.21},
    "VGG-C": {"Model Parallelism": 0.140, "HyPar": 4.06},
    "VGG-D": {"Model Parallelism": 0.123, "HyPar": 2.73},
    "VGG-E": {"Model Parallelism": 0.121, "HyPar": 3.92},
    "Gmean": {"Model Parallelism": 0.241, "HyPar": 3.39},
}


def test_fig06_normalized_performance(benchmark, paper_runner: ExperimentRunner):
    models = all_models()

    def run():
        table = paper_runner.run(models)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    perf = table.performance()

    strategies = [MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR]
    emit(
        "Figure 6: performance normalized to Data Parallelism "
        "(paper gmeans: MP 0.241x, DP 1.00x, HyPar 3.39x)",
        format_table("measured", perf, strategies),
    )

    gmean_hypar = table.gmean(perf, HYPAR)
    gmean_mp = table.gmean(perf, MODEL_PARALLELISM)
    benchmark.extra_info["gmean_hypar"] = gmean_hypar
    benchmark.extra_info["gmean_model_parallelism"] = gmean_mp
    benchmark.extra_info["paper_gmean_hypar"] = PAPER_VALUES["Gmean"]["HyPar"]

    # Shape assertions: HyPar wins on average, MP loses on average.
    assert gmean_hypar > 2.0
    assert gmean_mp < 1.0
