"""Process-global caches shared by sweep tasks.

Sweep task functions are module-level (picklable) and receive only their
point's description, so everything heavy -- compiled
:class:`~repro.core.costs.HierarchicalCostTable` arrays, simulators with
their warmed pass caches, partitioners -- lives in per-process caches this
module owns:

* :func:`shared_table_cache` -- the one
  :class:`~repro.core.costs.TableCache` of the process, keyed by
  ``(model, strategy space, scaling mode, batch, num_levels)`` (see
  :func:`repro.core.costs.table_cache_key`).  Every simulator/partitioner a
  sweep task builds is wired to it, so
  ``HierarchicalCostTable`` compilation happens once per configuration per
  process instead of once per sweep point.
* :func:`runtime_cached` -- memoizes arbitrary per-configuration runtime
  objects (simulators, partitioners, zoo models) under hashable keys.

Under the default ``fork`` start method worker processes inherit whatever
the parent process had already cached; either way each worker warms its own
copy with the first task of a configuration it sees.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.core.costs import TableCache

Value = TypeVar("Value")

#: Upper bound on memoized runtime objects; a sweep touches a handful of
#: (array, topology, scaling, strategies) configurations, so this is only a
#: leak guard for pathological callers.
_RUNTIME_LIMIT = 256

_TABLE_CACHE = TableCache()
_RUNTIME: dict = {}


def shared_table_cache() -> TableCache:
    """The process-wide compiled-table cache."""
    return _TABLE_CACHE


def runtime_cached(key: tuple, factory: Callable[[], Value]) -> Value:
    """The memoized ``factory()`` result for ``key`` (per process)."""
    try:
        return _RUNTIME[key]
    except KeyError:
        pass
    if len(_RUNTIME) >= _RUNTIME_LIMIT:
        _RUNTIME.clear()
    value = factory()
    _RUNTIME[key] = value
    return value


def clear_caches() -> None:
    """Reset both caches (tests; also a fresh-measurement hook for benches)."""
    _TABLE_CACHE.clear()
    _RUNTIME.clear()
