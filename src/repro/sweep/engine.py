"""Process-parallel map engine behind every figure sweep.

The paper's evaluation is a grid of independent points (ten networks x
topologies x scaling modes x batch sizes); each `repro.analysis` study used
to run its own serial loop over its slice of that grid.  The engine factors
the loop out once:

* :meth:`SweepEngine.map` applies a task function to a list of tasks and
  returns the results *in task order*;
* tasks are split into deterministic contiguous chunks (a pure function of
  the task count and the chunk size, never of scheduling), each chunk runs
  on one worker, and the flattened result list is therefore identical
  whatever the worker count;
* with ``workers=1`` (the default) no process pool is involved at all --
  the same chunks run in-process, so the serial path is the parallel
  path's oracle;
* when a pool cannot be created (sandboxes without ``fork`` /
  ``/dev/shm``), the engine degrades to the serial path instead of
  failing.

Because every task value is computed independently of its siblings, the
per-point floats -- and hence every figure assembled from them -- are
byte-identical between the serial and process-parallel runs; the parity is
pinned by ``tests/sweep/test_sweep_engine.py``.

Worker processes warm their own process-global caches (see
:mod:`repro.sweep.cache`): the first task of a configuration compiles the
shared cost table, subsequent tasks gather from it.  With the default
``fork`` start method workers also inherit whatever the parent had already
compiled.  The parent's kernel backend, by contrast, is propagated
*explicitly*: the pool initializer re-applies it in every worker
(:func:`_worker_init`), so ``--backend compiled`` survives the ``spawn``
and ``forkserver`` start methods too, where a fresh interpreter would
otherwise silently reset to the ``"numpy"`` default.
"""

from __future__ import annotations

import contextlib
import os
import threading
import warnings
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Executor,
    ProcessPoolExecutor,
)
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core import kernels

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Target chunks per worker: small enough to amortize the per-chunk IPC,
#: large enough to balance uneven per-task latencies (VGG-E vs Lenet-c).
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count used by ``workers=None``: one per available CPU."""
    return max(1, os.cpu_count() or 1)


def chunk_tasks(num_tasks: int, chunk_size: int) -> list[tuple[int, int]]:
    """Deterministic contiguous ``(start, stop)`` chunks covering the tasks.

    A pure function of ``(num_tasks, chunk_size)`` -- scheduling, worker
    count and machine load never influence which tasks share a chunk, so
    re-running a sweep always groups (and orders) the work identically.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        (start, min(start + chunk_size, num_tasks))
        for start in range(0, num_tasks, chunk_size)
    ]


def _run_chunk(payload: tuple[Callable, list]) -> list:
    """Executed on a worker: apply the task function to one chunk, in order."""
    fn, chunk = payload
    return [fn(task) for task in chunk]


def _worker_init(backend: str) -> None:
    """Pool initializer: adopt the parent's kernel backend in this worker.

    Under ``spawn``/``forkserver`` a worker imports :mod:`repro` from
    scratch, so without this it would run the module-default ``"numpy"``
    backend no matter what the parent selected; under ``fork`` it is a
    harmless re-set of the inherited value.  Results are bit-identical
    across backends either way -- this preserves the *speed* the user
    asked for, not correctness.
    """
    kernels.set_default_backend(backend)


class SweepEngine:
    """Maps task functions over task lists, serially or process-parallel.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (default) runs in-process with no pool;
        ``None`` uses one worker per CPU.  For ``workers > 1`` the task
        function must be a module-level callable and tasks/results must be
        picklable (the standard ``concurrent.futures`` contract).
    chunk_size:
        Tasks per chunk; defaults to an even split into
        ``workers * 4`` chunks.  Chunking is deterministic either way.
    backend:
        Kernel backend the worker processes adopt as their process
        default (see :mod:`repro.core.kernels`).  ``None`` (default)
        captures the parent's default backend at pool creation, so a CLI
        ``--backend compiled`` flows into the workers under every
        multiprocessing start method.

    The engine keeps its pool alive across :meth:`map` calls (sweeps issue
    one map per study), so worker-side caches stay warm; use the context
    manager form or :meth:`close` to release the processes.
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunk_size: int | None = None,
        backend: str | None = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = kernels.validate_backend(backend)
        self._executor: Executor | None = None
        self._pool_broken = False
        self._closed = False
        # Guards executor creation/teardown: close() may race a map() from
        # another thread or fire twice (signal handler + finally block).
        self._lifecycle = threading.Lock()

    @classmethod
    def serial(cls) -> "SweepEngine":
        """The in-process engine (the byte-identity oracle)."""
        return cls(workers=1)

    # ------------------------------------------------------------------
    # Mapping.
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Task], Result], tasks: Sequence[Task]) -> list[Result]:
        """``[fn(task) for task in tasks]``, possibly across processes.

        Results come back in task order regardless of worker scheduling.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        chunk_size = self.chunk_size or max(
            1, -(-len(tasks) // (self.workers * _CHUNKS_PER_WORKER))
        )
        spans = chunk_tasks(len(tasks), chunk_size)
        chunks = [tasks[start:stop] for start, stop in spans]

        if self.workers > 1 and len(tasks) > 1:
            executor = self._ensure_executor()
            if executor is not None:
                payloads = [(fn, chunk) for chunk in chunks]
                try:
                    grouped = list(executor.map(_run_chunk, payloads))
                except (OSError, BrokenExecutor, CancelledError) as error:
                    # ProcessPoolExecutor spawns its workers lazily inside
                    # map, so fork/clone failures surface here rather than
                    # at construction; degrade like a construction failure.
                    # CancelledError means close() cancelled our pending
                    # chunks from another thread (signal-driven teardown).
                    # (Task results are per-point pure, so the serial rerun
                    # below is identical to what the pool would have done.)
                    warnings.warn(
                        f"process pool failed ({error!r}); running the sweep serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._pool_broken = True
                    self.close()
                except RuntimeError as error:
                    # "cannot schedule new futures after (interpreter)
                    # shutdown": the pool was closed under us.  Anything
                    # else is a genuine task failure and propagates.
                    if "shutdown" not in str(error):
                        raise
                    warnings.warn(
                        f"process pool closed mid-sweep ({error}); "
                        "running the sweep serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._pool_broken = True
                    self.close()
                else:
                    return [result for group in grouped for result in group]

        return [result for chunk in chunks for result in _run_chunk((fn, chunk))]

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> Executor | None:
        with self._lifecycle:
            if self._executor is not None or self._pool_broken or self._closed:
                return self._executor
            try:
                # Resolve the backend at pool creation (not __init__), so
                # an engine built before `--backend` was applied still
                # ships the final choice to its workers.
                backend = self.backend or kernels.get_default_backend()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(backend,),
                )
            except (OSError, ValueError, NotImplementedError) as error:
                # No usable multiprocessing primitives (restricted sandboxes):
                # degrade to the serial path, which produces identical results.
                warnings.warn(
                    f"process pool unavailable ({error}); running the sweep serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._pool_broken = True
            return self._executor

    @property
    def pool_active(self) -> bool:
        """Whether a live process pool is attached.

        ``False`` before the first parallel :meth:`map` and after a
        degrade-to-serial fallback -- callers gating on parallel behaviour
        (the speedup bench) check this instead of assuming the pool came up.
        """
        return self._executor is not None and not self._pool_broken

    @property
    def pool_degraded(self) -> bool:
        """Whether the engine has fallen back (or will fall back) to serial.

        Set when a pool could not be created or broke mid-map (worker
        killed, sandbox without ``fork``); results remain identical via
        the serial path.  Surfaced by the service's ``/healthz`` as the
        ``degraded`` flag so orchestrators can react.
        """
        return self._pool_broken

    def close(self) -> None:
        """Shut the worker pool down (idempotent, thread- and signal-safe).

        Safe to call repeatedly, from several threads at once, or from
        signal-*driven* teardown racing an in-flight :meth:`map` -- the
        ``hypar serve`` pattern, where the signal handler only sets an
        event and the main thread calls ``close()`` after the serve loop
        exits.  (Do not call ``close()`` from *inside* a signal handler:
        the handler runs on the interrupted thread's stack and would
        deadlock if that thread holds the lifecycle lock.)  Exactly one
        caller takes ownership
        of the executor, pending chunk futures are cancelled so shutdown
        cannot wait on work nobody will consume, and every other caller
        returns immediately.  No ``ProcessPoolExecutor`` or worker process
        outlives the call, and a closed engine never re-spawns one -- any
        straggler :meth:`map` (a request thread still draining during
        daemon teardown) runs its tasks serially, with identical results.
        """
        with self._lifecycle:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except RuntimeError:  # pragma: no cover - interpreter teardown
                # Late interpreter shutdown can no longer join threads;
                # the executor's own atexit hook reaps the workers.
                pass

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepEngine(workers={self.workers})"


def resolve_engine(engine: "SweepEngine | int | None") -> SweepEngine:
    """Normalize the ``engine`` parameter the studies accept.

    ``None`` means the serial engine (the historical behaviour of every
    study); an integer is shorthand for ``SweepEngine(workers=n)``.
    Callers that may receive an int should prefer :func:`owned_engine`,
    which also closes any pool created by the normalization.
    """
    if engine is None:
        return SweepEngine.serial()
    if isinstance(engine, int):
        return SweepEngine(workers=engine)
    return engine


@contextlib.contextmanager
def owned_engine(engine: "SweepEngine | int | None") -> Iterator[SweepEngine]:
    """Resolve ``engine``, closing it afterwards iff it was created here.

    An explicitly constructed :class:`SweepEngine` passes through
    untouched (its owner decides when to release the pool); ``None`` or a
    worker count yields a locally owned engine whose processes are shut
    down on exit, so ``run_study(engine=4)`` cannot leak a pool.
    """
    resolved = resolve_engine(engine)
    try:
        yield resolved
    finally:
        if resolved is not engine:
            resolved.close()
