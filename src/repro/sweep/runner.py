"""The generic grid runner behind ``hypar sweep``.

Every :class:`~repro.sweep.spec.SweepPoint` is one independent job: search
HyPar's assignment for the point's configuration, simulate it next to the
default Data/Model Parallelism baselines, and emit one flat
:class:`SweepRecord`.  The per-point task function is module-level (so the
process-parallel engine can ship it to workers) and everything heavy is
fetched through the process-global caches of :mod:`repro.sweep.cache` --
in particular the compiled cost table, which is shared by the search and
all three simulations of a point *and* by every other point of the grid
with the same ``(model, strategy space, scaling mode, batch, num_levels)``
key.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism, model_parallelism
from repro.core.costmodel import resolve_cost_model
from repro.core.hierarchical import HierarchicalPartitioner
from repro.interconnect import HTreeTopology, Topology, TorusTopology
from repro.nn.model_zoo import get_model
from repro.sweep import artifacts
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sim.training import TrainingSimulator

#: Strategy names as the paper's figures label them.
MODEL_PARALLELISM = "Model Parallelism"
DATA_PARALLELISM = "Data Parallelism"
HYPAR = "HyPar"


def _make_topology(name: str, num_accelerators: int, link_bandwidth_bytes: float) -> Topology:
    if name == "htree":
        return HTreeTopology(num_accelerators, link_bandwidth_bytes)
    if name == "torus":
        return TorusTopology(num_accelerators, link_bandwidth_bytes)
    raise ValueError(f"unknown topology {name!r}")


def _simulator_for(point: SweepPoint) -> TrainingSimulator:
    def build() -> TrainingSimulator:
        array = ArrayConfig(num_accelerators=point.num_accelerators)
        topology = (
            _make_topology(point.topology, point.num_accelerators, array.link_bandwidth_bytes)
            if point.num_accelerators > 1
            else None
        )
        return TrainingSimulator(
            array,
            topology,
            communication_model=resolve_cost_model(point.cost_model).communication_model(),
            scaling_mode=point.scaling_mode,
            strategies=point.strategies,
            table_cache=shared_table_cache(),
            sim_engine=point.sim_engine,
        )

    key = (
        "simulator",
        point.num_accelerators,
        point.topology,
        point.scaling_mode,
        point.strategies,
        point.cost_model,
        point.sim_engine,
    )
    return runtime_cached(key, build)


def _partitioner_for(point: SweepPoint, simulator: TrainingSimulator) -> HierarchicalPartitioner:
    key = (
        "partitioner",
        point.num_accelerators,
        point.scaling_mode,
        point.strategies,
        point.cost_model,
    )
    return runtime_cached(
        key,
        lambda: HierarchicalPartitioner(
            num_levels=simulator.array.num_levels,
            communication_model=simulator.communication_model,
            scaling_mode=point.scaling_mode,
            strategies=simulator.strategies,
        ),
    )


def _model_for(name: str):
    return runtime_cached(("model", name), lambda: get_model(name))


@dataclasses.dataclass(frozen=True)
class StrategyMetrics:
    """Simulated cost of one strategy at one sweep point."""

    step_seconds: float
    energy_joules: float
    communication_gb: float


@dataclasses.dataclass(frozen=True)
class SweepRecord:
    """One grid point's outcome: HyPar next to the two uniform baselines."""

    point: SweepPoint
    metrics: Mapping[str, StrategyMetrics]
    #: HyPar's searched per-level parallelism lists (e.g. ``"dp-mp-dp"``),
    #: empty for the single-accelerator degenerate point.
    hypar_levels: tuple[str, ...]

    def speedup(self, strategy: str = HYPAR, baseline: str = DATA_PARALLELISM) -> float:
        """Performance of ``strategy`` normalised to ``baseline`` (Figure 6)."""
        return self.metrics[baseline].step_seconds / self.metrics[strategy].step_seconds

    def energy_efficiency(
        self, strategy: str = HYPAR, baseline: str = DATA_PARALLELISM
    ) -> float:
        """Energy saving of ``strategy`` normalised to ``baseline`` (Figure 7)."""
        return self.metrics[baseline].energy_joules / self.metrics[strategy].energy_joules

    def to_row(self) -> dict:
        """Flat artifact row (one line of the sweep CSV)."""
        row = {
            "index": self.point.index,
            "model": self.point.model,
            "batch_size": self.point.batch_size,
            "num_accelerators": self.point.num_accelerators,
            "topology": self.point.topology,
            "scaling_mode": self.point.scaling_mode,
            "strategies": self.point.strategies,
            "cost_model": self.point.cost_model,
        }
        # Analytic rows keep the historical column set byte-for-byte; only
        # network-engine rows grow the extra column (the CSV writer unions
        # keys, so mixed grids render it with empty analytic cells).
        if self.point.sim_engine != "analytic":
            row["sim_engine"] = self.point.sim_engine
        for name, metrics in self.metrics.items():
            slug = name.lower().replace(" ", "_")
            row[f"{slug}_step_seconds"] = metrics.step_seconds
            row[f"{slug}_energy_joules"] = metrics.energy_joules
            row[f"{slug}_communication_gb"] = metrics.communication_gb
        if len(self.metrics) > 1:
            row["hypar_speedup"] = self.speedup()
            row["hypar_energy_efficiency"] = self.energy_efficiency()
        row["hypar_levels"] = " | ".join(self.hypar_levels)
        return row


def evaluate_point(point: SweepPoint) -> SweepRecord:
    """Search + simulate one grid point (the engine's task function)."""
    simulator = _simulator_for(point)
    model = _model_for(point.model)

    if point.num_accelerators == 1:
        report = simulator.simulate(model, None, point.batch_size, strategy_name="single")
        metrics = {
            "single": StrategyMetrics(
                step_seconds=report.step_seconds,
                energy_joules=report.energy_joules,
                communication_gb=report.communication_gb,
            )
        }
        return SweepRecord(point=point, metrics=metrics, hypar_levels=())

    partitioner = _partitioner_for(point, simulator)
    table = simulator.cost_table(model, point.batch_size)
    hypar = partitioner.partition(model, point.batch_size, table=table)
    num_levels = simulator.array.num_levels
    assignments = {
        MODEL_PARALLELISM: model_parallelism(model, num_levels),
        DATA_PARALLELISM: data_parallelism(model, num_levels),
        HYPAR: hypar.assignment,
    }
    metrics = {}
    for name, assignment in assignments.items():
        report = simulator.simulate(
            model, assignment, point.batch_size, name, cost_table=table
        )
        metrics[name] = StrategyMetrics(
            step_seconds=report.step_seconds,
            energy_joules=report.energy_joules,
            communication_gb=report.communication_gb,
        )
    return SweepRecord(
        point=point,
        metrics=metrics,
        hypar_levels=tuple(str(level) for level in hypar.assignment.levels),
    )


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All records of one grid run, in point order."""

    spec: SweepSpec
    records: tuple[SweepRecord, ...]

    def to_rows(self) -> list[dict]:
        return [record.to_row() for record in self.records]

    def to_payload(self) -> dict:
        """The JSON artifact: the spec next to its rows."""
        return {"spec": self.spec.to_json(), "rows": self.to_rows()}

    def write_artifacts(self, directory: str) -> dict[str, str]:
        """Write ``<name>.json`` and ``<name>.csv`` under ``directory``."""
        import os

        json_path = os.path.join(directory, f"{self.spec.name}.json")
        csv_path = os.path.join(directory, f"{self.spec.name}.csv")
        artifacts.write_json(json_path, self.to_payload())
        artifacts.write_csv(csv_path, self.to_rows())
        return {"json": json_path, "csv": csv_path}


def run_sweep(
    spec: SweepSpec,
    engine: SweepEngine | int | None = None,
    points: Sequence[SweepPoint] | None = None,
) -> SweepResult:
    """Run the grid described by ``spec`` through the engine.

    ``points`` optionally restricts the run to a subset (already-expanded)
    of the grid; by default the whole spec expands.  Results are in point
    order and independent of the engine's worker count.
    """
    grid = tuple(points) if points is not None else spec.points()
    with owned_engine(engine) as resolved:
        records = resolved.map(evaluate_point, grid)
    return SweepResult(spec=spec, records=tuple(records))
