"""Declarative description of a figure-style sweep grid.

A :class:`SweepSpec` names the axes of the paper's evaluation grid --
models x strategy spaces x topologies x scaling modes x batch sizes x
array sizes -- and expands to the cartesian product of
:class:`SweepPoint` records in a deterministic order (axes nested in the
field order above, models outermost).  Specs round-trip through JSON
(``hypar sweep my_spec.json``) and a few named presets cover the common
grids (``hypar sweep fig6``).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from typing import Mapping

from repro.core.costmodel import ANALYTIC_SPEC, canonical_cost_model
from repro.core.hierarchical import DEFAULT_BATCH_SIZE
from repro.core.parallelism import StrategySpace
from repro.core.tensors import ScalingMode
from repro.sim.backend import DEFAULT_SIM_ENGINE, validate_sim_engine

#: Topology names the runner can instantiate (see ``runner.TOPOLOGIES``).
TOPOLOGY_NAMES = ("htree", "torus")

#: The paper's ten evaluation networks, in figure order.
PAPER_MODELS = (
    "SFC",
    "SCONV",
    "Lenet-c",
    "Cifar-c",
    "AlexNet",
    "VGG-A",
    "VGG-B",
    "VGG-C",
    "VGG-D",
    "VGG-E",
)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration of the grid: a single search-plus-simulate job."""

    index: int
    model: str
    batch_size: int
    num_accelerators: int
    topology: str
    scaling_mode: str
    strategies: str
    cost_model: str = ANALYTIC_SPEC
    sim_engine: str = DEFAULT_SIM_ENGINE

    def label(self) -> str:
        """Compact human-readable point id used in logs and artifacts."""
        base = (
            f"{self.model}/b{self.batch_size}/n{self.num_accelerators}"
            f"/{self.topology}/{self.scaling_mode}/{self.strategies}"
        )
        # The analytic defaults stay label-identical to the historical
        # format; only calibrated/network points grow the extra segments.
        if self.cost_model != ANALYTIC_SPEC:
            base = f"{base}/{self.cost_model}"
        if self.sim_engine != DEFAULT_SIM_ENGINE:
            base = f"{base}/{self.sim_engine}"
        return base

    @classmethod
    def single(
        cls,
        model: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        num_accelerators: int = 16,
        topology: str = "htree",
        scaling_mode: "ScalingMode | str" = ScalingMode.PARALLELISM_AWARE,
        strategies: "StrategySpace | str | None" = None,
        cost_model: str = ANALYTIC_SPEC,
        sim_engine: str = DEFAULT_SIM_ENGINE,
    ) -> "SweepPoint":
        """One standalone, fully validated and canonicalized grid point.

        The reusable entry for callers that want exactly one
        search-plus-simulate job -- the service's ``/simulate`` endpoint,
        scripts -- with the same axis validation and canonical spellings a
        one-point :class:`SweepSpec` would produce (``ValueError`` on bad
        axes, like the spec).
        """
        spec = SweepSpec(
            name="point",
            models=(model,),
            batch_sizes=(batch_size,),
            array_sizes=(num_accelerators,),
            topologies=(topology,),
            scaling_modes=(ScalingMode.parse(scaling_mode).value,),
            strategy_spaces=(StrategySpace.parse(strategies).describe(),),
            cost_models=(canonical_cost_model(cost_model),),
            sim_engines=(validate_sim_engine(sim_engine),),
        )
        return spec.points()[0]


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """The grid: every combination of the axes is one :class:`SweepPoint`.

    ``array_sizes`` entries must be powers of two; size ``1`` is allowed
    and simulates the single-accelerator baseline (no topology, no
    assignment), as in the scalability study.
    """

    name: str
    models: tuple[str, ...]
    batch_sizes: tuple[int, ...] = (DEFAULT_BATCH_SIZE,)
    array_sizes: tuple[int, ...] = (16,)
    topologies: tuple[str, ...] = ("htree",)
    scaling_modes: tuple[str, ...] = (ScalingMode.PARALLELISM_AWARE.value,)
    strategy_spaces: tuple[str, ...] = ("dp,mp",)
    cost_models: tuple[str, ...] = (ANALYTIC_SPEC,)
    sim_engines: tuple[str, ...] = (DEFAULT_SIM_ENGINE,)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep spec needs a name")
        for axis in (
            "models",
            "batch_sizes",
            "array_sizes",
            "topologies",
            "scaling_modes",
            "strategy_spaces",
            "cost_models",
            "sim_engines",
        ):
            values = getattr(self, axis)
            object.__setattr__(self, axis, tuple(values))
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must not be empty")
        for batch in self.batch_sizes:
            if batch <= 0:
                raise ValueError(f"batch sizes must be positive, got {batch}")
        for size in self.array_sizes:
            if size < 1 or size & (size - 1):
                raise ValueError(
                    f"array sizes must be powers of two >= 1, got {size}"
                )
        for topology in self.topologies:
            if topology not in TOPOLOGY_NAMES:
                raise ValueError(
                    f"unknown topology {topology!r}; known: {', '.join(TOPOLOGY_NAMES)}"
                )
        for mode in self.scaling_modes:
            ScalingMode.parse(mode)  # raises on unknown modes
        for space in self.strategy_spaces:
            StrategySpace.parse(space)  # raises on unknown strategies
        object.__setattr__(
            self,
            "cost_models",
            tuple(canonical_cost_model(spec) for spec in self.cost_models),
        )
        object.__setattr__(
            self,
            "sim_engines",
            tuple(validate_sim_engine(engine) for engine in self.sim_engines),
        )

    # ------------------------------------------------------------------
    # Expansion.
    # ------------------------------------------------------------------

    @property
    def num_points(self) -> int:
        return (
            len(self.models)
            * len(self.batch_sizes)
            * len(self.array_sizes)
            * len(self.topologies)
            * len(self.scaling_modes)
            * len(self.strategy_spaces)
            * len(self.cost_models)
            * len(self.sim_engines)
        )

    def points(self) -> tuple[SweepPoint, ...]:
        """The grid in deterministic order (models outermost)."""
        return tuple(
            SweepPoint(
                index=index,
                model=model,
                batch_size=batch_size,
                num_accelerators=num_accelerators,
                topology=topology,
                scaling_mode=ScalingMode.parse(scaling_mode).value,
                strategies=StrategySpace.parse(strategies).describe(),
                cost_model=cost_model,
                sim_engine=sim_engine,
            )
            for index, (
                model,
                batch_size,
                num_accelerators,
                topology,
                scaling_mode,
                strategies,
                cost_model,
                sim_engine,
            ) in enumerate(
                itertools.product(
                    self.models,
                    self.batch_sizes,
                    self.array_sizes,
                    self.topologies,
                    self.scaling_modes,
                    self.strategy_spaces,
                    self.cost_models,
                    self.sim_engines,
                )
            )
        )

    # ------------------------------------------------------------------
    # JSON round trip.
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "models": list(self.models),
            "batch_sizes": list(self.batch_sizes),
            "array_sizes": list(self.array_sizes),
            "topologies": list(self.topologies),
            "scaling_modes": list(self.scaling_modes),
            "strategy_spaces": list(self.strategy_spaces),
            "cost_models": list(self.cost_models),
            "sim_engines": list(self.sim_engines),
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "SweepSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep spec keys: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        if "name" not in payload or "models" not in payload:
            raise ValueError("a sweep spec requires at least 'name' and 'models'")
        kwargs = {key: payload[key] for key in payload}
        for axis in (
            "models",
            "batch_sizes",
            "array_sizes",
            "topologies",
            "scaling_modes",
            "strategy_spaces",
            "cost_models",
            "sim_engines",
        ):
            if axis in kwargs:
                if isinstance(kwargs[axis], str):
                    # tuple("VGG-A") would silently explode into letters.
                    raise ValueError(
                        f"sweep spec axis {axis!r} must be a list, got the "
                        f"string {kwargs[axis]!r}"
                    )
                kwargs[axis] = tuple(kwargs[axis])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path) as handle:
            return cls.from_json(json.load(handle))

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_points} points "
            f"({len(self.models)} models x {len(self.batch_sizes)} batches x "
            f"{len(self.array_sizes)} array sizes x {len(self.topologies)} "
            f"topologies x {len(self.scaling_modes)} scaling modes x "
            f"{len(self.strategy_spaces)} strategy spaces x "
            f"{len(self.cost_models)} cost models x "
            f"{len(self.sim_engines)} sim engines)"
        )


#: Named grids runnable as ``hypar sweep <preset>``.
PRESETS: dict[str, SweepSpec] = {
    # The Figures 6-8 grid: the paper's ten networks on the preferred
    # platform (sixteen accelerators, H tree, batch 256).
    "fig6": SweepSpec(name="fig6", models=PAPER_MODELS),
    # The Figure 12 grid: the same networks on both interconnects.
    "fig12": SweepSpec(
        name="fig12", models=PAPER_MODELS, topologies=("htree", "torus")
    ),
    # The batch-size axis of the sensitivity study on VGG-A.
    "batch": SweepSpec(
        name="batch",
        models=("VGG-A",),
        batch_sizes=(32, 64, 128, 256, 512, 1024, 2048, 4096),
    ),
    # A two-model, two-batch grid small enough for CI smoke runs.
    "smoke": SweepSpec(
        name="smoke",
        models=("Lenet-c", "Cifar-c"),
        batch_sizes=(64, 256),
        array_sizes=(8,),
    ),
}


def load_spec(name_or_path: str) -> SweepSpec:
    """Resolve a preset name or a JSON spec file path."""
    if name_or_path in PRESETS:
        return PRESETS[name_or_path]
    if name_or_path.endswith(".json"):
        return SweepSpec.from_file(name_or_path)
    raise ValueError(
        f"unknown sweep preset {name_or_path!r} (and not a .json path); "
        f"presets: {', '.join(sorted(PRESETS))}"
    )
