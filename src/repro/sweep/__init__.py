"""Sweep orchestration: one cached, process-parallel runner for every study.

The paper's evaluation (Figures 6-13) is a grid of independent
search-plus-simulate jobs.  This package factors the machinery every
`repro.analysis` study shares:

* :class:`~repro.sweep.engine.SweepEngine` -- deterministic, chunked
  mapping of task functions over task lists, in-process by default and
  process-parallel on request, with byte-identical results either way;
* :class:`~repro.sweep.spec.SweepSpec` / presets -- declarative grid
  descriptions (models x strategy spaces x topologies x scaling modes x
  batch sizes x array sizes) runnable as ``hypar sweep <spec.json|preset>``;
* :mod:`~repro.sweep.cache` -- the process-global shared compiled-table
  cache (`repro.core.costs.TableCache`) and runtime-object memoization the
  task functions warm;
* :mod:`~repro.sweep.runner` -- the generic grid runner producing flat
  figure rows;
* :mod:`~repro.sweep.artifacts` -- deterministic JSON/CSV writers.

See the "Sweep orchestration engine" section of DESIGN.md for the design
notes (spec format, cache keys, worker model).
"""

from repro.sweep.artifacts import rows_to_csv, write_csv, write_json
from repro.sweep.cache import clear_caches, runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, chunk_tasks, default_workers, resolve_engine
from repro.sweep.runner import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    StrategyMetrics,
    SweepRecord,
    SweepResult,
    evaluate_point,
    run_sweep,
)
from repro.sweep.spec import PAPER_MODELS, PRESETS, SweepPoint, SweepSpec, load_spec

__all__ = [
    "DATA_PARALLELISM",
    "HYPAR",
    "MODEL_PARALLELISM",
    "PAPER_MODELS",
    "PRESETS",
    "StrategyMetrics",
    "SweepEngine",
    "SweepPoint",
    "SweepRecord",
    "SweepResult",
    "SweepSpec",
    "chunk_tasks",
    "clear_caches",
    "default_workers",
    "evaluate_point",
    "load_spec",
    "resolve_engine",
    "rows_to_csv",
    "run_sweep",
    "runtime_cached",
    "shared_table_cache",
    "write_csv",
    "write_json",
]
