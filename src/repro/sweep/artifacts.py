"""Deterministic JSON/CSV artifact writers for sweep results.

Figure data leaves the sweep engine as flat row dictionaries; these
helpers serialize them reproducibly -- stable key order, full float
precision (``repr`` round trip) -- so artifacts produced by the serial and
process-parallel runners can be compared byte for byte, which is exactly
what the parity tests do.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Mapping, Sequence


def _columns(rows: Sequence[Mapping]) -> list[str]:
    """Union of row keys, in first-appearance order."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        # repr round-trips doubles exactly; str() would too on Python 3,
        # but repr states the intent.
        return repr(value)
    return str(value)


def rows_to_csv(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text (header + one line per row).

    Minimal quoting via the :mod:`csv` module -- strategy-space cells like
    ``"dp,mp"`` contain commas and must not shift columns.
    """
    columns = list(columns) if columns is not None else _columns(rows)
    if not columns:
        raise ValueError("cannot write a CSV without columns")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_format_cell(row.get(column)) for column in columns])
    return buffer.getvalue()


def write_csv(
    path: str, rows: Sequence[Mapping], columns: Sequence[str] | None = None
) -> None:
    """Write rows to ``path`` as CSV (creating parent directories)."""
    _ensure_parent(path)
    with open(path, "w", newline="") as handle:
        handle.write(rows_to_csv(rows, columns))


def payload_to_json(payload) -> str:
    """Render an arbitrary JSON-serializable payload deterministically."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_json(path: str, payload) -> None:
    """Write a payload to ``path`` as pretty-printed, key-sorted JSON."""
    _ensure_parent(path)
    with open(path, "w") as handle:
        handle.write(payload_to_json(payload))


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
