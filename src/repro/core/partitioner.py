"""Algorithm 1: partition between two accelerator (groups).

Given the tensor amounts of every weighted layer, the partitioner chooses
data or model parallelism per layer so that the total communication between
the two groups -- intra-layer (Table 1) plus inter-layer (Table 2) -- is
minimised.  Because the inter-layer cost only couples adjacent layers, the
optimum is found by a layer-wise dynamic program in ``O(L)`` time, exactly
as in the paper's Algorithm 1:

.. code-block:: text

   com_dp[l] = min(com_dp[l-1] + inter_dp_dp, com_mp[l-1] + inter_mp_dp) + intra_dp
   com_mp[l] = min(com_dp[l-1] + inter_dp_mp, com_mp[l-1] + inter_mp_mp) + intra_mp

The answer is ``min(com_dp[L-1], com_mp[L-1])`` with the argmin chain giving
the parallelism list.

Two implementations of the recurrence exist:

* :meth:`TwoWayPartitioner.partition_tensors` compiles the tensors into a
  :class:`~repro.core.costs.CostTable` and runs the array DP over it -- the
  table is the same object the batch scorers reuse, and the winning
  result's breakdown is materialized lazily;
* :meth:`TwoWayPartitioner.partition_tensors_reference` is the original
  object-based scalar DP, kept as the oracle the vectorized path is
  property-tested against (the two agree bit-exactly).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable
from repro.core.parallelism import LayerAssignment, Parallelism
from repro.core.result import PartitionResult
from repro.core.tensors import LayerTensors, TensorScale, model_tensors
from repro.nn.model import DNNModel


class TwoWayPartitioner:
    """Dynamic-programming search for the best per-layer parallelism list.

    Parameters
    ----------
    communication_model:
        The cost model used to evaluate intra-/inter-layer traffic; a default
        fp32 model is created when omitted.
    """

    def __init__(self, communication_model: CommunicationModel | None = None) -> None:
        self.communication_model = communication_model or CommunicationModel()

    # ------------------------------------------------------------------
    # Core dynamic program over pre-computed tensor amounts.
    # ------------------------------------------------------------------

    def compile_table(self, tensors: Sequence[LayerTensors]) -> CostTable:
        """Compile per-layer tensor amounts into a reusable cost table."""
        return CostTable.from_tensors(tensors, self.communication_model)

    def partition_tensors(self, tensors: Sequence[LayerTensors]) -> PartitionResult:
        """Run the dynamic program over per-layer tensor amounts.

        Compiles a :class:`~repro.core.costs.CostTable` and runs the array
        DP over it; bit-exact with :meth:`partition_tensors_reference`.
        """
        if not tensors:
            raise ValueError("cannot partition a model with no weighted layers")
        return self.compile_table(tensors).dp_partition()

    def partition_tensors_reference(
        self, tensors: Sequence[LayerTensors]
    ) -> PartitionResult:
        """Object-based scalar DP: the oracle for the vectorized path.

        Kept verbatim from the original implementation so the property
        tests can assert the :class:`~repro.core.costs.CostTable` DP returns
        the same optimum bytes and the same argmin assignment, including
        the tie rule (ties favour data parallelism at every step).
        """
        if not tensors:
            raise ValueError("cannot partition a model with no weighted layers")
        model = self.communication_model
        num_layers = len(tensors)

        # com[p] holds the minimal accumulated communication with layer l
        # assigned parallelism p; parent[l][p] records the argmin choice of
        # layer l-1 used to reach that state.
        com_dp = model.intra_layer_bytes(tensors[0], Parallelism.DATA)
        com_mp = model.intra_layer_bytes(tensors[0], Parallelism.MODEL)
        parents: list[dict[Parallelism, Parallelism]] = []

        for layer in range(1, num_layers):
            boundary = tensors[layer - 1]
            intra_dp = model.intra_layer_bytes(tensors[layer], Parallelism.DATA)
            intra_mp = model.intra_layer_bytes(tensors[layer], Parallelism.MODEL)

            from_dp_to_dp = com_dp + model.inter_layer_bytes(
                Parallelism.DATA, Parallelism.DATA, boundary
            )
            from_mp_to_dp = com_mp + model.inter_layer_bytes(
                Parallelism.MODEL, Parallelism.DATA, boundary
            )
            from_dp_to_mp = com_dp + model.inter_layer_bytes(
                Parallelism.DATA, Parallelism.MODEL, boundary
            )
            from_mp_to_mp = com_mp + model.inter_layer_bytes(
                Parallelism.MODEL, Parallelism.MODEL, boundary
            )

            parent: dict[Parallelism, Parallelism] = {}
            if from_dp_to_dp <= from_mp_to_dp:
                next_dp = from_dp_to_dp + intra_dp
                parent[Parallelism.DATA] = Parallelism.DATA
            else:
                next_dp = from_mp_to_dp + intra_dp
                parent[Parallelism.DATA] = Parallelism.MODEL
            if from_dp_to_mp <= from_mp_to_mp:
                next_mp = from_dp_to_mp + intra_mp
                parent[Parallelism.MODEL] = Parallelism.DATA
            else:
                next_mp = from_mp_to_mp + intra_mp
                parent[Parallelism.MODEL] = Parallelism.MODEL

            parents.append(parent)
            com_dp, com_mp = next_dp, next_mp

        # Back-track the argmin chain.  Ties favour data parallelism, the
        # paper's (and practice's) default.
        last = Parallelism.DATA if com_dp <= com_mp else Parallelism.MODEL
        total = min(com_dp, com_mp)
        choices = [last]
        for parent in reversed(parents):
            choices.append(parent[choices[-1]])
        choices.reverse()

        assignment = LayerAssignment(tuple(choices))
        breakdown = tuple(model.layer_breakdown(tensors, assignment))
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # Convenience wrappers.
    # ------------------------------------------------------------------

    def partition(
        self,
        model: DNNModel,
        batch_size: int,
        scales: Sequence[TensorScale] | None = None,
    ) -> PartitionResult:
        """Partition ``model`` between two groups at the given batch size."""
        tensors = model_tensors(model, batch_size, scales)
        return self.partition_tensors(tensors)

    def evaluate(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
    ) -> PartitionResult:
        """Cost of an arbitrary (not necessarily optimal) assignment.

        Uses the :meth:`CommunicationModel.total_bytes` fast path, so no
        per-layer breakdown objects are allocated unless the caller reads
        ``result.breakdown``.
        """
        model = self.communication_model
        total = model.total_bytes(tensors, assignment)
        tensors = tuple(tensors)
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total,
            breakdown_factory=lambda: tuple(model.layer_breakdown(tensors, assignment)),
        )
