"""Algorithm 1: partition between two accelerator (groups).

Given the tensor amounts of every weighted layer, the partitioner chooses
a per-layer strategy (data/model parallelism by default, plus any other
registered strategy in the requested space) so that the total
communication between the two groups -- intra-layer (Table 1) plus
inter-layer (Table 2) -- is minimised.  Because the inter-layer cost only
couples adjacent layers, the optimum is found by a layer-wise dynamic
program in ``O(L * K^2)`` time, exactly as in the paper's Algorithm 1 (for
``K = 2``):

.. code-block:: text

   com[s][l] = min over s' of (com[s'][l-1] + inter[s' -> s]) + intra[s]

The answer is ``min over s of com[s][L-1]`` with the argmin chain giving
the per-layer strategy list.

Two implementations of the recurrence exist:

* :meth:`TwoWayPartitioner.partition_tensors` compiles the tensors into a
  :class:`~repro.core.costs.CostTable` and runs the array DP over it -- the
  table is the same object the batch scorers reuse, and the winning
  result's breakdown is materialized lazily;
* :meth:`TwoWayPartitioner.partition_tensors_reference` is the original
  object-based scalar DP, generalized from the hard-coded dp/mp pair to a
  scan over the strategy space, kept as the oracle the vectorized path is
  property-tested against (the two agree bit-exactly; for the default
  dp/mp space the scan performs the exact additions and ``<=``
  comparisons of the historical two-strategy implementation).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import kernels
from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable
from repro.core.parallelism import (
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.result import PartitionResult
from repro.core.tensors import LayerTensors, TensorScale, model_tensors
from repro.nn.model import DNNModel


class TwoWayPartitioner:
    """Dynamic-programming search for the best per-layer parallelism list.

    Parameters
    ----------
    communication_model:
        The cost model used to evaluate intra-/inter-layer traffic; a default
        fp32 model is created when omitted.
    strategies:
        The per-layer strategy space searched over (the paper's dp/mp axis
        by default; pass e.g. ``"dp,mp,pp"`` to include pipeline
        parallelism).
    backend:
        Kernel backend for the compiled cost tables (``"numpy"`` /
        ``"compiled"``; ``None`` follows the process default, see
        :mod:`repro.core.kernels`).  Results are backend-independent.
    """

    def __init__(
        self,
        communication_model: CommunicationModel | None = None,
        strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
        backend: str | None = None,
    ) -> None:
        self.communication_model = communication_model or CommunicationModel()
        self.strategies = StrategySpace.parse(strategies)
        self.backend = kernels.validate_backend(backend)

    # ------------------------------------------------------------------
    # Core dynamic program over pre-computed tensor amounts.
    # ------------------------------------------------------------------

    def compile_table(
        self,
        tensors: Sequence[LayerTensors],
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> CostTable:
        """Compile per-layer tensor amounts into a reusable cost table.

        ``edges`` is the layer DAG's canonical edge list (``None`` = the
        historical chain).
        """
        return CostTable.from_tensors(
            tensors,
            self.communication_model,
            self.strategies,
            edges=edges,
            backend=self.backend,
        )

    def partition_tensors(
        self,
        tensors: Sequence[LayerTensors],
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> PartitionResult:
        """Run the dynamic program over per-layer tensor amounts.

        Compiles a :class:`~repro.core.costs.CostTable` and runs the array
        DP over it; on chains bit-exact with
        :meth:`partition_tensors_reference`, on DAGs (``edges`` given) the
        cut-vertex program of :meth:`CostTable.dp_partition`.
        """
        if not tensors:
            raise ValueError("cannot partition a model with no weighted layers")
        return self.compile_table(tensors, edges=edges).dp_partition()

    def partition_tensors_reference(
        self, tensors: Sequence[LayerTensors]
    ) -> PartitionResult:
        """Object-based scalar DP: the oracle for the vectorized path.

        Chain-only by construction (Algorithm 1's recurrence couples
        adjacent layers): DAG models are scored against the generalized
        :meth:`CommunicationModel.total_bytes` oracle and certified by
        brute-force enumeration instead.

        Performs the same additions in the same order as the historical
        hard-coded dp/mp implementation (a per-target scan over source
        strategies, earliest strategy winning ties), generalized to any
        strategy space, so the property tests can assert the
        :class:`~repro.core.costs.CostTable` DP returns the same optimum
        bytes and the same argmin assignment, including the tie rule (ties
        favour the space's first strategy -- data parallelism -- at every
        step).
        """
        if not tensors:
            raise ValueError("cannot partition a model with no weighted layers")
        model = self.communication_model
        space = self.strategies
        num_layers = len(tensors)

        # com[s] holds the minimal accumulated communication with layer l
        # assigned strategy s; parent[l][s] records the argmin choice of
        # layer l-1 used to reach that state.
        com = {
            choice: model.intra_layer_bytes(tensors[0], choice) for choice in space
        }
        parents: list[dict[Parallelism, Parallelism]] = []

        for layer in range(1, num_layers):
            boundary = tensors[layer - 1]
            next_com: dict[Parallelism, float] = {}
            parent: dict[Parallelism, Parallelism] = {}
            for current in space:
                intra = model.intra_layer_bytes(tensors[layer], current)
                best_source: Parallelism | None = None
                best_cost = 0.0
                for previous in space:
                    cost = com[previous] + model.inter_layer_bytes(
                        previous, current, boundary
                    )
                    # Strict ``<`` keeps the earliest strategy on ties --
                    # the historical ``from_dp <= from_mp`` dp-tie rule.
                    if best_source is None or cost < best_cost:
                        best_source = previous
                        best_cost = cost
                parent[current] = best_source
                next_com[current] = best_cost + intra
            parents.append(parent)
            com = next_com

        # Back-track the argmin chain.  Ties favour the first strategy of
        # the space (data parallelism, the paper's and practice's default).
        last = min(space, key=lambda choice: (com[choice], space.code_of(choice)))
        total = com[last]
        choices = [last]
        for parent in reversed(parents):
            choices.append(parent[choices[-1]])
        choices.reverse()

        assignment = LayerAssignment(tuple(choices))
        breakdown = tuple(model.layer_breakdown(tensors, assignment))
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # Convenience wrappers.
    # ------------------------------------------------------------------

    def partition(
        self,
        model: DNNModel,
        batch_size: int,
        scales: Sequence[TensorScale] | None = None,
    ) -> PartitionResult:
        """Partition ``model`` between two groups at the given batch size."""
        tensors = model_tensors(model, batch_size, scales)
        return self.partition_tensors(tensors, edges=model.edges)

    def evaluate(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> PartitionResult:
        """Cost of an arbitrary (not necessarily optimal) assignment.

        Uses the :meth:`CommunicationModel.total_bytes` fast path, so no
        per-layer breakdown objects are allocated unless the caller reads
        ``result.breakdown``.  ``edges`` carries the layer DAG (``None`` =
        chain).
        """
        model = self.communication_model
        total = model.total_bytes(tensors, assignment, edges)
        tensors = tuple(tensors)
        edges = None if edges is None else tuple(edges)
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total,
            breakdown_factory=lambda: tuple(
                model.layer_breakdown(tensors, assignment, edges)
            ),
        )
