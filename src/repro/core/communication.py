"""The HyPar communication model (Section 3, Tables 1 and 2).

For a layer configured with a given parallelism the model distinguishes two
sources of communication between the two accelerator groups of one
hierarchy level:

* **Intra-layer communication** (Table 1) -- the partial-sum exchange
  marked with a circled plus in Figure 1:

  ============  =============================
  parallelism    amount
  ============  =============================
  dp             ``A(dW_l)`` (gradient reduction during the weight update)
  mp             ``A(F_{l+1})`` (output-feature partial-sum reduction in forward)
  ============  =============================

* **Inter-layer communication** (Table 2) -- the tensor re-layout needed
  between a layer's *R* tensors (its outputs ``F_{l+1}``/``E_{l+1}``) and
  the next layer's *L* tensors:

  ============  ==========================================
  transition     amount
  ============  ==========================================
  dp → dp        0
  dp → mp        ``0.25 A(F_{l+1}) + 0.25 A(E_{l+1})``
  mp → mp        ``0.5 A(E_{l+1})``
  mp → dp        ``0.5 A(E_{l+1})``
  ============  ==========================================

Amounts are element counts.  When converting to bytes the model multiplies
by the precision (4 bytes) and by a *pair factor* of two because both
groups perform the remote access (the paper's worked example in Section
3.4 counts ``56 KB = 2 x 70 x 100 x 4 B`` for the dp gradient exchange of a
70x100 fully-connected layer).

The tables above are the dp/mp instance of a general contract: every
registered strategy (:mod:`repro.core.strategies`) contributes its own
Table-1 column and incoming Table-2 transition block, and this model
dispatches through the registry.  The dp/mp entries are byte-identical to
the historical hard-coded implementation; pipeline parallelism adds the
stage-boundary activation/gradient transfers documented in the registry
module.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.parallelism import LayerAssignment, Parallelism
from repro.core.strategies import strategy_spec
from repro.core.tensors import BYTES_PER_ELEMENT, LayerTensors

#: Both groups of a pair remotely read the other group's partial sums, so
#: the traffic crossing the link is twice the tensor amount involved.
PAIR_FACTOR = 2


class CommunicationModel:
    """Evaluates intra-layer and inter-layer communication amounts.

    Parameters
    ----------
    bytes_per_element:
        Storage size of one tensor element (4 for the paper's fp32).
    pair_factor:
        Multiplier accounting for both directions of the exchange between
        the two groups of a hierarchy level (2 in the paper's examples).
    """

    def __init__(
        self,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        pair_factor: int = PAIR_FACTOR,
    ) -> None:
        if bytes_per_element <= 0:
            raise ValueError(f"bytes_per_element must be positive, got {bytes_per_element}")
        if pair_factor <= 0:
            raise ValueError(f"pair_factor must be positive, got {pair_factor}")
        self.bytes_per_element = bytes_per_element
        self.pair_factor = pair_factor

    def same_costs(self, other: "CommunicationModel") -> bool:
        """Whether ``other`` produces identical costs (same parameters).

        Cost tables compiled against one model instance are freely reusable
        with any parameter-identical instance.
        """
        return (
            self.bytes_per_element == other.bytes_per_element
            and self.pair_factor == other.pair_factor
        )

    @property
    def cache_key(self) -> tuple[int, int]:
        """Hashable identity of this model's cost parameters.

        Two instances with equal keys satisfy :meth:`same_costs`, so cache
        entries keyed by it are freely shared across instances (and across
        sweep worker processes).
        """
        return (self.bytes_per_element, self.pair_factor)

    # ------------------------------------------------------------------
    # Element-count primitives (Table 1 and Table 2).
    # ------------------------------------------------------------------

    @staticmethod
    def intra_layer_elements(tensors: LayerTensors, parallelism: Parallelism) -> float:
        """Table 1 (generalized): intra-layer communication amount, in elements.

        Dispatches to the strategy registry: dp contributes the gradient
        reduction, mp the output partial-sum reduction, stage-local
        strategies contribute nothing.
        """
        return strategy_spec(parallelism).intra_elements(tensors)

    @staticmethod
    def inter_layer_forward_elements(
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Feature-map share of the inter-layer amount (exchanged during forward).

        The incoming transition block belongs to ``current``'s registered
        strategy; for the binary dp/mp space only the dp→mp transition
        re-lays-out the boundary feature map ``F_{l+1}`` (Figure 2 (b)).
        """
        return strategy_spec(current).inter_forward_elements(previous, boundary)

    @staticmethod
    def inter_layer_backward_elements(
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Error share of the inter-layer amount (exchanged during error backward)."""
        return strategy_spec(current).inter_backward_elements(previous, boundary)

    @classmethod
    def inter_layer_elements(
        cls,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Table 2: inter-layer communication amount, in elements.

        ``boundary`` is the tensor record of the *previous* layer: the
        boundary feature map is that layer's ``F_{l+1}`` and the boundary
        error is its ``E_{l+1}``.
        """
        return cls.inter_layer_forward_elements(
            previous, current, boundary
        ) + cls.inter_layer_backward_elements(previous, current, boundary)

    # ------------------------------------------------------------------
    # Byte-level helpers.
    # ------------------------------------------------------------------

    def _to_bytes(self, elements: float) -> float:
        return elements * self.bytes_per_element * self.pair_factor

    def intra_layer_bytes(self, tensors: LayerTensors, parallelism: Parallelism) -> float:
        """Intra-layer traffic crossing the link between the two groups, in bytes."""
        return self._to_bytes(self.intra_layer_elements(tensors, parallelism))

    def inter_layer_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Inter-layer traffic crossing the link between the two groups, in bytes."""
        return self._to_bytes(self.inter_layer_elements(previous, current, boundary))

    def inter_layer_forward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Forward-pass (feature-map) share of the inter-layer traffic, in bytes."""
        return self._to_bytes(
            self.inter_layer_forward_elements(previous, current, boundary)
        )

    def inter_layer_backward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Backward-pass (error) share of the inter-layer traffic, in bytes."""
        return self._to_bytes(
            self.inter_layer_backward_elements(previous, current, boundary)
        )

    # ------------------------------------------------------------------
    # Whole-assignment evaluation.
    # ------------------------------------------------------------------

    @staticmethod
    def _incoming_edges(
        num_layers: int, edges: Sequence[tuple[int, int]] | None
    ) -> list[list[int]]:
        """Per-layer source lists, in canonical edge order (``None`` = chain)."""
        if edges is None:
            return [[] if index == 0 else [index - 1] for index in range(num_layers)]
        incoming: list[list[int]] = [[] for _ in range(num_layers)]
        for source, destination in edges:
            incoming[destination].append(source)
        return incoming

    def layer_breakdown(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> list["LayerCommunication"]:
        """Per-layer communication for one assignment at one hierarchy level.

        The inter-layer contribution of layer ``l`` covers the transitions
        across its *incoming* edges (``edges`` is the model's DAG edge
        list; ``None`` means the historical chain, where layer ``l``'s only
        incoming edge is ``(l-1, l)``).  A layer without incoming edges
        reads the training data, which every group already holds under any
        parallelism, so its inter-layer term is zero.  For a merge layer
        the term is the sum of its per-edge re-layouts, accumulated in
        input order.
        """
        if len(tensors) != assignment.num_layers:
            raise ValueError(
                f"expected {assignment.num_layers} tensor records, got {len(tensors)}"
            )
        incoming = self._incoming_edges(assignment.num_layers, edges)
        breakdown: list[LayerCommunication] = []
        for index, (layer, choice) in enumerate(zip(tensors, assignment)):
            intra = self.intra_layer_bytes(layer, choice)
            inter = 0.0
            for source in incoming[index]:
                inter += self.inter_layer_bytes(
                    assignment[source], choice, tensors[source]
                )
            breakdown.append(
                LayerCommunication(
                    layer_index=layer.layer_index,
                    layer_name=layer.layer_name,
                    parallelism=choice,
                    intra_bytes=intra,
                    inter_bytes=inter,
                )
            )
        return breakdown

    def total_bytes(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> float:
        """Total traffic (bytes) between the two groups for one training step.

        Fast path used by the search and sweep loops: sums the same
        per-layer ``intra + inter`` terms as :meth:`layer_breakdown` in the
        same order (so the result is bit-identical) without allocating any
        :class:`LayerCommunication` objects.  Callers that need the
        per-layer attribution should use :meth:`layer_breakdown`.  This is
        the object-based oracle the edge-indexed cost tables are
        property-tested against, on chains and DAGs alike.
        """
        if len(tensors) != assignment.num_layers:
            raise ValueError(
                f"expected {assignment.num_layers} tensor records, got {len(tensors)}"
            )
        if edges is None:
            # Chain fast path: the single rolling boundary needs no incoming
            # lists.  ``intra + inter`` matches the general path bit for bit
            # (its per-layer accumulator starts at 0.0, and x + 0.0 == x).
            total = 0.0
            previous: Parallelism | None = None
            for index, (layer, choice) in enumerate(zip(tensors, assignment)):
                intra = self.intra_layer_bytes(layer, choice)
                if index == 0:
                    inter = 0.0
                else:
                    inter = self.inter_layer_bytes(previous, choice, tensors[index - 1])
                total += intra + inter
                previous = choice
            return total
        incoming = self._incoming_edges(assignment.num_layers, edges)
        total = 0.0
        for index, (layer, choice) in enumerate(zip(tensors, assignment)):
            intra = self.intra_layer_bytes(layer, choice)
            inter = 0.0
            for source in incoming[index]:
                inter += self.inter_layer_bytes(
                    assignment[source], choice, tensors[source]
                )
            total += intra + inter
        return total


@dataclasses.dataclass(frozen=True)
class LayerCommunication:
    """Communication attributed to one weighted layer at one hierarchy level."""

    layer_index: int
    layer_name: str
    parallelism: Parallelism
    intra_bytes: float
    inter_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.intra_bytes + self.inter_bytes
