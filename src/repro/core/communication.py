"""The HyPar communication model (Section 3, Tables 1 and 2).

For a layer configured with a given parallelism the model distinguishes two
sources of communication between the two accelerator groups of one
hierarchy level:

* **Intra-layer communication** (Table 1) -- the partial-sum exchange
  marked with a circled plus in Figure 1:

  ============  =============================
  parallelism    amount
  ============  =============================
  dp             ``A(dW_l)`` (gradient reduction during the weight update)
  mp             ``A(F_{l+1})`` (output-feature partial-sum reduction in forward)
  ============  =============================

* **Inter-layer communication** (Table 2) -- the tensor re-layout needed
  between a layer's *R* tensors (its outputs ``F_{l+1}``/``E_{l+1}``) and
  the next layer's *L* tensors:

  ============  ==========================================
  transition     amount
  ============  ==========================================
  dp → dp        0
  dp → mp        ``0.25 A(F_{l+1}) + 0.25 A(E_{l+1})``
  mp → mp        ``0.5 A(E_{l+1})``
  mp → dp        ``0.5 A(E_{l+1})``
  ============  ==========================================

Amounts are element counts.  When converting to bytes the model multiplies
by the precision (4 bytes) and by a *pair factor* of two because both
groups perform the remote access (the paper's worked example in Section
3.4 counts ``56 KB = 2 x 70 x 100 x 4 B`` for the dp gradient exchange of a
70x100 fully-connected layer).

The tables above are the dp/mp instance of a general contract: every
registered strategy (:mod:`repro.core.strategies`) contributes its own
Table-1 column and incoming Table-2 transition block, and this model
dispatches through the registry.  The dp/mp entries are byte-identical to
the historical hard-coded implementation; pipeline parallelism adds the
stage-boundary activation/gradient transfers documented in the registry
module.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.parallelism import LayerAssignment, Parallelism
from repro.core.strategies import strategy_spec
from repro.core.tensors import BYTES_PER_ELEMENT, LayerTensors

#: Both groups of a pair remotely read the other group's partial sums, so
#: the traffic crossing the link is twice the tensor amount involved.
PAIR_FACTOR = 2


class CommunicationModel:
    """Evaluates intra-layer and inter-layer communication amounts.

    Parameters
    ----------
    bytes_per_element:
        Storage size of one tensor element (4 for the paper's fp32).
    pair_factor:
        Multiplier accounting for both directions of the exchange between
        the two groups of a hierarchy level (2 in the paper's examples).
    """

    #: True for models whose byte conversion carries more state than the
    #: two link constants (profiled calibration); the vectorized table
    #: compiler dispatches per-entry through the byte-level methods for
    #: those instead of inlining ``elements * bytes * pair``.
    is_calibrated = False

    def __init__(
        self,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        pair_factor: int = PAIR_FACTOR,
    ) -> None:
        if bytes_per_element <= 0:
            raise ValueError(f"bytes_per_element must be positive, got {bytes_per_element}")
        if pair_factor <= 0:
            raise ValueError(f"pair_factor must be positive, got {pair_factor}")
        self.bytes_per_element = bytes_per_element
        self.pair_factor = pair_factor

    def same_costs(self, other: "CommunicationModel") -> bool:
        """Whether ``other`` produces identical costs.

        Cost tables compiled against one model instance are freely reusable
        with any cost-identical instance.  Compares the full
        :attr:`cache_key` -- not just the link constants -- so a calibrated
        model can never silently share a compiled table with the analytic
        one (or with a differently calibrated sibling).
        """
        return self.cache_key == other.cache_key

    @property
    def cache_key(self) -> tuple:
        """Hashable identity of this model's *complete* cost-affecting state.

        Two instances with equal keys satisfy :meth:`same_costs`, so cache
        entries keyed by it are freely shared across instances (and across
        sweep worker processes).  The key is tagged with the provider kind
        (``"analytic"`` here; subclasses tag their own) so two providers
        that happen to share parameter values still key apart.
        """
        return ("analytic", self.bytes_per_element, self.pair_factor)

    # ------------------------------------------------------------------
    # Element-count primitives (Table 1 and Table 2).
    # ------------------------------------------------------------------

    @staticmethod
    def intra_layer_elements(tensors: LayerTensors, parallelism: Parallelism) -> float:
        """Table 1 (generalized): intra-layer communication amount, in elements.

        Dispatches to the strategy registry: dp contributes the gradient
        reduction, mp the output partial-sum reduction, stage-local
        strategies contribute nothing.
        """
        return strategy_spec(parallelism).intra_elements(tensors)

    @staticmethod
    def inter_layer_forward_elements(
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Feature-map share of the inter-layer amount (exchanged during forward).

        The incoming transition block belongs to ``current``'s registered
        strategy; for the binary dp/mp space only the dp→mp transition
        re-lays-out the boundary feature map ``F_{l+1}`` (Figure 2 (b)).
        """
        return strategy_spec(current).inter_forward_elements(previous, boundary)

    @staticmethod
    def inter_layer_backward_elements(
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Error share of the inter-layer amount (exchanged during error backward)."""
        return strategy_spec(current).inter_backward_elements(previous, boundary)

    @classmethod
    def inter_layer_elements(
        cls,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Table 2: inter-layer communication amount, in elements.

        ``boundary`` is the tensor record of the *previous* layer: the
        boundary feature map is that layer's ``F_{l+1}`` and the boundary
        error is its ``E_{l+1}``.
        """
        return cls.inter_layer_forward_elements(
            previous, current, boundary
        ) + cls.inter_layer_backward_elements(previous, current, boundary)

    # ------------------------------------------------------------------
    # Byte-level helpers.
    # ------------------------------------------------------------------

    def _to_bytes(self, elements: float) -> float:
        return elements * self.bytes_per_element * self.pair_factor

    def intra_layer_bytes(self, tensors: LayerTensors, parallelism: Parallelism) -> float:
        """Intra-layer traffic crossing the link between the two groups, in bytes."""
        return self._to_bytes(self.intra_layer_elements(tensors, parallelism))

    def inter_layer_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Inter-layer traffic crossing the link between the two groups, in bytes."""
        return self._to_bytes(self.inter_layer_elements(previous, current, boundary))

    def inter_layer_forward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Forward-pass (feature-map) share of the inter-layer traffic, in bytes."""
        return self._to_bytes(
            self.inter_layer_forward_elements(previous, current, boundary)
        )

    def inter_layer_backward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        """Backward-pass (error) share of the inter-layer traffic, in bytes."""
        return self._to_bytes(
            self.inter_layer_backward_elements(previous, current, boundary)
        )

    # ------------------------------------------------------------------
    # Whole-assignment evaluation.
    # ------------------------------------------------------------------

    @staticmethod
    def _incoming_edges(
        num_layers: int, edges: Sequence[tuple[int, int]] | None
    ) -> list[list[int]]:
        """Per-layer source lists, in canonical edge order (``None`` = chain)."""
        if edges is None:
            return [[] if index == 0 else [index - 1] for index in range(num_layers)]
        incoming: list[list[int]] = [[] for _ in range(num_layers)]
        for source, destination in edges:
            incoming[destination].append(source)
        return incoming

    def layer_breakdown(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> list["LayerCommunication"]:
        """Per-layer communication for one assignment at one hierarchy level.

        The inter-layer contribution of layer ``l`` covers the transitions
        across its *incoming* edges (``edges`` is the model's DAG edge
        list; ``None`` means the historical chain, where layer ``l``'s only
        incoming edge is ``(l-1, l)``).  A layer without incoming edges
        reads the training data, which every group already holds under any
        parallelism, so its inter-layer term is zero.  For a merge layer
        the term is the sum of its per-edge re-layouts, accumulated in
        input order.
        """
        if len(tensors) != assignment.num_layers:
            raise ValueError(
                f"expected {assignment.num_layers} tensor records, got {len(tensors)}"
            )
        incoming = self._incoming_edges(assignment.num_layers, edges)
        breakdown: list[LayerCommunication] = []
        for index, (layer, choice) in enumerate(zip(tensors, assignment)):
            intra = self.intra_layer_bytes(layer, choice)
            inter = 0.0
            for source in incoming[index]:
                inter += self.inter_layer_bytes(
                    assignment[source], choice, tensors[source]
                )
            breakdown.append(
                LayerCommunication(
                    layer_index=layer.layer_index,
                    layer_name=layer.layer_name,
                    parallelism=choice,
                    intra_bytes=intra,
                    inter_bytes=inter,
                )
            )
        return breakdown

    def total_bytes(
        self,
        tensors: Sequence[LayerTensors],
        assignment: LayerAssignment,
        edges: Sequence[tuple[int, int]] | None = None,
    ) -> float:
        """Total traffic (bytes) between the two groups for one training step.

        Fast path used by the search and sweep loops: sums the same
        per-layer ``intra + inter`` terms as :meth:`layer_breakdown` in the
        same order (so the result is bit-identical) without allocating any
        :class:`LayerCommunication` objects.  Callers that need the
        per-layer attribution should use :meth:`layer_breakdown`.  This is
        the object-based oracle the edge-indexed cost tables are
        property-tested against, on chains and DAGs alike.
        """
        if len(tensors) != assignment.num_layers:
            raise ValueError(
                f"expected {assignment.num_layers} tensor records, got {len(tensors)}"
            )
        if edges is None:
            # Chain fast path: the single rolling boundary needs no incoming
            # lists.  ``intra + inter`` matches the general path bit for bit
            # (its per-layer accumulator starts at 0.0, and x + 0.0 == x).
            total = 0.0
            previous: Parallelism | None = None
            for index, (layer, choice) in enumerate(zip(tensors, assignment)):
                intra = self.intra_layer_bytes(layer, choice)
                if index == 0:
                    inter = 0.0
                else:
                    inter = self.inter_layer_bytes(previous, choice, tensors[index - 1])
                total += intra + inter
                previous = choice
            return total
        incoming = self._incoming_edges(assignment.num_layers, edges)
        total = 0.0
        for index, (layer, choice) in enumerate(zip(tensors, assignment)):
            intra = self.intra_layer_bytes(layer, choice)
            inter = 0.0
            for source in incoming[index]:
                inter += self.inter_layer_bytes(
                    assignment[source], choice, tensors[source]
                )
            total += intra + inter
        return total


class CalibratedCommunicationModel(CommunicationModel):
    """A :class:`CommunicationModel` with profile-fitted corrections.

    Produced by :class:`repro.core.costmodel.ProfiledCostModel` from
    measured samples; the analytic Table-1/2 element counts stay the
    source of truth, but the element-to-byte conversion carries the
    fitted deviations of real hardware from the idealized link model:

    * ``intra_scale`` -- intra-layer (collective) traffic cost relative to
      the reference link the analytic model assumes;
    * ``inter_scale`` -- inter-layer (re-layout) traffic cost relative to
      the same reference, so slow interconnects weight Table 2 against
      Table 1;
    * ``inter_latency_bytes`` -- per-transfer startup cost in equivalent
      bytes, added once per *non-zero* directional Table-2 transfer (the
      table's structural zeros -- dp→dp -- stay exactly zero);
    * ``layer_scales`` -- per-layer multipliers on the intra-layer term
      (heterogeneous accelerators), matched by ``LayerTensors.layer_name``
      with absent layers defaulting to 1.0;
    * ``bytes_per_element`` -- the measured precision (2 for fp16).

    Every byte-level method overridden here is exactly what both the
    object-based oracle *and* the vectorized table compiler
    (``costs._fill_cost_block``) evaluate, so tables and breakdowns agree
    bit for bit under calibration just as they do analytically.
    """

    is_calibrated = True

    def __init__(
        self,
        profile_name: str,
        *,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        pair_factor: int = PAIR_FACTOR,
        intra_scale: float = 1.0,
        inter_scale: float = 1.0,
        inter_latency_bytes: float = 0.0,
        layer_scales: "Mapping[str, float] | None" = None,
    ) -> None:
        super().__init__(bytes_per_element, pair_factor)
        if not profile_name:
            raise ValueError("a calibrated model needs a non-empty profile name")
        if intra_scale <= 0 or inter_scale <= 0:
            raise ValueError(
                f"calibration scales must be positive, got intra={intra_scale} "
                f"inter={inter_scale}"
            )
        if inter_latency_bytes < 0:
            raise ValueError(
                f"inter_latency_bytes must be >= 0, got {inter_latency_bytes}"
            )
        self.profile_name = str(profile_name)
        self.intra_scale = float(intra_scale)
        self.inter_scale = float(inter_scale)
        self.inter_latency_bytes = float(inter_latency_bytes)
        self.layer_scales = {
            str(name): float(scale) for name, scale in (layer_scales or {}).items()
        }
        for name, scale in self.layer_scales.items():
            if scale <= 0:
                raise ValueError(
                    f"layer scale for {name!r} must be positive, got {scale}"
                )

    @property
    def cache_key(self) -> tuple:
        return (
            "profiled",
            self.profile_name,
            self.bytes_per_element,
            self.pair_factor,
            self.intra_scale,
            self.inter_scale,
            self.inter_latency_bytes,
            tuple(sorted(self.layer_scales.items())),
        )

    def _layer_scale(self, layer_name: str) -> float:
        return self.layer_scales.get(layer_name, 1.0)

    def intra_layer_bytes(self, tensors: LayerTensors, parallelism: Parallelism) -> float:
        return (
            self._to_bytes(self.intra_layer_elements(tensors, parallelism))
            * self.intra_scale
            * self._layer_scale(tensors.layer_name)
        )

    def _calibrated_transfer_bytes(self, elements: float) -> float:
        """One directional Table-2 transfer: scaled bytes plus startup cost.

        Structural zeros stay zero: a transition that moves nothing (dp→dp)
        pays no latency either, preserving the table's sparsity pattern.
        """
        if elements <= 0.0:
            return 0.0
        return self._to_bytes(elements) * self.inter_scale + self.inter_latency_bytes

    def inter_layer_forward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        return self._calibrated_transfer_bytes(
            self.inter_layer_forward_elements(previous, current, boundary)
        )

    def inter_layer_backward_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        return self._calibrated_transfer_bytes(
            self.inter_layer_backward_elements(previous, current, boundary)
        )

    def inter_layer_bytes(
        self,
        previous: Parallelism,
        current: Parallelism,
        boundary: LayerTensors,
    ) -> float:
        # The combined amount is the sum of the *calibrated* directional
        # transfers (each pays its own latency), not the calibration of the
        # summed element count -- keeping it equal to what the simulator's
        # forward/backward split tables add up to.
        return self.inter_layer_forward_bytes(
            previous, current, boundary
        ) + self.inter_layer_backward_bytes(previous, current, boundary)


@dataclasses.dataclass(frozen=True)
class LayerCommunication:
    """Communication attributed to one weighted layer at one hierarchy level."""

    layer_index: int
    layer_name: str
    parallelism: Parallelism
    intra_bytes: float
    inter_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.intra_bytes + self.inter_bytes
