"""Optional compiled (numba) kernels behind the search hot paths.

The vectorized NumPy engine in :mod:`repro.core.costs` is fast enough for
the paper's ten networks, but the deep and branching zoo members spend
their time in a handful of inner loops: the layer-wise recurrence of
Algorithm 1 (:meth:`CostTable.dp_partition`), the batched candidate
scorers (:meth:`CostTable._score_decoded`,
:meth:`HierarchicalCostTable.score_level_codes`) and the branch-interior
enumeration of the DAG cut-vertex program
(:meth:`CostTable._dp_partition_dag`).  This module provides
``@njit``-compiled versions of exactly those loops plus the tiny backend
registry that selects between them.

Design rules
------------
* **Graceful fallback.**  numba is an *optional* dependency: when it is
  absent, :data:`NUMBA_AVAILABLE` is ``False`` and every caller silently
  runs the NumPy path.  Requesting ``backend="compiled"`` without numba is
  not an error -- results are identical either way, only the speed
  differs -- so configuration files and service requests stay portable
  across environments.  The first table compiled against an unavailable
  compiled backend emits one :class:`RuntimeWarning` per process
  (:func:`warn_numba_fallback`) so the fallback is visible without
  flooding sweep logs.
* **Bit-exactness.**  Each kernel performs the *same floating-point
  additions in the same order* as its NumPy counterpart, with the same
  strict-``<`` lowest-index argmin tie rule, so compiled results are
  byte-identical to the NumPy path (property-pinned by
  ``tests/properties/test_property_fastpaths.py`` and
  ``tests/properties/test_property_compiled_dag.py``).  The DAG walkers
  consume edge arrays grouped by destination (stably, preserving the
  canonical per-destination order), which keeps every merge layer's
  ``intra + (e1 + e2 + ...)`` association identical to the NumPy
  accumulation.
* **Scalar loops only.**  The kernels take preallocated output arrays and
  touch nothing but their arguments; all orchestration (chunking,
  memoization, pruning, result materialization) stays in
  :mod:`repro.core.costs`.
* **Parallel leg.**  ``backend="compiled-parallel"`` swaps the batched
  *scoring* kernels for ``prange`` variants (one candidate per iteration,
  no cross-candidate reductions, so results are byte-identical at any
  thread count); the inherently sequential chain-DP recurrence keeps the
  serial kernel.  Pin ``NUMBA_NUM_THREADS`` for reproducible thread
  counts in CI.

The module-level *default* backend is what tables compiled without an
explicit ``backend=`` argument use.  ``hypar --backend compiled`` flips
the default for the process; the sweep engine re-applies it in every
worker through its pool initializer (:mod:`repro.sweep.engine`), so the
backend survives ``spawn``-started workers, not just ``fork``-inherited
ones.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

try:  # pragma: no cover - exercised only in the numba CI leg
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # numba is optional; the NumPy paths are the fallback
    njit = None
    prange = range
    NUMBA_AVAILABLE = False

#: The recognized ``CostTable`` backends.
VALID_BACKENDS = ("numpy", "compiled", "compiled-parallel")

#: The backends that dispatch to numba kernels (when numba is present).
COMPILED_BACKENDS = ("compiled", "compiled-parallel")

#: Persist compiled machine code when the environment names a cache
#: directory (the CI legs cache it between runs); default to in-memory
#: compilation so local runs never write next to the sources.
_JIT_CACHE = bool(os.environ.get("NUMBA_CACHE_DIR"))

_default_backend = "numpy"

#: Set once the one-per-process numba-fallback warning has been emitted.
_fallback_warned = False

#: Cumulative per-kernel dispatch counts, keyed by kernel family.  Tests
#: assert against these to prove a compiled run actually *executed* the
#: numba kernels instead of silently riding the NumPy path.
_dispatch_counts = {
    "chain_dp": 0,
    "chain_score": 0,
    "dag_block": 0,
    "dag_score": 0,
    "hier_level": 0,
}


def validate_backend(backend: str | None) -> str | None:
    """Pass ``backend`` through, raising on unrecognized names.

    ``None`` (meaning "use the process default, resolved at use time") is
    always valid.  The error names the currently active process default
    alongside the accepted spellings, so a typo'd request shows what the
    table would have used.
    """
    if backend is not None and backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (active default: "
            f"{_default_backend!r}); expected one of {', '.join(VALID_BACKENDS)}"
        )
    return backend


def get_default_backend() -> str:
    """The backend used by tables compiled without an explicit choice."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous default."""
    global _default_backend
    if validate_backend(backend) is None:
        raise ValueError("the default backend cannot be None")
    previous = _default_backend
    _default_backend = backend
    return previous


def resolve_backend(backend: str | None) -> str:
    """Resolve a table's ``backend`` field to a concrete backend name."""
    validate_backend(backend)
    return backend if backend is not None else _default_backend


def compiled_active(backend: str | None) -> bool:
    """Whether the resolved backend actually dispatches to numba kernels.

    ``False`` either because the backend is ``"numpy"`` or because numba
    is absent (the graceful-fallback rule).  True for both compiled
    variants; :func:`parallel_active` distinguishes the ``prange`` leg.
    """
    return resolve_backend(backend) in COMPILED_BACKENDS and NUMBA_AVAILABLE


def parallel_active(backend: str | None) -> bool:
    """Whether the resolved backend selects the ``prange`` scoring kernels."""
    return resolve_backend(backend) == "compiled-parallel" and NUMBA_AVAILABLE


def warn_numba_fallback(backend: str | None) -> None:
    """Warn -- once per process -- that a compiled backend fell back to NumPy.

    Called at table-compile time.  A no-op when numba is importable, when
    the resolved backend is ``"numpy"``, or when the warning already
    fired: a sweep compiles thousands of tables and one notice is enough
    (results are bit-identical either way, only the speed differs).
    """
    global _fallback_warned
    if NUMBA_AVAILABLE or _fallback_warned:
        return
    if resolve_backend(backend) not in COMPILED_BACKENDS:
        return
    _fallback_warned = True
    warnings.warn(
        f"backend {resolve_backend(backend)!r} requested but numba is not "
        "installed; running the bit-identical NumPy path (install numba to "
        "enable the compiled kernels)",
        RuntimeWarning,
        stacklevel=3,
    )


def dispatch_counts() -> dict[str, int]:
    """A snapshot of the per-kernel-family dispatch counters."""
    return dict(_dispatch_counts)


def reset_dispatch_counts() -> None:
    """Zero the dispatch counters (test isolation helper)."""
    for key in _dispatch_counts:
        _dispatch_counts[key] = 0


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only in the numba CI leg

    @njit(cache=_JIT_CACHE)
    def _chain_dp_jit(intra, inter, parents, frontiers, start, stop):
        """Advance the Algorithm 1 recurrence over layers ``[start, stop)``.

        Reads the frontier of layer ``start - 1`` from ``frontiers`` and
        writes one parent row and one frontier row per layer.  The adds
        (``com[s] + inter`` first, ``+ intra`` second) and the
        strict-``<`` first-minimum scan replicate the NumPy loop exactly.
        """
        num_strategies = intra.shape[1]
        for layer in range(start, stop):
            for target in range(num_strategies):
                best = frontiers[layer - 1, 0] + inter[layer - 1, 0, target]
                best_source = 0
                for source in range(1, num_strategies):
                    candidate = (
                        frontiers[layer - 1, source] + inter[layer - 1, source, target]
                    )
                    if candidate < best:
                        best = candidate
                        best_source = source
                parents[layer - 1, target] = best_source
                frontiers[layer, target] = best + intra[layer, target]

    @njit(cache=_JIT_CACHE)
    def _score_decoded_chain_jit(intra, inter, decoded, totals):
        """Chain totals of an ``(N, L)`` strategy-code matrix.

        Accumulates ``intra + inter`` per layer left to right -- the exact
        association of the NumPy scorer (and of the object-path
        ``sum(record.total_bytes ...)``).
        """
        num_candidates, num_layers = decoded.shape
        for row in range(num_candidates):
            code = decoded[row, 0]
            total = intra[0, code]
            for layer in range(1, num_layers):
                previous = decoded[row, layer - 1]
                code = decoded[row, layer]
                total += intra[layer, code] + inter[layer - 1, previous, code]
            totals[row] = total

    @njit(parallel=True, cache=_JIT_CACHE)
    def _score_decoded_chain_par_jit(intra, inter, decoded, totals):
        """``prange`` variant of the chain scorer (independent candidates)."""
        num_candidates, num_layers = decoded.shape
        for row in prange(num_candidates):
            code = decoded[row, 0]
            total = intra[0, code]
            for layer in range(1, num_layers):
                previous = decoded[row, layer - 1]
                code = decoded[row, layer]
                total += intra[layer, code] + inter[layer - 1, previous, code]
            totals[row] = total

    @njit(cache=_JIT_CACHE)
    def _score_decoded_dag_jit(
        intra, inter, edge_index, edge_source, edge_destination, decoded, totals
    ):
        """DAG totals of an ``(N, L)`` strategy-code matrix.

        Edge arrays are grouped by destination (stably), so walking them
        once per candidate accumulates each merge layer's incoming terms
        in canonical edge order into ``acc`` and adds the sum onto the
        intra term exactly once -- the ``intra + (e1 + e2 + ...)``
        association of the NumPy scorer.
        """
        num_candidates, num_layers = decoded.shape
        num_edges = edge_index.shape[0]
        for row in range(num_candidates):
            edge = 0
            total = 0.0
            for layer in range(num_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == layer:
                    acc += inter[
                        edge_index[edge],
                        decoded[row, edge_source[edge]],
                        decoded[row, layer],
                    ]
                    edge += 1
                value = intra[layer, decoded[row, layer]] + acc
                if layer == 0:
                    total = value
                else:
                    total += value
            totals[row] = total

    @njit(parallel=True, cache=_JIT_CACHE)
    def _score_decoded_dag_par_jit(
        intra, inter, edge_index, edge_source, edge_destination, decoded, totals
    ):
        """``prange`` variant of the DAG scorer (independent candidates)."""
        num_candidates, num_layers = decoded.shape
        num_edges = edge_index.shape[0]
        for row in prange(num_candidates):
            edge = 0
            total = 0.0
            for layer in range(num_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == layer:
                    acc += inter[
                        edge_index[edge],
                        decoded[row, edge_source[edge]],
                        decoded[row, layer],
                    ]
                    edge += 1
                value = intra[layer, decoded[row, layer]] + acc
                if layer == 0:
                    total = value
                else:
                    total += value
            totals[row] = total

    @njit(cache=_JIT_CACHE)
    def _dag_block_totals_jit(
        com,
        intra,
        inter,
        edge_index,
        edge_source,
        edge_destination,
        block_start,
        block_layers,
        base,
        first_code,
        totals,
    ):
        """Block totals for patterns ``[first_code, first_code + len(totals))``.

        One cut-segment of the DAG dynamic program: digit ``0`` is the
        entering cut vertex (whose accumulated prefix cost ``com``
        replaces the intra term), later digits are the interior layers and
        the closing cut vertex.  Decoding, gathering and the left-to-right
        accumulation replicate the NumPy chunk body of
        ``CostTable._dp_partition_dag`` float for float; the edge arrays
        carry *local* source/destination indices grouped by destination.
        """
        num_edges = edge_index.shape[0]
        digits = np.empty(block_layers, np.int64)
        for i in range(totals.shape[0]):
            rest = first_code + i
            for local in range(block_layers):
                digits[local] = rest % base
                rest //= base
            total = com[digits[0]]
            edge = 0
            for local in range(1, block_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == local:
                    acc += inter[
                        edge_index[edge], digits[edge_source[edge]], digits[local]
                    ]
                    edge += 1
                total += intra[block_start + local, digits[local]] + acc
            totals[i] = total

    @njit(parallel=True, cache=_JIT_CACHE)
    def _dag_block_totals_par_jit(
        com,
        intra,
        inter,
        edge_index,
        edge_source,
        edge_destination,
        block_start,
        block_layers,
        base,
        first_code,
        totals,
    ):
        """``prange`` variant of the block scorer (thread-private digits)."""
        num_edges = edge_index.shape[0]
        for i in prange(totals.shape[0]):
            digits = np.empty(block_layers, np.int64)
            rest = first_code + i
            for local in range(block_layers):
                digits[local] = rest % base
                rest //= base
            total = com[digits[0]]
            edge = 0
            for local in range(1, block_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == local:
                    acc += inter[
                        edge_index[edge], digits[edge_source[edge]], digits[local]
                    ]
                    edge += 1
                total += intra[block_start + local, digits[local]] + acc
            totals[i] = total

    @njit(cache=_JIT_CACHE)
    def _hier_level_chain_jit(intra, inter, states, codes, scale, totals):
        """One hierarchy level of the chain scorer, accumulated into ``totals``.

        ``intra`` is ``(L, S, K)``, ``inter`` is ``(L - 1, S, K, K)``;
        ``states``/``codes`` are ``(N, L)``.  Per candidate: gather + one
        ``intra + inter`` add per boundary, summed left to right, then
        ``totals[n] += total * scale`` -- exactly the NumPy level body of
        ``HierarchicalCostTable.score_level_codes``.
        """
        num_candidates, num_layers = codes.shape
        for row in range(num_candidates):
            total = intra[0, states[row, 0], codes[row, 0]]
            for layer in range(1, num_layers):
                total += (
                    intra[layer, states[row, layer], codes[row, layer]]
                    + inter[
                        layer - 1,
                        states[row, layer - 1],
                        codes[row, layer - 1],
                        codes[row, layer],
                    ]
                )
            totals[row] += total * scale

    @njit(parallel=True, cache=_JIT_CACHE)
    def _hier_level_chain_par_jit(intra, inter, states, codes, scale, totals):
        """``prange`` variant of the hierarchical chain level scorer."""
        num_candidates, num_layers = codes.shape
        for row in prange(num_candidates):
            total = intra[0, states[row, 0], codes[row, 0]]
            for layer in range(1, num_layers):
                total += (
                    intra[layer, states[row, layer], codes[row, layer]]
                    + inter[
                        layer - 1,
                        states[row, layer - 1],
                        codes[row, layer - 1],
                        codes[row, layer],
                    ]
                )
            totals[row] += total * scale

    @njit(cache=_JIT_CACHE)
    def _hier_level_dag_jit(
        intra, inter, edge_index, edge_source, edge_destination, states, codes, scale, totals
    ):
        """One hierarchy level of the DAG scorer, accumulated into ``totals``.

        The inter gather indexes the *source* layer's scale state (an
        edge's boundary tensors are its source's), and merge layers
        accumulate their incoming terms in canonical edge order before the
        single add onto the intra term -- both exactly as in the NumPy
        level body.
        """
        num_candidates, num_layers = codes.shape
        num_edges = edge_index.shape[0]
        for row in range(num_candidates):
            edge = 0
            total = 0.0
            for layer in range(num_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == layer:
                    source = edge_source[edge]
                    acc += inter[
                        edge_index[edge],
                        states[row, source],
                        codes[row, source],
                        codes[row, layer],
                    ]
                    edge += 1
                value = intra[layer, states[row, layer], codes[row, layer]] + acc
                if layer == 0:
                    total = value
                else:
                    total += value
            totals[row] += total * scale

    @njit(parallel=True, cache=_JIT_CACHE)
    def _hier_level_dag_par_jit(
        intra, inter, edge_index, edge_source, edge_destination, states, codes, scale, totals
    ):
        """``prange`` variant of the hierarchical DAG level scorer."""
        num_candidates, num_layers = codes.shape
        num_edges = edge_index.shape[0]
        for row in prange(num_candidates):
            edge = 0
            total = 0.0
            for layer in range(num_layers):
                acc = 0.0
                while edge < num_edges and edge_destination[edge] == layer:
                    source = edge_source[edge]
                    acc += inter[
                        edge_index[edge],
                        states[row, source],
                        codes[row, source],
                        codes[row, layer],
                    ]
                    edge += 1
                value = intra[layer, states[row, layer], codes[row, layer]] + acc
                if layer == 0:
                    total = value
                else:
                    total += value
            totals[row] += total * scale

else:
    _chain_dp_jit = None
    _score_decoded_chain_jit = None
    _score_decoded_chain_par_jit = None
    _score_decoded_dag_jit = None
    _score_decoded_dag_par_jit = None
    _dag_block_totals_jit = None
    _dag_block_totals_par_jit = None
    _hier_level_chain_jit = None
    _hier_level_chain_par_jit = None
    _hier_level_dag_jit = None
    _hier_level_dag_par_jit = None


def chain_dp_compiled(intra, inter, parents, frontiers, start, stop) -> None:
    """Dispatch the compiled chain-DP kernel (numba must be available).

    The recurrence is sequential in the layer axis, so both compiled
    backends share the serial kernel.
    """
    _dispatch_counts["chain_dp"] += 1
    _chain_dp_jit(intra, inter, parents, frontiers, start, stop)


def score_decoded_chain_compiled(
    intra, inter, decoded, totals, parallel: bool = False
) -> None:
    """Dispatch the compiled chain scorer kernel (numba must be available)."""
    _dispatch_counts["chain_score"] += 1
    kernel = _score_decoded_chain_par_jit if parallel else _score_decoded_chain_jit
    kernel(intra, inter, decoded, totals)


def score_decoded_dag_compiled(
    intra,
    inter,
    edge_index,
    edge_source,
    edge_destination,
    decoded,
    totals,
    parallel: bool = False,
) -> None:
    """Dispatch the compiled DAG scorer kernel (numba must be available).

    Edge arrays must be grouped by destination (stably); callers use
    ``CostTable._edge_arrays``.
    """
    _dispatch_counts["dag_score"] += 1
    kernel = _score_decoded_dag_par_jit if parallel else _score_decoded_dag_jit
    kernel(intra, inter, edge_index, edge_source, edge_destination, decoded, totals)


def dag_block_totals_compiled(
    com,
    intra,
    inter,
    edge_index,
    edge_source,
    edge_destination,
    block_start,
    block_layers,
    base,
    first_code,
    totals,
    parallel: bool = False,
) -> None:
    """Dispatch the compiled cut-segment scorer (numba must be available)."""
    _dispatch_counts["dag_block"] += 1
    kernel = _dag_block_totals_par_jit if parallel else _dag_block_totals_jit
    kernel(
        com,
        intra,
        inter,
        edge_index,
        edge_source,
        edge_destination,
        block_start,
        block_layers,
        base,
        first_code,
        totals,
    )


def hier_level_score_compiled(
    intra,
    inter,
    states,
    codes,
    scale,
    totals,
    *,
    is_chain: bool,
    edge_index=None,
    edge_source=None,
    edge_destination=None,
    parallel: bool = False,
) -> None:
    """Dispatch one hierarchy level's compiled scorer (numba must be available).

    Accumulates ``level_total * scale`` into ``totals`` in place, so the
    caller drives the level loop and the cross-level state tracking.
    """
    _dispatch_counts["hier_level"] += 1
    if is_chain:
        kernel = _hier_level_chain_par_jit if parallel else _hier_level_chain_jit
        kernel(intra, inter, states, codes, scale, totals)
    else:
        kernel = _hier_level_dag_par_jit if parallel else _hier_level_dag_jit
        kernel(
            intra, inter, edge_index, edge_source, edge_destination, states, codes, scale, totals
        )
