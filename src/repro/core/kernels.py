"""Optional compiled (numba) kernels behind the chain search hot paths.

The vectorized NumPy engine in :mod:`repro.core.costs` is fast enough for
the paper's ten networks, but transformer-depth chains (``gpt_s-1024`` is
4098 weighted layers) spend their time in two inner loops: the layer-wise
recurrence of Algorithm 1 (:meth:`CostTable.dp_partition`) and the batched
candidate scorer (:meth:`CostTable._score_decoded`).  This module provides
``@njit``-compiled versions of exactly those two loops plus the tiny
backend registry that selects between them.

Design rules
------------
* **Graceful fallback.**  numba is an *optional* dependency: when it is
  absent, :data:`NUMBA_AVAILABLE` is ``False`` and every caller silently
  runs the NumPy path.  Requesting ``backend="compiled"`` without numba is
  not an error -- results are identical either way, only the speed
  differs -- so configuration files and service requests stay portable
  across environments.
* **Bit-exactness.**  Each kernel performs the *same floating-point
  additions in the same order* as its NumPy counterpart, with the same
  strict-``<`` lowest-index argmin tie rule, so compiled results are
  byte-identical to the NumPy path (property-pinned by
  ``tests/properties/test_property_fastpaths.py``).
* **Scalar loops only.**  The kernels take preallocated output arrays and
  touch nothing but their arguments; all orchestration (chunking,
  memoization, result materialization) stays in :mod:`repro.core.costs`.

The module-level *default* backend is what tables compiled without an
explicit ``backend=`` argument use.  ``hypar --backend compiled`` flips
the default for the process; sweep workers started with ``fork`` inherit
it from the parent, which is how the backend reaches the process-parallel
sweep engine without widening its task protocol.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only in the numba CI leg
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # numba is optional; the NumPy paths are the fallback
    njit = None
    NUMBA_AVAILABLE = False

#: The recognized ``CostTable`` backends.
VALID_BACKENDS = ("numpy", "compiled")

_default_backend = "numpy"


def validate_backend(backend: str | None) -> str | None:
    """Pass ``backend`` through, raising on unrecognized names.

    ``None`` (meaning "use the process default, resolved at use time") is
    always valid.
    """
    if backend is not None and backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(VALID_BACKENDS)}"
        )
    return backend


def get_default_backend() -> str:
    """The backend used by tables compiled without an explicit choice."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous default."""
    global _default_backend
    if validate_backend(backend) is None:
        raise ValueError("the default backend cannot be None")
    previous = _default_backend
    _default_backend = backend
    return previous


def resolve_backend(backend: str | None) -> str:
    """Resolve a table's ``backend`` field to a concrete backend name."""
    validate_backend(backend)
    return backend if backend is not None else _default_backend


def compiled_active(backend: str | None) -> bool:
    """Whether the resolved backend actually dispatches to numba kernels.

    ``False`` either because the backend is ``"numpy"`` or because numba
    is absent (the graceful-fallback rule).
    """
    return resolve_backend(backend) == "compiled" and NUMBA_AVAILABLE


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only in the numba CI leg

    @njit(cache=False)
    def _chain_dp_jit(intra, inter, parents, frontiers, start, stop):
        """Advance the Algorithm 1 recurrence over layers ``[start, stop)``.

        Reads the frontier of layer ``start - 1`` from ``frontiers`` and
        writes one parent row and one frontier row per layer.  The adds
        (``com[s] + inter`` first, ``+ intra`` second) and the
        strict-``<`` first-minimum scan replicate the NumPy loop exactly.
        """
        num_strategies = intra.shape[1]
        for layer in range(start, stop):
            for target in range(num_strategies):
                best = frontiers[layer - 1, 0] + inter[layer - 1, 0, target]
                best_source = 0
                for source in range(1, num_strategies):
                    candidate = (
                        frontiers[layer - 1, source] + inter[layer - 1, source, target]
                    )
                    if candidate < best:
                        best = candidate
                        best_source = source
                parents[layer - 1, target] = best_source
                frontiers[layer, target] = best + intra[layer, target]

    @njit(cache=False)
    def _score_decoded_chain_jit(intra, inter, decoded, totals):
        """Chain totals of an ``(N, L)`` strategy-code matrix.

        Accumulates ``intra + inter`` per layer left to right -- the exact
        association of the NumPy scorer (and of the object-path
        ``sum(record.total_bytes ...)``).
        """
        num_candidates, num_layers = decoded.shape
        for row in range(num_candidates):
            code = decoded[row, 0]
            total = intra[0, code]
            for layer in range(1, num_layers):
                previous = decoded[row, layer - 1]
                code = decoded[row, layer]
                total += intra[layer, code] + inter[layer - 1, previous, code]
            totals[row] = total

else:
    _chain_dp_jit = None
    _score_decoded_chain_jit = None


def chain_dp_compiled(intra, inter, parents, frontiers, start, stop) -> None:
    """Dispatch the compiled chain-DP kernel (numba must be available)."""
    _chain_dp_jit(intra, inter, parents, frontiers, start, stop)


def score_decoded_chain_compiled(intra, inter, decoded, totals) -> None:
    """Dispatch the compiled chain scorer kernel (numba must be available)."""
    _score_decoded_chain_jit(intra, inter, decoded, totals)
