"""Numerically-validated partitioned execution of one training step.

This module executes one training step of a network that has been split
across **two accelerator groups** (one hierarchy level -- the setting of
Figure 1 and Section 3.1 of the paper), using the numpy reference kernels
of :mod:`repro.nn.reference`.  The layer graph may branch: a layer's
input is the merge of its predecessors' outputs (residual ``ADD`` or
channel ``CONCAT``), inter-layer exchanges are recorded per DAG edge
against that edge's source-output tensor, and a model-parallel feature
split of a ``CONCAT`` merge takes its fraction *of each branch* -- the
layout under which the per-edge Table-2 amounts are exact for every
dp/mp assignment, on chains and DAGs alike.  Pipeline stage ownership
alternates along the layer *order*, so a DAG skip edge may connect two
pipeline layers that share an owner group: the executor then moves
nothing across that edge while the (pairwise-indexed) cost tables still
charge the stage handoff -- for assignments containing ``pp`` on a
branching model the analytic per-edge amounts are an upper bound, exact
on chains (see DESIGN.md).  Each group only ever computes with the
tensor slices it would physically hold:

* a **data-parallel** layer processes its half of the batch with a full
  kernel copy and contributes a gradient partial sum that must be reduced
  with the other group's (the dp intra-layer communication);
* a **model-parallel** layer processes the full batch with its half of the
  kernel rows (input features), producing output-feature-map partial sums
  that must be reduced in the forward pass (the mp intra-layer
  communication);
* a **pipeline** layer is *stage-local*: its owner group (consecutive
  pipeline layers alternate owners, forming adjacent stages) executes the
  whole layer -- full batch, full kernel -- and no intra-layer reduction
  happens; the non-owner group holds nothing of the layer;
* between layers, whatever slice of the boundary feature map / error a
  group needs but did not produce itself is fetched from the other group
  (the inter-layer communication of Table 2, generalized by the strategy
  registry).

The executor records every such exchange with its element count, and its
stitched results are compared against the monolithic
:class:`~repro.nn.reference.ReferenceNetwork` step by the test suite.  This
is the strongest form of validation of the communication model: the
amounts in Tables 1 and 2 are not just formulas we copied, they are what an
actual partitioned computation must move to stay numerically identical to
the unpartitioned one.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.core.parallelism import LayerAssignment, Parallelism
from repro.core.placement import Interval
from repro.nn.layers import FCLayer
from repro.nn.model import DNNModel
from repro.nn.reference import (
    ReferenceNetwork,
    activation_backward,
    activation_forward,
)
from repro.nn.shapes import MergeOp

FULL = Interval(0.0, 1.0)
HALVES = (Interval(0.0, 0.5), Interval(0.5, 1.0))


@dataclasses.dataclass(frozen=True)
class Rectangle:
    """A (batch x feature) region of a boundary tensor, in fraction space."""

    batch: Interval
    feature: Interval

    @property
    def area(self) -> float:
        return self.batch.length * self.feature.length

    def intersection_area(self, other: "Rectangle") -> float:
        batch_overlap = max(
            0.0, min(self.batch.stop, other.batch.stop) - max(self.batch.start, other.batch.start)
        )
        feature_overlap = max(
            0.0,
            min(self.feature.stop, other.feature.stop)
            - max(self.feature.start, other.feature.start),
        )
        return batch_overlap * feature_overlap


@dataclasses.dataclass(frozen=True)
class CommunicationEvent:
    """One recorded exchange between the two groups."""

    layer_name: str
    kind: str  # "intra-dp", "intra-mp", "inter-forward", "inter-backward"
    elements: float

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise ValueError("communication elements must be non-negative")


@dataclasses.dataclass
class PartitionedStepResult:
    """Outputs of a partitioned training step plus its communication log."""

    output: np.ndarray
    gradients: List[np.ndarray]
    input_error: np.ndarray
    events: List[CommunicationEvent]

    def total_elements(self) -> float:
        return sum(event.elements for event in self.events)

    def elements_by_kind(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0.0) + event.elements
        return totals

    def elements_by_layer(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.layer_name] = totals.get(event.layer_name, 0.0) + event.elements
        return totals


class TwoGroupExecutor:
    """Executes one training step split across two accelerator groups.

    Parameters
    ----------
    network:
        The :class:`ReferenceNetwork` whose weights are being trained; its
        model must avoid pooling (see the reference module).
    assignment:
        The per-layer dp/mp choices for the single hierarchy level being
        modelled (two groups).
    """

    def __init__(self, network: ReferenceNetwork, assignment: LayerAssignment) -> None:
        if assignment.num_layers != len(network.model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model has {len(network.model)}"
            )
        self.network = network
        self.model: DNNModel = network.model
        self.assignment = assignment
        # Owner group of every pipeline layer: the k-th pipeline layer (in
        # layer order) is owned by group k % 2, so consecutive pipeline
        # layers form adjacent stages on opposite groups -- the alternation
        # the communication model's pp→pp transition cost assumes.
        self._pipeline_owner: Dict[int, int] = {}
        ordinal = 0
        for index, choice in enumerate(assignment):
            if choice is Parallelism.PIPELINE:
                self._pipeline_owner[index] = ordinal % 2
                ordinal += 1
        # Per-branch channel segments of every CONCAT merge layer: a model-
        # parallel feature split takes its fraction *of each branch* (the
        # layout the per-edge Table-2 costs assume), so the group's channel
        # set on the merged axis is the union of per-branch interval slices
        # rather than one contiguous run.
        self._concat_segments: Dict[int, List[tuple[int, int]]] = {}
        for layer in self.model:
            if layer.is_merge and layer.merge is MergeOp.CONCAT:
                segments: List[tuple[int, int]] = []
                offset = 0
                for source in layer.inputs:
                    channels = self.model[source].output_shape.channels
                    segments.append((offset, channels))
                    offset += channels
                self._concat_segments[layer.index] = segments
        # Memoised per-branch index arrays (see _channel_selection).
        self._selection_cache: Dict[tuple, np.ndarray] = {}
        self._fc_row_cache: Dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Layout helpers.  ``None`` means the group reads/holds nothing of the
    # tensor (the non-owner side of a stage-local layer).
    # ------------------------------------------------------------------

    def _needed_input_rectangle(self, layer_index: int, group: int) -> Rectangle | None:
        """The slice of the boundary tensor layer ``layer_index`` reads in forward."""
        choice = self.assignment[layer_index]
        if choice is Parallelism.DATA:
            return Rectangle(HALVES[group], FULL)
        if choice is Parallelism.MODEL:
            return Rectangle(FULL, HALVES[group])
        if group == self._pipeline_owner[layer_index]:
            return Rectangle(FULL, FULL)
        return None

    def _needed_error_rectangle(self, layer_index: int, group: int) -> Rectangle | None:
        """The slice of the output error layer ``layer_index`` reads in backward."""
        choice = self.assignment[layer_index]
        if choice is Parallelism.DATA:
            return Rectangle(HALVES[group], FULL)
        if choice is Parallelism.MODEL:
            return Rectangle(FULL, FULL)
        if group == self._pipeline_owner[layer_index]:
            return Rectangle(FULL, FULL)
        return None

    def _produced_output_rectangle(self, layer_index: int, group: int) -> Rectangle | None:
        """The slice of its output feature map a group holds after forward."""
        choice = self.assignment[layer_index]
        if choice is Parallelism.DATA:
            return Rectangle(HALVES[group], FULL)
        if choice is Parallelism.MODEL:
            # Model parallelism: after the partial-sum reduction every group
            # holds the full output for the full batch.
            return Rectangle(FULL, FULL)
        if group == self._pipeline_owner[layer_index]:
            return Rectangle(FULL, FULL)
        return None

    def _produced_error_rectangle(self, layer_index: int, group: int) -> Rectangle | None:
        """The slice of its *input* error a group produces in backward."""
        choice = self.assignment[layer_index]
        if choice is Parallelism.DATA:
            return Rectangle(HALVES[group], FULL)
        if choice is Parallelism.MODEL:
            return Rectangle(FULL, HALVES[group])
        if group == self._pipeline_owner[layer_index]:
            return Rectangle(FULL, FULL)
        return None

    @staticmethod
    def _missing_elements(
        needed: Rectangle | None, produced: Rectangle | None, total_elements: int
    ) -> float:
        """Elements of ``needed`` that are not already inside ``produced``."""
        if needed is None:
            return 0.0
        if produced is None:
            return needed.area * total_elements
        return (needed.area - needed.intersection_area(produced)) * total_elements

    # ------------------------------------------------------------------
    # Tensor slicing helpers (operating on full logical arrays).
    # ------------------------------------------------------------------

    @staticmethod
    def _batch_slice(tensor: np.ndarray, interval: Interval) -> np.ndarray:
        return tensor[interval.slice_of(tensor.shape[0])]

    def _channel_selection(self, layer_index: int, interval: Interval) -> np.ndarray | None:
        """Merged-axis channel indices of ``interval`` under per-branch splitting.

        ``None`` for single-branch and ``ADD``-merge layers, whose feature
        splits stay the historical contiguous interval slices.  The index
        arrays are deterministic per ``(layer, interval)`` and a training
        step asks for each one several times (forward slice, backward
        slice, both stitch directions), so they are memoised.
        """
        segments = self._concat_segments.get(layer_index)
        if segments is None:
            return None
        key = (layer_index, interval)
        cached = self._selection_cache.get(key)
        if cached is None:
            cached = np.concatenate(
                [
                    offset
                    + np.arange(channels, dtype=np.intp)[interval.slice_of(channels)]
                    for offset, channels in segments
                ]
            )
            self._selection_cache[key] = cached
        return cached

    def _fc_row_selection(self, layer_index: int, interval: Interval) -> np.ndarray:
        """Flattened-input row indices of ``interval`` under per-branch splitting.

        The FC kernel's rows follow the row-major ``(H, W, C)`` flattening
        of the merged input, so a per-branch channel set selects the same
        channels at every spatial position.  Memoised per
        ``(layer, interval)`` like :meth:`_channel_selection`.
        """
        key = (layer_index, interval)
        cached = self._fc_row_cache.get(key)
        if cached is None:
            channel_sel = self._channel_selection(layer_index, interval)
            layer = self.model[layer_index]
            total_channels = sum(
                channels for _, channels in self._concat_segments[layer_index]
            )
            spatial = layer.input_shape.elements // total_channels
            cached = (
                np.arange(spatial, dtype=np.intp)[:, None] * total_channels
                + channel_sel[None, :]
            ).reshape(-1)
            self._fc_row_cache[key] = cached
        return cached

    def _feature_slice(self, layer_index: int, tensor: np.ndarray, interval: Interval) -> np.ndarray:
        """Slice the input-feature dimension of layer ``layer_index``'s input."""
        spec = self.model[layer_index].spec
        selection = self._channel_selection(layer_index, interval)
        if isinstance(spec, FCLayer):
            if selection is not None:
                if tensor.ndim > 2:
                    return tensor[..., selection].reshape(tensor.shape[0], -1)
                return tensor[:, self._fc_row_selection(layer_index, interval)]
            flat = tensor.reshape(tensor.shape[0], -1)
            return flat[:, interval.slice_of(flat.shape[1])]
        if selection is not None:
            return tensor[..., selection]
        return tensor[..., interval.slice_of(tensor.shape[-1])]

    def _weight_slice(self, layer_index: int, interval: Interval) -> np.ndarray:
        """Slice the kernel's input dimension (rows / input channels)."""
        weight = self.network.weights[layer_index]
        spec = self.model[layer_index].spec
        selection = self._channel_selection(layer_index, interval)
        if isinstance(spec, FCLayer):
            if selection is not None:
                return weight[self._fc_row_selection(layer_index, interval), :]
            return weight[interval.slice_of(weight.shape[0]), :]
        if selection is not None:
            return weight[:, :, selection, :]
        return weight[:, :, interval.slice_of(weight.shape[2]), :]

    # ------------------------------------------------------------------
    # The partitioned training step.
    # ------------------------------------------------------------------

    def run_step(self, x: np.ndarray, grad_output: np.ndarray) -> PartitionedStepResult:
        """Execute forward, error backward and gradient computation.

        ``x`` is the full input batch and ``grad_output`` the full loss
        gradient at the network output; both are logically available to the
        groups according to the first/last layers' layouts (reading training
        data and computing the loss are local operations, as in the paper).

        The layer graph may be a DAG: a layer's input is the merge of its
        predecessors' activations, inter-layer communication is accounted
        per incoming edge (against that edge's source-output tensor, the
        boundary the per-edge Table-2 costs are stated over), and backward
        errors join across the fan-out before a layer back-propagates.
        """
        events: List[CommunicationEvent] = []
        model = self.model
        network = self.network
        num_layers = len(model)

        # --------------------------- forward ---------------------------
        # full_inputs[l] is the full logical (merged) input of layer l;
        # full_pre[l] the full pre-activation; full_outputs[l] the full
        # activation.
        full_inputs: List[np.ndarray] = []
        full_pre: List[np.ndarray] = []
        full_outputs: List[np.ndarray] = []
        for index, layer in enumerate(model):
            choice = self.assignment[index]
            if layer.inputs:
                current = network.merge_inputs(
                    index, [full_outputs[source] for source in layer.inputs]
                )
            else:
                current = x
            full_inputs.append(current)

            # Inter-layer (forward) communication: what each group must fetch
            # across each incoming edge to assemble the input slice it needs.
            # A layer without predecessors reads the training data, which is
            # local by definition.
            for source in layer.inputs:
                total_boundary = full_outputs[source].size
                for group in range(2):
                    needed = self._needed_input_rectangle(index, group)
                    produced = self._produced_output_rectangle(source, group)
                    missing = self._missing_elements(needed, produced, total_boundary)
                    if missing:
                        events.append(
                            CommunicationEvent(layer.name, "inter-forward", missing)
                        )

            if choice is Parallelism.DATA:
                parts = []
                for group in range(2):
                    local_input = self._batch_slice(current, HALVES[group])
                    parts.append(
                        self.network.layer_forward(
                            index, local_input, self.network.weights[index]
                        )
                    )
                pre_activation = np.concatenate(parts, axis=0)
            elif choice is Parallelism.PIPELINE:
                # The stage owner executes the whole layer locally: full
                # batch, full kernel, no partial-sum exchange.
                pre_activation = self.network.layer_forward(
                    index, current, self.network.weights[index]
                )
            else:
                partials = []
                for group in range(2):
                    local_input = self._feature_slice(index, current, HALVES[group])
                    local_weight = self._weight_slice(index, HALVES[group])
                    partials.append(
                        self.network.layer_forward(index, local_input, local_weight)
                    )
                # The partial-sum exchange: each group sends its full-size
                # partial output to the other (Table 1's mp entry).
                events.append(
                    CommunicationEvent(layer.name, "intra-mp", 2.0 * partials[0].size)
                )
                pre_activation = partials[0] + partials[1]

            output = activation_forward(pre_activation, layer.spec.activation)
            full_pre.append(pre_activation)
            full_outputs.append(output)

        # --------------------------- backward --------------------------
        gradients: List[np.ndarray | None] = [None] * num_layers
        # input_errors[l] is the full logical error layer l produces at its
        # (merged) input; consumers' pieces of it feed their predecessors.
        input_errors: List[np.ndarray | None] = [None] * num_layers
        for index in reversed(range(num_layers)):
            layer = model[index]
            choice = self.assignment[index]
            consumers = model.consumers(index)

            # Inter-layer (backward) communication: the error pieces
            # produced by the consumer layers arrive in those layers'
            # layouts; this layer needs its output error in its own layout.
            # Like the communication model, each exchange is attributed to
            # the consumer end of its edge and counted against this layer's
            # output-error tensor.
            if not consumers:
                # The network output: the loss gradient is local, in this
                # layer's own layout.
                current_error = grad_output
            else:
                pieces = []
                total_boundary = full_outputs[index].size
                for destination in consumers:
                    for group in range(2):
                        needed = self._needed_error_rectangle(index, group)
                        produced = self._produced_error_rectangle(destination, group)
                        missing = self._missing_elements(
                            needed, produced, total_boundary
                        )
                        if missing:
                            events.append(
                                CommunicationEvent(
                                    model[destination].name, "inter-backward", missing
                                )
                            )
                    position = model[destination].inputs.index(index)
                    pieces.append(
                        network.split_input_error(
                            destination, input_errors[destination]
                        )[position]
                    )
                current_error = pieces[0]
                for piece in pieces[1:]:
                    current_error = current_error + piece

            if choice is Parallelism.DATA:
                grad_parts = []
                error_parts = []
                weight_partials = []
                for group in range(2):
                    local_error = self._batch_slice(current_error, HALVES[group])
                    local_pre = self._batch_slice(full_pre[index], HALVES[group])
                    local_input = self._batch_slice(full_inputs[index], HALVES[group])
                    local_grad = activation_backward(
                        local_pre, local_error, layer.spec.activation
                    )
                    weight_partials.append(
                        self.network.layer_backward_weight(index, local_input, local_grad)
                    )
                    error_parts.append(
                        self.network.layer_backward_input(
                            index, local_grad, self.network.weights[index], local_input
                        )
                    )
                    grad_parts.append(local_grad)
                # Gradient partial-sum exchange (Table 1's dp entry).
                events.append(
                    CommunicationEvent(
                        layer.name, "intra-dp", 2.0 * weight_partials[0].size
                    )
                )
                gradients[index] = weight_partials[0] + weight_partials[1]
                current_error = np.concatenate(error_parts, axis=0)
            elif choice is Parallelism.PIPELINE:
                # Stage-local backward: the owner computes the full gradient
                # and full input error with its full kernel copy; nothing is
                # reduced across the pair.
                local_grad = activation_backward(
                    full_pre[index], current_error, layer.spec.activation
                )
                gradients[index] = self.network.layer_backward_weight(
                    index, full_inputs[index], local_grad
                )
                current_error = self.network.layer_backward_input(
                    index, local_grad, self.network.weights[index], full_inputs[index]
                )
            else:
                local_grad = activation_backward(
                    full_pre[index], current_error, layer.spec.activation
                )
                weight_slices = []
                error_slices = []
                for group in range(2):
                    local_input = self._feature_slice(
                        index, full_inputs[index], HALVES[group]
                    )
                    local_weight = self._weight_slice(index, HALVES[group])
                    weight_slices.append(
                        self.network.layer_backward_weight(index, local_input, local_grad)
                    )
                    error_slices.append(
                        self.network.layer_backward_input(
                            index, local_grad, local_weight, local_input
                        )
                    )
                # Stitch the kernel-row slices and input-feature slices back
                # into full tensors (no communication: each group keeps its
                # own slice, exactly as in Figure 1 (b)).
                gradients[index] = self._stitch_weight(index, weight_slices)
                current_error = self._stitch_features(index, error_slices, full_inputs[index])

            input_errors[index] = current_error

        return PartitionedStepResult(
            output=full_outputs[-1],
            gradients=[grad for grad in gradients if grad is not None],
            input_error=input_errors[0],
            events=events,
        )

    # ------------------------------------------------------------------
    # Stitching helpers for model-parallel slices.
    # ------------------------------------------------------------------

    def _stitch_weight(self, layer_index: int, slices: Sequence[np.ndarray]) -> np.ndarray:
        spec = self.model[layer_index].spec
        if layer_index in self._concat_segments:
            # Per-branch feature splits interleave the groups' kernel rows
            # on the merged axis, so the slices scatter back by index
            # instead of concatenating contiguously.
            weight = self.network.weights[layer_index]
            full = np.zeros_like(weight)
            for group, piece in enumerate(slices):
                selection = self._channel_selection(layer_index, HALVES[group])
                if isinstance(spec, FCLayer):
                    full[self._fc_row_selection(layer_index, HALVES[group]), :] = piece
                else:
                    full[:, :, selection, :] = piece
            return full
        axis = 0 if isinstance(spec, FCLayer) else 2
        return np.concatenate(slices, axis=axis)

    def _stitch_features(
        self, layer_index: int, slices: Sequence[np.ndarray], reference: np.ndarray
    ) -> np.ndarray:
        spec = self.model[layer_index].spec
        if layer_index in self._concat_segments:
            full = np.zeros_like(reference)
            for group, piece in enumerate(slices):
                selection = self._channel_selection(layer_index, HALVES[group])
                if isinstance(spec, FCLayer):
                    flat = full.reshape(full.shape[0], -1)
                    flat[:, self._fc_row_selection(layer_index, HALVES[group])] = piece
                else:
                    full[..., selection] = piece
            return full
        if isinstance(spec, FCLayer):
            stitched = np.concatenate(slices, axis=1)
            return stitched.reshape(reference.shape)
        return np.concatenate(slices, axis=-1)
