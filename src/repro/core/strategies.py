"""The per-layer strategy registry.

Every per-layer parallelism strategy contributes three things to the cost
compilation pipeline:

* its **intra-layer cost column** (Table 1 of the paper, generalized): the
  partial-sum/reduction traffic of a layer assigned this strategy;
* its **inter-layer transition block** (Table 2, generalized): how much of
  the boundary feature map (forward) and boundary error (backward) must be
  re-laid-out when this strategy *follows* any other strategy;
* its **descent behaviour**: which tensor fraction one hierarchy-level
  halving shrinks (batch for dp, weights for mp, neither for the
  stage-local pp), consumed by :class:`~repro.core.tensors.TensorScale`
  and the scale-descent states of the vectorized cost tables.

:class:`~repro.core.communication.CommunicationModel` dispatches through
this registry, so the cost tables of :mod:`repro.core.costs`, the
object-based oracle paths and the simulator all see one definition per
strategy.  Adding a strategy is registering a :class:`StrategySpec`; no
enumerator, table or simulator code needs to change.

Element-count conventions
-------------------------
All amounts are *element counts per group* under the pair convention of
:mod:`repro.core.communication`: the byte conversion multiplies by the
pair factor (2), so a spec's transition amount is half the total traffic
crossing the link.  The dp/mp entries reproduce the paper's Tables 1 and 2
verbatim; the pipeline entries are derived from the same rectangle overlap
calculus the partitioned executor (:mod:`repro.core.execution`) validates
numerically:

==============  =====================  =====================
transition       forward (features)     backward (errors)
==============  =====================  =====================
dp → pp          ``0.25 A(F_{l+1})``    ``0.25 A(E_{l+1})``
mp → pp          0                      ``0.5 A(E_{l+1})``
pp → dp          ``0.25 A(F_{l+1})``    ``0.25 A(E_{l+1})``
pp → mp          ``0.25 A(F_{l+1})``    ``0.25 A(E_{l+1})``
pp → pp          ``0.5 A(F_{l+1})``     ``0.5 A(E_{l+1})``
==============  =====================  =====================

(the pp → pp entry is the full activation/error crossing the stage
boundary between two adjacent stages, which live on opposite groups
because consecutive pipeline layers alternate owners; a pipeline layer has
no intra-layer reduction at all, so its Table-1 column is zero).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Dict, Iterable

from repro.core.parallelism import (
    DEFAULT_SPACE,
    FULL_SPACE,
    Parallelism,
    StrategySpace,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.tensors import LayerTensors

#: Which tensor fraction one hierarchy-level descent halves.
BATCH = "batch"
WEIGHT = "weight"
NONE = "none"


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """Everything the cost pipeline needs to know about one strategy.

    Attributes
    ----------
    parallelism:
        The :class:`Parallelism` member this spec implements.
    halves:
        Which tensor fraction a descent under this choice halves:
        ``"batch"`` (dp), ``"weight"`` (mp) or ``"none"`` (stage-local
        strategies such as pp, where the owning group keeps the whole
        layer).
    stage_local:
        Whether the layer lives entirely on one group of the pair (pp).
        Stage-local layers have no kernel replication across the pair and
        alternate owner groups along the layer order.
    intra_phase:
        The training phase the intra-layer exchange belongs to in the
        simulator/trace ("forward" for mp's partial-sum reduction,
        "gradient" for dp's gradient reduction).
    intra_elements:
        Table-1 column: intra-layer amount (elements) for a layer's
        tensor record.
    inter_forward_elements / inter_backward_elements:
        Table-2 transition block, *incoming* edge: the boundary
        feature-map/error amount (elements) re-laid-out when this strategy
        follows ``previous`` across the boundary tensor record.
    description:
        One-line human-readable summary (``hypar strategies``).
    """

    parallelism: Parallelism
    halves: str
    stage_local: bool
    intra_phase: str
    intra_elements: Callable[["LayerTensors"], float]
    inter_forward_elements: Callable[[Parallelism, "LayerTensors"], float]
    inter_backward_elements: Callable[[Parallelism, "LayerTensors"], float]
    description: str = ""

    def __post_init__(self) -> None:
        if self.halves not in (BATCH, WEIGHT, NONE):
            raise ValueError(f"unknown descent behaviour {self.halves!r}")
        if self.intra_phase not in ("forward", "gradient"):
            raise ValueError(f"unknown intra phase {self.intra_phase!r}")

    @property
    def short(self) -> str:
        return self.parallelism.short


_REGISTRY: Dict[Parallelism, StrategySpec] = {}


def register_strategy(spec: StrategySpec) -> StrategySpec:
    """Register (or replace) the spec of one strategy."""
    _REGISTRY[spec.parallelism] = spec
    return spec


def strategy_spec(parallelism: Parallelism) -> StrategySpec:
    """The registered spec of ``parallelism``."""
    try:
        return _REGISTRY[parallelism]
    except KeyError:
        raise KeyError(f"no strategy registered for {parallelism}") from None


def registered_strategies() -> Iterable[StrategySpec]:
    """All registered specs, in canonical (full-space) order."""
    return tuple(_REGISTRY[member] for member in FULL_SPACE)


# ----------------------------------------------------------------------
# The built-in strategies.
# ----------------------------------------------------------------------

def _dp_intra(tensors: "LayerTensors") -> float:
    # Table 1: gradient reduction during the weight update.
    return tensors.gradient


def _dp_forward(previous: Parallelism, boundary: "LayerTensors") -> float:
    # dp after anything batch-compatible needs no feature re-layout except
    # from a stage-local producer, whose output exists on one group only.
    if previous is Parallelism.PIPELINE:
        return 0.25 * boundary.feature_out
    return 0.0


def _dp_backward(previous: Parallelism, boundary: "LayerTensors") -> float:
    if previous is Parallelism.DATA:
        return 0.0
    if previous is Parallelism.PIPELINE:
        # The stage owner needs the batch half of its output error the
        # other group produced.
        return 0.25 * boundary.error_out
    # mp -> dp costs half the boundary error tensor (Table 2).
    return 0.5 * boundary.error_out


def _mp_intra(tensors: "LayerTensors") -> float:
    # Table 1: output-feature partial-sum reduction in the forward pass.
    return tensors.feature_out


def _mp_forward(previous: Parallelism, boundary: "LayerTensors") -> float:
    if previous is Parallelism.DATA:
        # Only the dp→mp transition re-lays-out the boundary feature map
        # (Figure 2 (b)).
        return 0.25 * boundary.feature_out
    if previous is Parallelism.PIPELINE:
        # The non-owner group fetches its feature half of the stage output.
        return 0.25 * boundary.feature_out
    return 0.0


def _mp_backward(previous: Parallelism, boundary: "LayerTensors") -> float:
    if previous is Parallelism.DATA:
        return 0.25 * boundary.error_out
    if previous is Parallelism.PIPELINE:
        # The stage owner needs the feature half of its output error the
        # other group produced.
        return 0.25 * boundary.error_out
    # mp -> mp costs half the boundary error tensor (Table 2).
    return 0.5 * boundary.error_out


def _pp_intra(tensors: "LayerTensors") -> float:
    # Stage-local weights: no gradient or partial-sum reduction at all.
    return 0.0


def _pp_forward(previous: Parallelism, boundary: "LayerTensors") -> float:
    if previous is Parallelism.DATA:
        # The stage owner fetches the batch half it did not compute.
        return 0.25 * boundary.feature_out
    if previous is Parallelism.PIPELINE:
        # Adjacent stages live on opposite groups: the full activation
        # crosses the stage boundary (micro-batched in the simulator).
        return 0.5 * boundary.feature_out
    # mp producers hold the full reduced output on both groups.
    return 0.0


def _pp_backward(previous: Parallelism, boundary: "LayerTensors") -> float:
    if previous is Parallelism.DATA:
        # The dp layer's non-owner group needs its batch half of the error.
        return 0.25 * boundary.error_out
    if previous is Parallelism.PIPELINE:
        # The full error crosses back over the stage boundary.
        return 0.5 * boundary.error_out
    # An mp predecessor needs the full error on both groups; the non-owner
    # copy crosses the link.
    return 0.5 * boundary.error_out


DATA_SPEC = register_strategy(
    StrategySpec(
        parallelism=Parallelism.DATA,
        halves=BATCH,
        stage_local=False,
        intra_phase="gradient",
        intra_elements=_dp_intra,
        inter_forward_elements=_dp_forward,
        inter_backward_elements=_dp_backward,
        description="batch split across the pair, kernels replicated "
        "(gradient reduction per step)",
    )
)

MODEL_SPEC = register_strategy(
    StrategySpec(
        parallelism=Parallelism.MODEL,
        halves=WEIGHT,
        stage_local=False,
        intra_phase="forward",
        intra_elements=_mp_intra,
        inter_forward_elements=_mp_forward,
        inter_backward_elements=_mp_backward,
        description="kernel split across the pair, full batch everywhere "
        "(output partial-sum reduction in forward)",
    )
)

PIPELINE_SPEC = register_strategy(
    StrategySpec(
        parallelism=Parallelism.PIPELINE,
        halves=NONE,
        stage_local=True,
        intra_phase="forward",
        intra_elements=_pp_intra,
        inter_forward_elements=_pp_forward,
        inter_backward_elements=_pp_backward,
        description="stage-local layer on one group of the pair; "
        "micro-batched activations/errors cross the stage boundary",
    )
)


__all__ = [
    "BATCH",
    "WEIGHT",
    "NONE",
    "StrategySpec",
    "StrategySpace",
    "DEFAULT_SPACE",
    "FULL_SPACE",
    "register_strategy",
    "strategy_spec",
    "registered_strategies",
    "DATA_SPEC",
    "MODEL_SPEC",
    "PIPELINE_SPEC",
]
