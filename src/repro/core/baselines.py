"""Baseline parallelism strategies the paper compares against.

* **Data Parallelism** -- every layer at every level uses data parallelism
  (the de-facto default for training frameworks).
* **Model Parallelism** -- every layer at every level uses model parallelism.
* **"One weird trick"** (Krizhevsky, 2014) -- convolutional layers use data
  parallelism, fully-connected layers use model parallelism, at every level.
* **Random assignments** -- used by tests and ablations as a sanity floor.

Every strategy produces a :class:`~repro.core.parallelism.HierarchicalAssignment`
for a given model and number of hierarchy levels, so all of them can be fed
to :class:`~repro.core.hierarchical.HierarchicalPartitioner.evaluate` and to
the simulator on an equal footing with HyPar's searched assignment.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
)
from repro.nn.model import DNNModel


def data_parallelism(model: DNNModel, num_levels: int) -> HierarchicalAssignment:
    """The default Data Parallelism: dp for every layer at every level."""
    return HierarchicalAssignment.uniform(Parallelism.DATA, num_levels, len(model))


def model_parallelism(model: DNNModel, num_levels: int) -> HierarchicalAssignment:
    """The default Model Parallelism: mp for every layer at every level."""
    return HierarchicalAssignment.uniform(Parallelism.MODEL, num_levels, len(model))


def pipeline_parallelism(model: DNNModel, num_levels: int) -> HierarchicalAssignment:
    """Pure Pipeline Parallelism: pp for every layer at every level.

    Every layer is stage-local with alternating owners, so the whole
    network is a chain of pipeline stages and all communication is the
    micro-batched activation/error streaming at the stage boundaries.
    """
    return HierarchicalAssignment.uniform(Parallelism.PIPELINE, num_levels, len(model))


def one_weird_trick(model: DNNModel, num_levels: int) -> HierarchicalAssignment:
    """Krizhevsky's "one weird trick": conv layers → dp, fc layers → mp.

    The trick only looks at the layer type, so the same list is repeated at
    every hierarchy level.
    """
    level = LayerAssignment(
        tuple(
            Parallelism.DATA if layer.is_conv else Parallelism.MODEL
            for layer in model
        )
    )
    return HierarchicalAssignment(tuple([level] * num_levels))


def random_assignment(
    model: DNNModel,
    num_levels: int,
    seed: int | None = None,
) -> HierarchicalAssignment:
    """A uniformly random assignment (useful as a statistical baseline)."""
    rng = random.Random(seed)
    levels = []
    for _ in range(num_levels):
        levels.append(
            LayerAssignment(
                tuple(
                    Parallelism.DATA if rng.random() < 0.5 else Parallelism.MODEL
                    for _ in range(len(model))
                )
            )
        )
    return HierarchicalAssignment(tuple(levels))


#: Named strategies usable from the CLI and the experiment drivers.  The
#: callables take ``(model, num_levels)`` and return an assignment.
STRATEGIES: Dict[str, Callable[[DNNModel, int], HierarchicalAssignment]] = {
    "data-parallelism": data_parallelism,
    "model-parallelism": model_parallelism,
    "pipeline-parallelism": pipeline_parallelism,
    "one-weird-trick": one_weird_trick,
}


def get_strategy(name: str) -> Callable[[DNNModel, int], HierarchicalAssignment]:
    """Look up a baseline strategy by name (case-insensitive, '-'/'_' agnostic)."""
    normalized = name.strip().lower().replace("_", "-")
    aliases = {
        "dp": "data-parallelism",
        "data": "data-parallelism",
        "mp": "model-parallelism",
        "model": "model-parallelism",
        "pp": "pipeline-parallelism",
        "pipeline": "pipeline-parallelism",
        "trick": "one-weird-trick",
        "owt": "one-weird-trick",
    }
    normalized = aliases.get(normalized, normalized)
    if normalized not in STRATEGIES:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(f"unknown strategy {name!r}; known strategies: {known}")
    return STRATEGIES[normalized]
