"""Result records returned by the partition algorithms."""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.communication import LayerCommunication
from repro.core.parallelism import HierarchicalAssignment, LayerAssignment


@dataclasses.dataclass(frozen=True)
class PartitionResult:
    """Outcome of Algorithm 1 (partition between two accelerator groups).

    Attributes
    ----------
    assignment:
        The per-layer parallelism list minimising communication between the
        two groups.
    communication_bytes:
        Total traffic (bytes) between the two groups for one training step
        under ``assignment``.
    breakdown:
        Per-layer intra-/inter-layer traffic under ``assignment``.
    """

    assignment: LayerAssignment
    communication_bytes: float
    breakdown: tuple[LayerCommunication, ...]

    @property
    def num_layers(self) -> int:
        return self.assignment.num_layers

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionResult({self.assignment}, "
            f"{self.communication_bytes / 1e9:.3f} GB)"
        )


@dataclasses.dataclass(frozen=True)
class LevelResult:
    """One hierarchy level of a hierarchical partition.

    ``communication_bytes`` is the traffic crossing *one* pair boundary at
    this level; ``num_pairs`` is how many such pair boundaries exist
    (``2**level``), so the level's total contribution is their product.
    """

    level: int
    assignment: LayerAssignment
    communication_bytes: float
    num_pairs: int
    breakdown: tuple[LayerCommunication, ...]

    @property
    def total_bytes(self) -> float:
        """Traffic summed over all pair boundaries at this level."""
        return self.communication_bytes * self.num_pairs


@dataclasses.dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of Algorithm 2 (hierarchical partition of the whole array)."""

    model_name: str
    batch_size: int
    assignment: HierarchicalAssignment
    levels: tuple[LevelResult, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != self.assignment.num_levels:
            raise ValueError("levels and assignment disagree on the number of levels")

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_accelerators(self) -> int:
        return 1 << self.num_levels

    @property
    def total_communication_bytes(self) -> float:
        """Total traffic across every pair boundary of every level, per step."""
        return sum(level.total_bytes for level in self.levels)

    def level_bytes(self) -> list[float]:
        """Per-level total traffic (index 0 = topmost level H1)."""
        return [level.total_bytes for level in self.levels]

    def describe(self) -> str:
        """Multi-line human-readable description (mirrors Figure 5's content)."""
        lines = [
            f"{self.model_name}: {self.num_accelerators} accelerators, "
            f"batch {self.batch_size}, "
            f"total communication {self.total_communication_bytes / 1e9:.3f} GB/step"
        ]
        layer_names = [record.layer_name for record in self.levels[0].breakdown]
        header = "  layer        " + "  ".join(
            f"H{level.level + 1}" for level in self.levels
        )
        lines.append(header)
        for layer_index, name in enumerate(layer_names):
            choices = "  ".join(
                level.assignment[layer_index].short for level in self.levels
            )
            lines.append(f"  {name:<12s} {choices}")
        return "\n".join(lines)


def summarize_levels(levels: Sequence[LevelResult]) -> dict:
    """Small helper used by reports: per-level and total traffic in GB."""
    return {
        "per_level_gb": [level.total_bytes / 1e9 for level in levels],
        "total_gb": sum(level.total_bytes for level in levels) / 1e9,
    }
