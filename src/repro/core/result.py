"""Result records returned by the partition algorithms.

``PartitionResult`` and ``LevelResult`` support a *lazy* per-layer
breakdown: hot paths (the vectorized searches of :mod:`repro.core.costs`,
the sweep evaluators, ``TwoWayPartitioner.evaluate``) construct results with
a ``breakdown_factory`` instead of an eager tuple, so the
:class:`~repro.core.communication.LayerCommunication` objects are only
allocated for the candidates somebody actually reports on -- typically just
the winner of a search over millions of assignments.  Accessing
``.breakdown`` materializes (and caches) the records transparently, so
reporting callers are unaffected.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.communication import LayerCommunication
from repro.core.parallelism import HierarchicalAssignment, LayerAssignment

BreakdownFactory = Callable[[], tuple[LayerCommunication, ...]]


class _LazyBreakdown:
    """Shared machinery: an eager tuple or a factory invoked on first access."""

    __slots__ = ("_breakdown", "_breakdown_factory")

    def _init_breakdown(
        self,
        breakdown: tuple[LayerCommunication, ...] | None,
        breakdown_factory: BreakdownFactory | None,
    ) -> None:
        if breakdown is None and breakdown_factory is None:
            raise ValueError("either breakdown or breakdown_factory is required")
        self._breakdown = tuple(breakdown) if breakdown is not None else None
        self._breakdown_factory = breakdown_factory

    @property
    def breakdown(self) -> tuple[LayerCommunication, ...]:
        """Per-layer records, materialized on first access and cached."""
        if self._breakdown is None:
            self._breakdown = tuple(self._breakdown_factory())
            # Release the factory: it pins tensors/tables in its closure.
            self._breakdown_factory = None
        return self._breakdown

    # ------------------------------------------------------------------
    # Pickling (results cross process boundaries in parallel sweeps).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Materialize the breakdown, then pickle the slot values.

        The lazy factory is a closure over tensors/cost tables and cannot
        cross a process boundary; the materialized records can, so sweep
        workers return fully usable results.
        """
        self.breakdown
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


class PartitionResult(_LazyBreakdown):
    """Outcome of Algorithm 1 (partition between two accelerator groups).

    Attributes
    ----------
    assignment:
        The per-layer parallelism list minimising communication between the
        two groups.
    communication_bytes:
        Total traffic (bytes) between the two groups for one training step
        under ``assignment``.
    breakdown:
        Per-layer intra-/inter-layer traffic under ``assignment``; lazily
        materialized when the result was produced by a batch search.
    """

    __slots__ = ("assignment", "communication_bytes")

    def __init__(
        self,
        assignment: LayerAssignment,
        communication_bytes: float,
        breakdown: tuple[LayerCommunication, ...] | None = None,
        breakdown_factory: BreakdownFactory | None = None,
    ) -> None:
        self.assignment = assignment
        self.communication_bytes = communication_bytes
        self._init_breakdown(breakdown, breakdown_factory)

    @property
    def num_layers(self) -> int:
        return self.assignment.num_layers

    def __eq__(self, other: object) -> bool:
        # Value semantics, as the frozen-dataclass predecessor had; comparing
        # materializes lazy breakdowns, which is fine for the rare compare.
        if not isinstance(other, PartitionResult):
            return NotImplemented
        return (
            self.assignment == other.assignment
            and self.communication_bytes == other.communication_bytes
            and self.breakdown == other.breakdown
        )

    def __hash__(self) -> int:
        return hash((self.assignment, self.communication_bytes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionResult(assignment={self.assignment!r}, "
            f"communication_bytes={self.communication_bytes!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionResult({self.assignment}, "
            f"{self.communication_bytes / 1e9:.3f} GB)"
        )


class LevelResult(_LazyBreakdown):
    """One hierarchy level of a hierarchical partition.

    ``communication_bytes`` is the traffic crossing *one* pair boundary at
    this level; ``num_pairs`` is how many such pair boundaries exist
    (``2**level``), so the level's total contribution is their product.
    """

    __slots__ = ("level", "assignment", "communication_bytes", "num_pairs")

    def __init__(
        self,
        level: int,
        assignment: LayerAssignment,
        communication_bytes: float,
        num_pairs: int,
        breakdown: tuple[LayerCommunication, ...] | None = None,
        breakdown_factory: BreakdownFactory | None = None,
    ) -> None:
        self.level = level
        self.assignment = assignment
        self.communication_bytes = communication_bytes
        self.num_pairs = num_pairs
        self._init_breakdown(breakdown, breakdown_factory)

    @property
    def total_bytes(self) -> float:
        """Traffic summed over all pair boundaries at this level."""
        return self.communication_bytes * self.num_pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LevelResult):
            return NotImplemented
        return (
            self.level == other.level
            and self.assignment == other.assignment
            and self.communication_bytes == other.communication_bytes
            and self.num_pairs == other.num_pairs
            and self.breakdown == other.breakdown
        )

    def __hash__(self) -> int:
        return hash((self.level, self.assignment, self.communication_bytes, self.num_pairs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LevelResult(level={self.level!r}, assignment={self.assignment!r}, "
            f"communication_bytes={self.communication_bytes!r}, "
            f"num_pairs={self.num_pairs!r})"
        )


class HierarchicalResult:
    """Outcome of Algorithm 2 (hierarchical partition of the whole array)."""

    __slots__ = ("model_name", "batch_size", "assignment", "levels")

    def __init__(
        self,
        model_name: str,
        batch_size: int,
        assignment: HierarchicalAssignment,
        levels: tuple[LevelResult, ...],
    ) -> None:
        if len(levels) != assignment.num_levels:
            raise ValueError("levels and assignment disagree on the number of levels")
        self.model_name = model_name
        self.batch_size = batch_size
        self.assignment = assignment
        self.levels = tuple(levels)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_accelerators(self) -> int:
        return 1 << self.num_levels

    @property
    def total_communication_bytes(self) -> float:
        """Total traffic across every pair boundary of every level, per step."""
        return sum(level.total_bytes for level in self.levels)

    def level_bytes(self) -> list[float]:
        """Per-level total traffic (index 0 = topmost level H1)."""
        return [level.total_bytes for level in self.levels]

    def describe(self) -> str:
        """Multi-line human-readable description (mirrors Figure 5's content)."""
        lines = [
            f"{self.model_name}: {self.num_accelerators} accelerators, "
            f"batch {self.batch_size}, "
            f"total communication {self.total_communication_bytes / 1e9:.3f} GB/step"
        ]
        layer_names = [record.layer_name for record in self.levels[0].breakdown]
        header = "  layer        " + "  ".join(
            f"H{level.level + 1}" for level in self.levels
        )
        lines.append(header)
        for layer_index, name in enumerate(layer_names):
            choices = "  ".join(
                level.assignment[layer_index].short for level in self.levels
            )
            lines.append(f"  {name:<12s} {choices}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchicalResult):
            return NotImplemented
        return (
            self.model_name == other.model_name
            and self.batch_size == other.batch_size
            and self.assignment == other.assignment
            and self.levels == other.levels
        )

    def __hash__(self) -> int:
        return hash((self.model_name, self.batch_size, self.assignment))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalResult(model_name={self.model_name!r}, "
            f"batch_size={self.batch_size!r}, levels={self.num_levels})"
        )


def summarize_levels(levels: Sequence[LevelResult]) -> dict:
    """Small helper used by reports: per-level and total traffic in GB."""
    return {
        "per_level_gb": [level.total_bytes / 1e9 for level in levels],
        "total_gb": sum(level.total_bytes for level in levels) / 1e9,
    }
