"""Per-layer tensor accounting.

The communication model operates on the *amounts* (element counts) of the
tensors involved in one training step of one weighted layer:

* ``A(F_l)``   -- the layer's input feature map (batch x input slice),
* ``A(F_{l+1})`` -- the layer's output feature map (batch x output slice),
* ``A(W_l)``   -- the kernel,
* ``A(dW_l)``  -- the gradient (same amount as the kernel),
* ``A(E_l)``, ``A(E_{l+1})`` -- the errors (same amounts as the feature maps).

:class:`LayerTensors` captures these amounts for one layer of one model at
one hierarchy level, and :class:`TensorScale` captures how the amounts
shrink as the accelerator array is recursively halved by the hierarchical
partition (Section 4.2).

Scaling rules
-------------
When a parent hierarchy level assigns a layer

* *data parallelism*, each child group receives half the batch for that
  layer, so the feature-map and error amounts halve while the kernel and
  gradient amounts are unchanged (every group keeps a full kernel copy);
* *model parallelism*, each child group receives half the kernel (split
  along the output-channel dimension), so the kernel, gradient and
  *output*-side feature/error amounts halve while the input-side amounts
  are unchanged.

These rules mirror exactly which tensors each accelerator holds in
Figure 1 of the paper.  A ``uniform`` mode (the batch fraction halves each
level regardless of the choice, so batch-proportional amounts -- feature
maps, errors and MACs -- halve while the kernel/gradient amounts stay
whole) and a ``none`` mode (the paper's literal pseudocode, amounts
identical at every level) are provided for the ablation study described in
DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Sequence

from repro.core.parallelism import LayerAssignment, Parallelism
from repro.nn.model import DNNModel, WeightedLayer

#: Bytes per scalar for the 32-bit floating-point precision used in the paper.
BYTES_PER_ELEMENT = 4


class ScalingMode(enum.Enum):
    """How tensor amounts shrink when descending one hierarchy level."""

    #: dp halves feature/error amounts, mp halves kernel/gradient and
    #: output-side amounts (default; matches the tensor holdings of Fig. 1).
    PARALLELISM_AWARE = "parallelism-aware"
    #: The batch fraction halves at every level regardless of the choice
    #: made, so the batch-proportional amounts (feature maps, errors, MACs)
    #: halve while the kernel and gradient amounts stay whole.
    UNIFORM = "uniform"
    #: Amounts are identical at every level (the literal Algorithm 2 pseudocode).
    NONE = "none"

    @classmethod
    def parse(cls, value: "ScalingMode | str") -> "ScalingMode":
        if isinstance(value, ScalingMode):
            return value
        normalized = value.strip().lower().replace("_", "-")
        for mode in cls:
            if mode.value == normalized:
                return mode
        raise ValueError(f"unknown scaling mode {value!r}")


@dataclasses.dataclass(frozen=True)
class TensorScale:
    """Fractions of a layer's tensors held by one accelerator group.

    ``batch_fraction`` scales everything proportional to the batch (feature
    maps and errors); ``weight_fraction`` scales everything proportional to
    the layer's output channels (kernel, gradient, and the output-side
    feature/error tensors).
    """

    batch_fraction: float = 1.0
    weight_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in ("batch_fraction", "weight_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"TensorScale.{name} must be in (0, 1], got {value}")

    def descend(self, choice: Parallelism, mode: ScalingMode) -> "TensorScale":
        """Scale for a child group after the parent chose ``choice`` for this layer.

        Dispatches to the strategy registry: dp halves the batch fraction,
        mp the weight fraction, and stage-local strategies (pp) leave both
        unchanged -- the owning group keeps the whole layer, and the next
        level repartitions it within that group's sub-array.
        """
        from repro.core.strategies import BATCH, WEIGHT, strategy_spec

        if mode is ScalingMode.NONE:
            return self
        if mode is ScalingMode.UNIFORM:
            # Choice-independent descent: halve the batch fraction only, so
            # feature maps, errors and MACs halve at every level while the
            # kernel (and gradient) stay whole -- every group always holds a
            # full kernel copy under uniform scaling.
            return TensorScale(self.batch_fraction * 0.5, self.weight_fraction)
        halves = strategy_spec(choice).halves
        if halves == BATCH:
            return TensorScale(self.batch_fraction * 0.5, self.weight_fraction)
        if halves == WEIGHT:
            return TensorScale(self.batch_fraction, self.weight_fraction * 0.5)
        return self


@dataclasses.dataclass(frozen=True)
class LayerTensors:
    """Element counts of the tensors of one weighted layer for one group.

    All amounts are *element* counts; multiply by
    :data:`BYTES_PER_ELEMENT` to get bytes.
    """

    layer_index: int
    layer_name: str
    is_conv: bool
    #: A(F_l): input feature map for the whole (scaled) batch.
    feature_in: float
    #: A(F_{l+1}): output feature map (before pooling) for the whole batch.
    feature_out: float
    #: A(W_l) == A(dW_l): kernel / gradient element count.
    weight: float
    #: Forward-pass MACs for the group's share of the batch.
    macs: float

    @property
    def error_in(self) -> float:
        """A(E_l): errors have the same amount as the input feature map."""
        return self.feature_in

    @property
    def error_out(self) -> float:
        """A(E_{l+1}): errors have the same amount as the output feature map."""
        return self.feature_out

    @property
    def gradient(self) -> float:
        """A(dW_l): the gradient has the same amount as the kernel."""
        return self.weight


def layer_tensors(
    layer: WeightedLayer,
    batch_size: int,
    scale: TensorScale | None = None,
) -> LayerTensors:
    """Tensor amounts for one weighted layer at a given (scaled) batch size."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    scale = scale or TensorScale()
    effective_batch = batch_size * scale.batch_fraction
    return LayerTensors(
        layer_index=layer.index,
        layer_name=layer.name,
        is_conv=layer.is_conv,
        feature_in=effective_batch * layer.input_shape.elements,
        feature_out=effective_batch * layer.output_shape.elements * scale.weight_fraction,
        weight=layer.weight_count * scale.weight_fraction,
        macs=effective_batch * layer.macs_per_sample * scale.weight_fraction,
    )


def model_tensors(
    model: DNNModel,
    batch_size: int,
    scales: Sequence[TensorScale] | None = None,
) -> list[LayerTensors]:
    """Tensor amounts for every weighted layer of ``model``.

    ``scales`` optionally provides one :class:`TensorScale` per layer (for
    hierarchical partitioning); by default every layer is unscaled.
    """
    if scales is None:
        scales = [TensorScale()] * len(model)
    if len(scales) != len(model):
        raise ValueError(
            f"expected {len(model)} scales, got {len(scales)}"
        )
    return [
        layer_tensors(layer, batch_size, scale)
        for layer, scale in zip(model, scales)
    ]


def descend_scales(
    scales: Sequence[TensorScale],
    assignment: LayerAssignment,
    mode: ScalingMode = ScalingMode.PARALLELISM_AWARE,
) -> list[TensorScale]:
    """Per-layer scales for a child group given the parent level's assignment."""
    if len(scales) != assignment.num_layers:
        raise ValueError(
            f"expected {assignment.num_layers} scales, got {len(scales)}"
        )
    return [
        scale.descend(choice, mode) for scale, choice in zip(scales, assignment)
    ]


def initial_scales(num_layers: int) -> list[TensorScale]:
    """Unscaled (whole-array) tensor scales for ``num_layers`` layers."""
    if num_layers <= 0:
        raise ValueError(f"num_layers must be positive, got {num_layers}")
    return [TensorScale()] * num_layers


def elements_to_bytes(elements: float, bytes_per_element: int = BYTES_PER_ELEMENT) -> float:
    """Convert an element count to bytes at the given precision."""
    if bytes_per_element <= 0:
        raise ValueError(f"bytes_per_element must be positive, got {bytes_per_element}")
    return elements * bytes_per_element
