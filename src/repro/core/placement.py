"""Tensor placement: which slice of every tensor each accelerator holds.

The partition algorithms decide *how* each layer is split at each hierarchy
level; this module materialises that decision into concrete shards,
following the tensor layouts of Figure 1 of the paper:

* under **data parallelism** a layer's feature maps and errors are split
  along the batch dimension and its kernel (and gradient) is replicated;
* under **model parallelism** the kernel is split along its *input*
  dimension (rows of the weight matrix, input channels of a convolution),
  the layer's input feature map and input error are split along the same
  feature dimension, and every accelerator produces partial sums of the
  *full* output feature map, which it keeps after the partial-sum exchange;
* under **pipeline parallelism** the layer is *stage-local*: one group of
  the pair owns the whole layer (full kernel, full batch) and the other
  group holds nothing of it.  Consecutive pipeline layers alternate owner
  groups, forming adjacent pipeline stages.

For accelerator ``a`` and layer ``l`` the shard is therefore described by
two half-open fractional intervals:

* ``batch_interval`` -- the fraction of the mini-batch accelerator ``a``
  processes for layer ``l``;
* ``weight_interval`` -- the fraction of the kernel's input dimension (and
  of the layer's input features) accelerator ``a`` stores.

Descending one hierarchy level halves exactly one of the two intervals,
depending on the level's parallelism choice for that layer; which half an
accelerator keeps is determined by the corresponding bit of its index (the
binary-tree numbering of Figure 3).  Placement is purely per-layer, so it
applies unchanged to branching (DAG) models: a merge layer's input
interval describes its share of the *merged* input features (taken
per-branch for CONCAT merges, see :mod:`repro.core.execution`), and
pipeline stage alternation follows the layer order of the topological
linearization.

The module also derives per-accelerator memory footprints and replication
factors (kernels are replicated across data-parallel halvings, output
feature maps across model-parallel halvings), which the tests use to verify
that every layer's tensors are tiled exactly and in a balanced way.
"""

from __future__ import annotations

import dataclasses

from repro.core.parallelism import HierarchicalAssignment, Parallelism
from repro.core.tensors import BYTES_PER_ELEMENT
from repro.nn.model import DNNModel


@dataclasses.dataclass(frozen=True)
class Interval:
    """A half-open fractional interval ``[start, stop)`` within ``[0, 1]``."""

    start: float = 0.0
    stop: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.stop <= 1.0:
            raise ValueError(f"invalid interval [{self.start}, {self.stop})")

    @property
    def length(self) -> float:
        return self.stop - self.start

    def halve(self, keep_upper: bool) -> "Interval":
        """Return the lower or upper half of this interval."""
        middle = (self.start + self.stop) / 2.0
        if keep_upper:
            return Interval(middle, self.stop)
        return Interval(self.start, middle)

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def slice_of(self, total: int) -> slice:
        """The concrete index slice of a ``total``-element axis."""
        start = int(round(self.start * total))
        stop = int(round(self.stop * total))
        return slice(start, stop)

    def elements(self, total: int) -> float:
        """Number of elements of a ``total``-element axis inside this interval."""
        return total * self.length


@dataclasses.dataclass(frozen=True)
class LayerShard:
    """The portion of one layer's tensors held by one accelerator.

    The fractions follow Figure 1's layouts:

    * the kernel/gradient shard is ``weight_interval`` of the input rows;
    * the input feature map / input error shard is ``batch_interval`` of the
      batch crossed with ``weight_interval`` of the features;
    * the output feature map / output error shard is ``batch_interval`` of
      the batch with the full feature dimension (every accelerator ends up
      with the reduced output for its share of the batch).

    ``owned`` reflects stage-local (pipeline) levels: an accelerator that
    falls outside a pipeline layer's owner group at any level holds nothing
    of that layer, so every fraction collapses to zero.
    """

    accelerator: int
    layer_index: int
    layer_name: str
    batch_interval: Interval
    weight_interval: Interval
    owned: bool = True

    def weight_fraction(self) -> float:
        """Fraction of the kernel (and gradient) tensor held locally."""
        if not self.owned:
            return 0.0
        return self.weight_interval.length

    def feature_in_fraction(self) -> float:
        """Fraction of the input feature map (and input error) held locally."""
        if not self.owned:
            return 0.0
        return self.batch_interval.length * self.weight_interval.length

    def feature_out_fraction(self) -> float:
        """Fraction of the output feature map (and output error) held locally."""
        if not self.owned:
            return 0.0
        return self.batch_interval.length


@dataclasses.dataclass(frozen=True)
class AcceleratorFootprint:
    """Per-accelerator storage requirement for one training step (bytes)."""

    accelerator: int
    weight_bytes: float
    gradient_bytes: float
    activation_bytes: float
    error_bytes: float

    @property
    def total_bytes(self) -> float:
        return (
            self.weight_bytes
            + self.gradient_bytes
            + self.activation_bytes
            + self.error_bytes
        )


class TensorPlacement:
    """Shards of every layer's tensors across an accelerator array.

    Parameters
    ----------
    model:
        The network whose tensors are being placed.
    assignment:
        A hierarchical parallelism assignment with ``H`` levels; the array
        holds ``2**H`` accelerators.
    """

    def __init__(self, model: DNNModel, assignment: HierarchicalAssignment) -> None:
        if assignment.num_layers != len(model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model {model.name!r} has {len(model)}"
            )
        self.model = model
        self.assignment = assignment
        self.num_levels = assignment.num_levels
        self.num_accelerators = assignment.num_accelerators
        self._shards = self._build()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build(self) -> dict[tuple[int, int], LayerShard]:
        # Owner side of every stage-local (pipeline) position: the k-th
        # pipeline layer of a level (in layer order) lives on the upper
        # group when ``k`` is odd, so consecutive pipeline layers form
        # adjacent stages on opposite groups -- the alternation the
        # communication model's pp→pp transition cost assumes.
        pipeline_owner_upper: dict[tuple[int, int], bool] = {}
        for level in range(self.num_levels):
            ordinal = 0
            for layer in self.model:
                if self.assignment.choice(level, layer.index) is Parallelism.PIPELINE:
                    pipeline_owner_upper[(level, layer.index)] = bool(ordinal % 2)
                    ordinal += 1

        shards: dict[tuple[int, int], LayerShard] = {}
        for accelerator in range(self.num_accelerators):
            for layer in self.model:
                batch = Interval()
                weight = Interval()
                owned = True
                for level in range(self.num_levels):
                    # Bit ``level`` of the accelerator index (most significant
                    # first) says whether the accelerator falls in the left or
                    # right group of that level's halving -- the binary-tree
                    # numbering of Figure 3.
                    keep_upper = bool(
                        (accelerator >> (self.num_levels - 1 - level)) & 1
                    )
                    choice = self.assignment.choice(level, layer.index)
                    if choice is Parallelism.DATA:
                        batch = batch.halve(keep_upper)
                    elif choice is Parallelism.MODEL:
                        weight = weight.halve(keep_upper)
                    else:
                        # Stage-local: the layer stays whole, but only on
                        # the owner side of this level's halving.
                        owner_upper = pipeline_owner_upper[(level, layer.index)]
                        owned = owned and (keep_upper == owner_upper)
                shards[(accelerator, layer.index)] = LayerShard(
                    accelerator=accelerator,
                    layer_index=layer.index,
                    layer_name=layer.name,
                    batch_interval=batch,
                    weight_interval=weight,
                    owned=owned,
                )
        return shards

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------

    def _layer_index(self, layer: int | str) -> int:
        if isinstance(layer, str):
            return self.model.layer_by_name(layer).index
        return layer

    def shard(self, accelerator: int, layer: int | str) -> LayerShard:
        """The shard of ``layer`` held by ``accelerator``."""
        if not 0 <= accelerator < self.num_accelerators:
            raise ValueError(f"accelerator index {accelerator} out of range")
        return self._shards[(accelerator, self._layer_index(layer))]

    def layer_shards(self, layer: int | str) -> list[LayerShard]:
        """All accelerators' shards of one layer."""
        index = self._layer_index(layer)
        return [self.shard(accelerator, index) for accelerator in range(self.num_accelerators)]

    def accelerator_shards(self, accelerator: int) -> list[LayerShard]:
        """One accelerator's shards of every layer."""
        return [self.shard(accelerator, layer.index) for layer in self.model]

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------

    def weight_replication_factor(self, layer: int | str) -> float:
        """How many copies of the layer's kernel exist across the array.

        Pure model parallelism yields 1 (each accelerator holds a distinct
        slice); every data-parallel level doubles the replication.
        """
        return sum(shard.weight_fraction() for shard in self.layer_shards(layer))

    def feature_out_replication_factor(self, layer: int | str) -> float:
        """How many copies of the layer's output feature map exist across the array.

        Pure data parallelism yields 1 (disjoint batch slices); every
        model-parallel level doubles the replication because both halves end
        up holding the reduced output for their common batch share.
        """
        return sum(shard.feature_out_fraction() for shard in self.layer_shards(layer))

    def memory_footprint(
        self, batch_size: int, bytes_per_element: int = BYTES_PER_ELEMENT
    ) -> list[AcceleratorFootprint]:
        """Per-accelerator storage for weights, gradients, activations and errors.

        Activations (the output feature maps of every layer) are assumed to
        be kept for the whole step because the backward pass needs them --
        the usual training memory model.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        footprints = []
        for accelerator in range(self.num_accelerators):
            weight_elements = 0.0
            activation_elements = 0.0
            for layer in self.model:
                shard = self.shard(accelerator, layer.index)
                weight_elements += layer.weight_count * shard.weight_fraction()
                activation_elements += (
                    batch_size * layer.output_shape.elements * shard.feature_out_fraction()
                )
            footprints.append(
                AcceleratorFootprint(
                    accelerator=accelerator,
                    weight_bytes=weight_elements * bytes_per_element,
                    gradient_bytes=weight_elements * bytes_per_element,
                    activation_bytes=activation_elements * bytes_per_element,
                    error_bytes=activation_elements * bytes_per_element,
                )
            )
        return footprints

    def max_memory_footprint_bytes(self, batch_size: int) -> float:
        """The largest per-accelerator footprint (bytes) -- the capacity that matters."""
        return max(f.total_bytes for f in self.memory_footprint(batch_size))

    def fits_in_memory(self, batch_size: int, capacity_bytes: float) -> bool:
        """Whether every accelerator's shard fits in ``capacity_bytes`` of local DRAM."""
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        return self.max_memory_footprint_bytes(batch_size) <= capacity_bytes

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by the tests).
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural sanity checks on the placement.

        * all *owning* shards of a layer hold the same fraction of work
          (balance); accelerators outside a pipeline layer's stage hold
          nothing of it by construction;
        * the kernel slices of the accelerators tile the kernel exactly
          ``weight_replication_factor`` times;
        * the (batch x input-feature) rectangles of any two owning
          accelerators are either identical or non-overlapping when their
          kernel slices overlap (no tensor element is stored twice within
          one replica).

        Raises ``ValueError`` on the first violated property.
        """
        for layer in self.model:
            shards = self.layer_shards(layer.index)
            owners = [s for s in shards if s.owned]
            if not owners:
                raise ValueError(f"layer {layer.name!r} has no owning accelerator")
            fractions = {
                round(s.batch_interval.length * s.weight_interval.length, 12)
                for s in owners
            }
            if len(fractions) != 1:
                raise ValueError(
                    f"unbalanced shards for layer {layer.name!r}: {sorted(fractions)}"
                )
            weight_total = sum(s.weight_fraction() for s in shards)
            replication = self.weight_replication_factor(layer.index)
            if abs(weight_total - replication) > 1e-9:
                raise ValueError(f"inconsistent kernel coverage for {layer.name!r}")
            for a in owners:
                for b in owners:
                    if a.accelerator >= b.accelerator:
                        continue
                    same_rectangle = (
                        a.batch_interval == b.batch_interval
                        and a.weight_interval == b.weight_interval
                    )
                    disjoint = not a.batch_interval.overlaps(
                        b.batch_interval
                    ) or not a.weight_interval.overlaps(b.weight_interval)
                    if not (same_rectangle or disjoint):
                        raise ValueError(
                            f"partially overlapping shards for layer {layer.name!r}: "
                            f"accelerators {a.accelerator} and {b.accelerator}"
                        )


def placement_summary(placement: TensorPlacement, batch_size: int) -> str:
    """Human-readable summary of a placement (used by the CLI and examples)."""
    lines = [
        f"{placement.model.name}: {placement.num_accelerators} accelerators, "
        f"batch {batch_size}"
    ]
    footprints = placement.memory_footprint(batch_size)
    worst = max(footprints, key=lambda f: f.total_bytes)
    lines.append(
        f"  max per-accelerator footprint: {worst.total_bytes / 2**30:.3f} GiB "
        f"(accelerator {worst.accelerator})"
    )
    for layer in placement.model:
        weight_rep = placement.weight_replication_factor(layer.index)
        feature_rep = placement.feature_out_replication_factor(layer.index)
        lines.append(
            f"  {layer.name:<12s} kernel replicated {weight_rep:4.1f}x, "
            f"output feature map replicated {feature_rep:4.1f}x"
        )
    return "\n".join(lines)
