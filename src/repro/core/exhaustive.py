"""Exhaustive and restricted enumeration of the parallelism space.

Section 3.4 of the paper notes that brute-force enumeration over a whole
network costs ``O(2^N)`` per hierarchy level and is infeasible in general;
HyPar's dynamic program exists precisely to avoid it.  We still implement
the enumeration because

* on small networks it *is* feasible, and it certifies that the dynamic
  program returns a true optimum (used heavily by the test suite);
* the paper's Figures 9 and 10 are restricted enumerations (some layers or
  levels held fixed while others sweep), which
  :func:`enumerate_restricted` reproduces.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.communication import CommunicationModel
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.result import HierarchicalResult, PartitionResult
from repro.core.tensors import LayerTensors
from repro.nn.model import DNNModel

#: Enumerating more than this many assignments is almost certainly a bug in
#: the caller (the full space for VGG-E at four levels is 2**76).
DEFAULT_MAX_CANDIDATES = 1 << 22


class SearchSpaceTooLarge(ValueError):
    """Raised when an enumeration would exceed the configured candidate limit."""


def all_layer_assignments(num_layers: int) -> Iterator[LayerAssignment]:
    """Yield every per-layer assignment for one hierarchy level (2^L of them)."""
    if num_layers <= 0:
        raise ValueError(f"num_layers must be positive, got {num_layers}")
    for bits in range(1 << num_layers):
        yield LayerAssignment.from_bits(bits, num_layers)


def exhaustive_two_way(
    tensors: Sequence[LayerTensors],
    communication_model: CommunicationModel | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> PartitionResult:
    """Brute-force optimum for a single hierarchy level.

    Returns the same kind of :class:`PartitionResult` as the dynamic
    program, so the two can be compared directly.
    """
    num_layers = len(tensors)
    if (1 << num_layers) > max_candidates:
        raise SearchSpaceTooLarge(
            f"2^{num_layers} assignments exceed the limit of {max_candidates}"
        )
    partitioner = TwoWayPartitioner(communication_model)
    best: PartitionResult | None = None
    for assignment in all_layer_assignments(num_layers):
        candidate = partitioner.evaluate(tensors, assignment)
        if best is None or candidate.communication_bytes < best.communication_bytes:
            best = candidate
    assert best is not None  # num_layers >= 1 guarantees at least one candidate
    return best


def exhaustive_hierarchical(
    model: DNNModel,
    batch_size: int,
    num_levels: int,
    partitioner: HierarchicalPartitioner | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> HierarchicalResult:
    """Brute-force optimum over the full ``2^(H*L)`` hierarchical space.

    Only feasible for small models / few levels; used to validate the
    greedy-per-level structure of Algorithm 2 on toy cases.
    """
    partitioner = partitioner or HierarchicalPartitioner(num_levels=num_levels)
    if partitioner.num_levels != num_levels:
        raise ValueError("partitioner and num_levels disagree")
    num_layers = len(model)
    total_bits = num_levels * num_layers
    if (1 << total_bits) > max_candidates:
        raise SearchSpaceTooLarge(
            f"2^{total_bits} hierarchical assignments exceed the limit of {max_candidates}"
        )

    best: HierarchicalResult | None = None
    level_space = list(all_layer_assignments(num_layers))
    for combo in itertools.product(level_space, repeat=num_levels):
        assignment = HierarchicalAssignment(tuple(combo))
        candidate = partitioner.evaluate(model, assignment, batch_size)
        if (
            best is None
            or candidate.total_communication_bytes < best.total_communication_bytes
        ):
            best = candidate
    assert best is not None
    return best


def enumerate_restricted(
    model: DNNModel,
    batch_size: int,
    base_assignment: HierarchicalAssignment,
    free_positions: Iterable[tuple[int, int]],
    evaluator: Callable[[HierarchicalAssignment], float],
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> list[tuple[HierarchicalAssignment, float]]:
    """Sweep a restricted subset of (level, layer) positions.

    This is the machinery behind the paper's Figures 9 and 10: all positions
    of ``base_assignment`` stay fixed except the ``free_positions``, which
    enumerate every dp/mp combination.  ``evaluator`` maps an assignment to
    the objective being plotted (communication, simulated time, ...); the
    returned list preserves enumeration order (bit patterns over the free
    positions, least-significant position first).
    """
    free = list(free_positions)
    if not free:
        raise ValueError("free_positions must contain at least one position")
    if (1 << len(free)) > max_candidates:
        raise SearchSpaceTooLarge(
            f"2^{len(free)} candidates exceed the limit of {max_candidates}"
        )
    for level, layer in free:
        if not 0 <= level < base_assignment.num_levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= layer < len(model):
            raise ValueError(f"layer {layer} out of range")

    results: list[tuple[HierarchicalAssignment, float]] = []
    for bits in range(1 << len(free)):
        assignment = base_assignment
        for position, (level, layer) in enumerate(free):
            choice = Parallelism.from_bit((bits >> position) & 1)
            level_assignment = list(assignment[level].choices)
            level_assignment[layer] = choice
            assignment = assignment.replace_level(
                level, LayerAssignment(tuple(level_assignment))
            )
        results.append((assignment, evaluator(assignment)))
    return results
