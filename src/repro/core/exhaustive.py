"""Exhaustive and restricted enumeration of the parallelism space.

Section 3.4 of the paper notes that brute-force enumeration over a whole
network costs ``O(2^N)`` per hierarchy level and is infeasible in general;
HyPar's dynamic program exists precisely to avoid it.  We still implement
the enumeration because

* on small networks it *is* feasible, and it certifies that the dynamic
  program returns a true optimum (used heavily by the test suite);
* the paper's Figures 9 and 10 are restricted enumerations (some layers or
  levels held fixed while others sweep), which
  :func:`enumerate_restricted` reproduces.

The enumerations are *vectorized*: candidates are scored as base-``K``
digit-patterns over a :class:`~repro.core.parallelism.StrategySpace`
(``K = 2`` dp/mp by default) against a compiled
:class:`~repro.core.costs.CostTable` /
:class:`~repro.core.costs.HierarchicalCostTable` in batched NumPy
operations, and ``PartitionResult`` / breakdown objects are materialized
only for the winning candidate.  The original per-candidate object loops
are kept as ``*_reference`` oracles; the vectorized paths agree with them
bit-exactly (same optimum bytes, same first-minimum tie resolution over the
enumeration order).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable, HierarchicalCostTable, _resolve_chunk_size
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.result import HierarchicalResult, PartitionResult
from repro.core.tensors import LayerTensors
from repro.nn.model import DNNModel

#: Enumerating more than this many assignments is almost certainly a bug in
#: the caller (the full space for VGG-E at four levels is 2**76).
DEFAULT_MAX_CANDIDATES = 1 << 22


class SearchSpaceTooLarge(ValueError):
    """Raised when an enumeration would exceed the configured candidate limit."""


def all_layer_assignments(
    num_layers: int,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
) -> Iterator[LayerAssignment]:
    """Yield every per-layer assignment for one hierarchy level (``K^L``)."""
    if num_layers <= 0:
        raise ValueError(f"num_layers must be positive, got {num_layers}")
    space = StrategySpace.parse(strategies)
    for codes in range(space.num_assignments(num_layers)):
        yield LayerAssignment.from_codes(codes, num_layers, space)


def exhaustive_two_way(
    tensors: Sequence[LayerTensors],
    communication_model: CommunicationModel | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
    edges: Sequence[tuple[int, int]] | None = None,
    chunk_size: int | None = None,
    prune: bool = False,
    backend: str | None = None,
) -> PartitionResult:
    """Brute-force optimum for a single hierarchy level.

    Scores all ``K^L`` digit-patterns in batched NumPy operations against a
    compiled :class:`~repro.core.costs.CostTable`; only the winner (the
    first minimum in digit-pattern order, like the reference scan) is
    materialized into a :class:`PartitionResult`, whose breakdown stays
    lazy.  Returns the same kind of result as the dynamic program, so the
    two can be compared directly.  ``edges`` carries the layer DAG
    (``None`` = chain).

    ``chunk_size`` bounds the per-batch peak memory of the scorer;
    ``prune=True`` turns the scan into branch-and-bound: on chain tables
    the dynamic program's optimum seeds the incumbent (it *is* the
    optimum, so almost every chunk's dominance bound prunes), and chunks
    whose lower bound cannot beat the incumbent are skipped entirely.  The
    returned winner is identical either way -- pruning only skips
    provably-losing work.  ``backend`` selects the table's kernel backend.
    """
    space = StrategySpace.parse(strategies)
    num_layers = len(tensors)
    if space.num_assignments(num_layers) > max_candidates:
        raise SearchSpaceTooLarge(
            f"{space.size}^{num_layers} assignments exceed the limit of {max_candidates}"
        )
    table = CostTable.from_tensors(
        tensors, communication_model, space, edges=edges, backend=backend
    )
    upper_bound = None
    if prune:
        # Algorithm 1 / the cut-vertex program already yields the true
        # optimum total; as a branch-and-bound incumbent it lets the
        # dominance bound discard every chunk that cannot tie it.  The
        # safety margin inside the pruned scan keeps first-minimum tie
        # resolution identical to the plain scan.
        upper_bound = table.dp_partition().communication_bytes
    best_codes, best_total = table.argmin_assignment(
        chunk_size=chunk_size, prune=prune, upper_bound=upper_bound
    )
    return table.lazy_result(
        LayerAssignment.from_codes(best_codes, num_layers, space), best_total
    )


def exhaustive_two_way_reference(
    tensors: Sequence[LayerTensors],
    communication_model: CommunicationModel | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
    edges: Sequence[tuple[int, int]] | None = None,
) -> PartitionResult:
    """Object-based per-candidate scan: the oracle for :func:`exhaustive_two_way`."""
    space = StrategySpace.parse(strategies)
    num_layers = len(tensors)
    if space.num_assignments(num_layers) > max_candidates:
        raise SearchSpaceTooLarge(
            f"{space.size}^{num_layers} assignments exceed the limit of {max_candidates}"
        )
    partitioner = TwoWayPartitioner(communication_model, space)
    best: PartitionResult | None = None
    for assignment in all_layer_assignments(num_layers, space):
        candidate = partitioner.evaluate(tensors, assignment, edges=edges)
        if best is None or candidate.communication_bytes < best.communication_bytes:
            best = candidate
    assert best is not None  # num_layers >= 1 guarantees at least one candidate
    return best


def exhaustive_hierarchical(
    model: DNNModel,
    batch_size: int,
    num_levels: int,
    partitioner: HierarchicalPartitioner | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> HierarchicalResult:
    """Brute-force optimum over the full ``K^(H*L)`` hierarchical space.

    Only feasible for small models / few levels; used to validate the
    greedy-per-level structure of Algorithm 2 on toy cases.  All candidates
    are scored as digit-patterns against a
    :class:`~repro.core.costs.HierarchicalCostTable` (enumerated in the same
    order as ``itertools.product`` over per-level assignments, so ties pick
    the same winner as the reference loop); only the winner is materialized
    into a full :class:`HierarchicalResult`.  The strategy space is the
    partitioner's.
    """
    partitioner = partitioner or HierarchicalPartitioner(num_levels=num_levels)
    if partitioner.num_levels != num_levels:
        raise ValueError("partitioner and num_levels disagree")
    num_layers = len(model)
    space = partitioner.strategies
    total_candidates = space.size ** (num_levels * num_layers)
    if total_candidates > max_candidates:
        raise SearchSpaceTooLarge(
            f"{space.size}^{num_levels * num_layers} hierarchical assignments "
            f"exceed the limit of {max_candidates}"
        )
    table = partitioner.compile_table(model, batch_size)
    best_codes, _ = table.argmin_assignment()
    return partitioner.evaluate(
        model, table.codes_to_assignment(best_codes), batch_size, table=table
    )


def exhaustive_hierarchical_reference(
    model: DNNModel,
    batch_size: int,
    num_levels: int,
    partitioner: HierarchicalPartitioner | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> HierarchicalResult:
    """Object-based scan of the hierarchical space: the vectorized oracle."""
    partitioner = partitioner or HierarchicalPartitioner(num_levels=num_levels)
    if partitioner.num_levels != num_levels:
        raise ValueError("partitioner and num_levels disagree")
    num_layers = len(model)
    space = partitioner.strategies
    total_candidates = space.size ** (num_levels * num_layers)
    if total_candidates > max_candidates:
        raise SearchSpaceTooLarge(
            f"{space.size}^{num_levels * num_layers} hierarchical assignments "
            f"exceed the limit of {max_candidates}"
        )

    best: HierarchicalResult | None = None
    level_space = list(all_layer_assignments(num_layers, space))
    for combo in itertools.product(level_space, repeat=num_levels):
        assignment = HierarchicalAssignment(tuple(combo))
        candidate = partitioner.evaluate(model, assignment, batch_size)
        if (
            best is None
            or candidate.total_communication_bytes < best.total_communication_bytes
        ):
            best = candidate
    assert best is not None
    return best


def restricted_assignment(
    base_assignment: HierarchicalAssignment,
    free_positions: Sequence[tuple[int, int]],
    codes: int,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
) -> HierarchicalAssignment:
    """The assignment of one restricted-sweep candidate.

    ``codes`` follows the sweep encoding: base-``K`` digit ``i`` (least
    significant first) holds the strategy choice of ``free_positions[i]``;
    every other position keeps the base assignment's value.
    """
    space = StrategySpace.parse(strategies)
    levels = [list(level.choices) for level in base_assignment]
    for position, (level, layer) in enumerate(free_positions):
        digit = (codes // space.size ** position) % space.size
        levels[level][layer] = space.members[digit]
    return HierarchicalAssignment(
        tuple(LayerAssignment(tuple(choices)) for choices in levels)
    )


def check_free_positions(
    model: DNNModel,
    base_assignment: HierarchicalAssignment,
    free: Sequence[tuple[int, int]],
    max_candidates: int,
    space: StrategySpace,
) -> None:
    """Validate the free positions of a restricted sweep.

    Shared by :func:`enumerate_restricted`, its vectorized counterpart and
    the Figures 9/10 explorer, so the candidate-count limit and the index
    range checks cannot drift between them.
    """
    if not free:
        raise ValueError("free_positions must contain at least one position")
    if space.size ** len(free) > max_candidates:
        raise SearchSpaceTooLarge(
            f"{space.size}^{len(free)} candidates exceed the limit of {max_candidates}"
        )
    for level, layer in free:
        if not 0 <= level < base_assignment.num_levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= layer < len(model):
            raise ValueError(f"layer {layer} out of range")


def enumerate_restricted(
    model: DNNModel,
    batch_size: int,
    base_assignment: HierarchicalAssignment,
    free_positions: Iterable[tuple[int, int]],
    evaluator: Callable[[HierarchicalAssignment], float],
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
) -> list[tuple[HierarchicalAssignment, float]]:
    """Sweep a restricted subset of (level, layer) positions.

    This is the machinery behind the paper's Figures 9 and 10: all positions
    of ``base_assignment`` stay fixed except the ``free_positions``, which
    enumerate every strategy combination of the space.  ``evaluator`` maps
    an assignment to the objective being plotted (communication, simulated
    time, ...); the returned list preserves enumeration order (digit
    patterns over the free positions, least-significant position first).

    For the pure-communication objective use
    :func:`enumerate_restricted_communication`, which scores every
    candidate in batched NumPy operations instead of calling back into
    Python per point.
    """
    space = StrategySpace.parse(strategies)
    free = list(free_positions)
    check_free_positions(model, base_assignment, free, max_candidates, space)

    results: list[tuple[HierarchicalAssignment, float]] = []
    for codes in range(space.size ** len(free)):
        assignment = restricted_assignment(base_assignment, free, codes, space)
        results.append((assignment, evaluator(assignment)))
    return results


def enumerate_restricted_communication(
    model: DNNModel,
    batch_size: int,
    base_assignment: HierarchicalAssignment,
    free_positions: Iterable[tuple[int, int]],
    table: HierarchicalCostTable | None = None,
    partitioner: HierarchicalPartitioner | None = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Total communication bytes of every candidate of a restricted sweep.

    Vectorized counterpart of :func:`enumerate_restricted` for the
    communication objective: entry ``i`` of the returned array is the total
    traffic (bit-exact with
    ``HierarchicalPartitioner.evaluate(...).total_communication_bytes``) of
    the candidate whose free-position digits encode ``i`` (least
    significant digit = first free position).  No assignment or breakdown
    objects are built; materialize interesting points with
    :func:`restricted_assignment`.

    ``table`` may be passed to reuse a compiled cost table across sweeps;
    otherwise one is compiled from ``partitioner`` (or the default
    four-level configuration).  The sweep's strategy space defaults to the
    table's / partitioner's space.  ``chunk_size`` bounds the candidates
    scored per batch (peak memory); the totals are byte-identical for any
    chunk size.
    """
    free = list(free_positions)
    if table is None:
        partitioner = partitioner or HierarchicalPartitioner(
            num_levels=base_assignment.num_levels,
            strategies=strategies,
        )
        table = partitioner.compile_table(model, batch_size)
    else:
        # A stale table would yield silently wrong totals; validate it like
        # every other table-accepting consumer.  Without a partitioner the
        # table's own scaling/communication configuration is authoritative.
        table.check_compatible(
            model,
            batch_size,
            partitioner.num_levels if partitioner else base_assignment.num_levels,
            partitioner.scaling_mode if partitioner else table.scaling_mode,
            partitioner.communication_model if partitioner else table.communication_model,
            strategies=partitioner.strategies if partitioner else None,
        )
    space = StrategySpace.parse(strategies) if strategies is not None else table.strategies
    if space != table.strategies:
        raise ValueError(
            f"sweep strategy space {space.describe()} does not match the "
            f"table's {table.strategies.describe()}"
        )
    check_free_positions(model, base_assignment, free, max_candidates, space)

    num_candidates = space.size ** len(free)
    chunk_span = _resolve_chunk_size(chunk_size)
    code_of = space.code_of
    base_codes = [
        np.array([code_of(choice) for choice in base_assignment[level]], dtype=np.int64)
        for level in range(base_assignment.num_levels)
    ]
    totals = np.empty(num_candidates, dtype=np.float64)
    for start in range(0, num_candidates, chunk_span):
        chunk = np.arange(start, min(start + chunk_span, num_candidates), dtype=np.int64)
        # Start every level from the base assignment's codes, then overwrite
        # the free positions from the candidate counter.
        decoded = [np.tile(codes, (chunk.shape[0], 1)) for codes in base_codes]
        for position, (level, layer) in enumerate(free):
            if space.size == 2:
                decoded[level][:, layer] = (chunk >> position) & 1
            else:
                decoded[level][:, layer] = (chunk // space.size ** position) % space.size
        totals[start : start + chunk.shape[0]] = table.score_level_codes(decoded)
    return totals
