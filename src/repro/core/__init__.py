"""HyPar's core contribution: the communication model and the partition search.

The package is organised around three ideas from the paper:

1. **Communication model** (:mod:`repro.core.communication`): for a layer
   assigned data or model parallelism, where communication comes from and
   how much of it there is (Tables 1 and 2).
2. **Partition between two accelerator groups**
   (:mod:`repro.core.partitioner`): Algorithm 1, a linear-time dynamic
   program minimising total communication.
3. **Hierarchical partition** (:mod:`repro.core.hierarchical`): Algorithm 2,
   which applies the two-way partition recursively to an array of ``2**H``
   accelerators.

Baselines (default Data/Model Parallelism and "one weird trick"), an
exhaustive-search validator and the result records round out the package.

The hot paths run on the **vectorized cost-table engine**
(:mod:`repro.core.costs`): :class:`CostTable` /
:class:`HierarchicalCostTable` compile the communication model into NumPy
arrays once per (model, batch, scales) and the searches, brute-force
validators and restricted sweeps score whole batches of candidate
bit-patterns against them, materializing breakdown objects lazily for the
winners only.  The object-based path remains in-tree as the bit-exact
oracle (``*_reference`` entry points).
"""

from repro.core.baselines import (
    STRATEGIES,
    data_parallelism,
    get_strategy,
    model_parallelism,
    one_weird_trick,
    pipeline_parallelism,
    random_assignment,
)
from repro.core.communication import (
    PAIR_FACTOR,
    CommunicationModel,
    LayerCommunication,
)
from repro.core.costs import (
    CostTable,
    HierarchicalCostTable,
    compile_cost_table,
)
from repro.core.execution import (
    CommunicationEvent,
    PartitionedStepResult,
    TwoGroupExecutor,
)
from repro.core.exhaustive import (
    SearchSpaceTooLarge,
    all_layer_assignments,
    enumerate_restricted,
    enumerate_restricted_communication,
    exhaustive_hierarchical,
    exhaustive_hierarchical_reference,
    exhaustive_two_way,
    exhaustive_two_way_reference,
    restricted_assignment,
)
from repro.core.hierarchical import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_NUM_LEVELS,
    HierarchicalPartitioner,
)
from repro.core.parallelism import (
    DATA,
    DEFAULT_SPACE,
    FULL_SPACE,
    MODEL,
    PIPELINE,
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.strategies import (
    StrategySpec,
    register_strategy,
    registered_strategies,
    strategy_spec,
)
from repro.core.placement import (
    AcceleratorFootprint,
    Interval,
    LayerShard,
    TensorPlacement,
    placement_summary,
)
from repro.core.result import HierarchicalResult, LevelResult, PartitionResult
from repro.core.tensors import (
    BYTES_PER_ELEMENT,
    LayerTensors,
    ScalingMode,
    TensorScale,
    descend_scales,
    elements_to_bytes,
    initial_scales,
    layer_tensors,
    model_tensors,
)

__all__ = [
    "Parallelism",
    "DATA",
    "MODEL",
    "PIPELINE",
    "StrategySpace",
    "DEFAULT_SPACE",
    "FULL_SPACE",
    "StrategySpec",
    "register_strategy",
    "registered_strategies",
    "strategy_spec",
    "LayerAssignment",
    "HierarchicalAssignment",
    "CommunicationModel",
    "LayerCommunication",
    "PAIR_FACTOR",
    "BYTES_PER_ELEMENT",
    "LayerTensors",
    "TensorScale",
    "ScalingMode",
    "layer_tensors",
    "model_tensors",
    "descend_scales",
    "initial_scales",
    "elements_to_bytes",
    "TwoWayPartitioner",
    "HierarchicalPartitioner",
    "DEFAULT_NUM_LEVELS",
    "DEFAULT_BATCH_SIZE",
    "PartitionResult",
    "LevelResult",
    "HierarchicalResult",
    "data_parallelism",
    "model_parallelism",
    "one_weird_trick",
    "pipeline_parallelism",
    "random_assignment",
    "get_strategy",
    "STRATEGIES",
    "all_layer_assignments",
    "exhaustive_two_way",
    "exhaustive_two_way_reference",
    "exhaustive_hierarchical",
    "exhaustive_hierarchical_reference",
    "enumerate_restricted",
    "enumerate_restricted_communication",
    "restricted_assignment",
    "SearchSpaceTooLarge",
    "CostTable",
    "HierarchicalCostTable",
    "compile_cost_table",
    "TensorPlacement",
    "LayerShard",
    "Interval",
    "AcceleratorFootprint",
    "placement_summary",
    "TwoGroupExecutor",
    "PartitionedStepResult",
    "CommunicationEvent",
]
