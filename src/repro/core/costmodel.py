"""Pluggable cost-model providers for the Table-1/2 analytics.

Every number the planner, simulator, sweep engine, and service reason
about descends from the paper's idealized Table-1/2 formulas.  This
module makes the *source* of those numbers a first-class parameter:

* :class:`AnalyticCostModel` -- the paper's formulas, the default, and
  **byte-identical** to the historical hard-coded path (it hands out the
  plain :class:`~repro.core.communication.CommunicationModel`).
* :class:`ProfiledCostModel` -- ingests a profile JSON of measured
  samples (per-layer step times, link bandwidth/latency), fits the
  cost-table parameters with outlier-filtered medians in the style of
  Varuna's ``profile.py``, and hands out a
  :class:`~repro.core.communication.CalibratedCommunicationModel`
  carrying the fitted deviations.  Fit residuals (relative median
  absolute deviation of the kept samples) are reported so callers can
  judge how trustworthy a calibration is.

Profile JSON schema (``hypar-profile/v1``)::

    {
      "schema": "hypar-profile/v1",
      "name": "slow-interconnect",
      "description": "...",
      "precision_bytes": 4,              # measured element size (2 = fp16)
      "reference_bandwidth": 1.0e9,      # bytes/s the analytic model assumes
      "links": {
        "intra": {"bandwidth": [...], "latency": [...]},   # bytes/s, seconds
        "inter": {"bandwidth": [...], "latency": [...]}
      },
      "layers": {                         # optional per-layer step times
        "conv1": {"time_ms": [...]}       # milliseconds; may be {}
      }
    }

Every sample list needs at least :data:`MIN_SAMPLES` entries; the fit
drops Tukey-fence outliers (1.5 IQR) before taking medians, so a single
contended measurement cannot skew a calibration.  All of it is
deterministic: the same profile file always fits to the same model.

Cost-model *specs* are the strings threaded through CLI flags, sweep
axes, and service requests: ``"analytic"`` or ``"profiled:<pack>"``
where ``<pack>`` is a shipped pack name (see :func:`shipped_profiles`)
or a path to a profile JSON.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Sequence

from repro.core.communication import (
    CalibratedCommunicationModel,
    CommunicationModel,
)

#: Schema tag every profile payload must carry.
PROFILE_SCHEMA = "hypar-profile/v1"

#: Minimum samples per measured quantity -- a median of fewer is noise.
MIN_SAMPLES = 3

#: The canonical spec string of the analytic default.
ANALYTIC_SPEC = "analytic"

_PROFILED_PREFIX = "profiled:"

_PROFILE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "profiles")

#: Fitted models for shipped pack names, keyed by canonical spec.  Packs
#: are immutable package data, so one fit per process is safe to share.
_RESOLVED: dict[str, "CostModel"] = {}


# ----------------------------------------------------------------------
# Spec strings.
# ----------------------------------------------------------------------


def canonical_cost_model(spec: object) -> str:
    """Normalize a cost-model spec to its canonical string form.

    ``None``/empty means the analytic default.  Raises ``ValueError`` for
    anything that is neither ``"analytic"`` nor ``"profiled:<target>"``
    with a non-empty target.
    """
    if spec is None:
        return ANALYTIC_SPEC
    text = str(spec).strip()
    if not text or text == ANALYTIC_SPEC:
        return ANALYTIC_SPEC
    if text.startswith(_PROFILED_PREFIX):
        target = text[len(_PROFILED_PREFIX) :].strip()
        if target:
            return _PROFILED_PREFIX + target
    raise ValueError(
        "cost model must be 'analytic' or 'profiled:<pack-or-path>', "
        f"got {spec!r}"
    )


def shipped_profiles() -> dict[str, str]:
    """Shipped profile packs: ``{pack_name: absolute_path}``."""
    packs: dict[str, str] = {}
    if os.path.isdir(_PROFILE_DIR):
        for entry in sorted(os.listdir(_PROFILE_DIR)):
            if entry.endswith(".json"):
                packs[entry[: -len(".json")]] = os.path.join(_PROFILE_DIR, entry)
    return packs


def resolve_cost_model(spec: object) -> "CostModel":
    """Resolve a spec string (or ``None``) to a :class:`CostModel`.

    Shipped pack names are fitted once per process and shared; explicit
    file paths are re-read on every call.  Raises ``ValueError`` for an
    unknown pack / unreadable file / invalid profile.
    """
    if isinstance(spec, CostModel):
        return spec
    canonical = canonical_cost_model(spec)
    if canonical == ANALYTIC_SPEC:
        return AnalyticCostModel()
    cached = _RESOLVED.get(canonical)
    if cached is not None:
        return cached
    target = canonical[len(_PROFILED_PREFIX) :]
    shipped = shipped_profiles()
    if target in shipped:
        model = ProfiledCostModel.load(shipped[target], spec=canonical)
        _RESOLVED[canonical] = model
        return model
    if os.path.exists(target):
        return ProfiledCostModel.load(target, spec=canonical)
    raise ValueError(
        f"unknown profile pack {target!r}: not a shipped pack "
        f"({', '.join(sorted(shipped)) or 'none shipped'}) and not a file"
    )


# ----------------------------------------------------------------------
# Profile validation.
# ----------------------------------------------------------------------


def _check_samples(
    errors: list[str],
    where: str,
    values: object,
    *,
    minimum: float,
    inclusive: bool,
) -> None:
    """Validate one sample list: length, numeric type, and lower bound."""
    if not isinstance(values, (list, tuple)):
        errors.append(f"{where} must be a list of numbers")
        return
    if len(values) < MIN_SAMPLES:
        errors.append(
            f"{where} needs at least {MIN_SAMPLES} samples, got {len(values)}"
        )
    for index, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"{where}[{index}] must be a number, got {value!r}")
        elif value < minimum or (not inclusive and value == minimum):
            bound = ">=" if inclusive else ">"
            errors.append(f"{where}[{index}] must be {bound} {minimum}, got {value}")


def validate_profile_payload(payload: object) -> list[str]:
    """Schema-check a profile payload; returns a list of error strings.

    An empty list means the payload is a valid ``hypar-profile/v1``
    document that :class:`ProfiledCostModel` will accept.
    """
    if not isinstance(payload, Mapping):
        return ["profile must be a JSON object"]
    errors: list[str] = []
    if payload.get("schema") != PROFILE_SCHEMA:
        errors.append(
            f"schema must be {PROFILE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name.strip():
        errors.append("name must be a non-empty string")
    precision = payload.get("precision_bytes")
    if isinstance(precision, bool) or not isinstance(precision, int) or precision <= 0:
        errors.append(f"precision_bytes must be a positive integer, got {precision!r}")
    reference = payload.get("reference_bandwidth")
    if (
        isinstance(reference, bool)
        or not isinstance(reference, (int, float))
        or reference <= 0
    ):
        errors.append(
            f"reference_bandwidth must be a positive number, got {reference!r}"
        )
    links = payload.get("links")
    if not isinstance(links, Mapping):
        errors.append("links must be an object with 'intra' and 'inter' entries")
    else:
        for link_name in ("intra", "inter"):
            link = links.get(link_name)
            if not isinstance(link, Mapping):
                errors.append(f"links.{link_name} must be an object")
                continue
            _check_samples(
                errors,
                f"links.{link_name}.bandwidth",
                link.get("bandwidth"),
                minimum=0.0,
                inclusive=False,
            )
            _check_samples(
                errors,
                f"links.{link_name}.latency",
                link.get("latency"),
                minimum=0.0,
                inclusive=True,
            )
    layers = payload.get("layers", {})
    if not isinstance(layers, Mapping):
        errors.append("layers must be an object mapping layer names to samples")
    else:
        for layer_name, entry in layers.items():
            if not isinstance(entry, Mapping):
                errors.append(f"layers.{layer_name} must be an object")
                continue
            _check_samples(
                errors,
                f"layers.{layer_name}.time_ms",
                entry.get("time_ms"),
                minimum=0.0,
                inclusive=False,
            )
    return errors


# ----------------------------------------------------------------------
# Outlier-filtered median fitting.
# ----------------------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _quartiles(ordered: Sequence[float]) -> tuple[float, float]:
    """Linear-interpolated (Q1, Q3) of an ascending sequence."""

    def at(fraction: float) -> float:
        position = fraction * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    return at(0.25), at(0.75)


def tukey_filtered(samples: Sequence[float]) -> list[float]:
    """Drop samples outside the 1.5-IQR Tukey fences.

    With fewer than four samples the quartiles are meaningless, so the
    input passes through untouched.  The fences never reject everything:
    the median itself always survives.
    """
    ordered = sorted(float(value) for value in samples)
    if len(ordered) < 4:
        return ordered
    q1, q3 = _quartiles(ordered)
    fence = 1.5 * (q3 - q1)
    return [value for value in ordered if q1 - fence <= value <= q3 + fence]


def _fit_quantity(samples: Sequence[float]) -> tuple[float, float, int, int]:
    """Outlier-filtered median of one measured quantity.

    Returns ``(median, residual, kept, total)`` where ``residual`` is the
    relative median absolute deviation of the kept samples -- 0.0 for a
    perfectly repeatable measurement, growing with spread.
    """
    kept = tukey_filtered(samples)
    center = _median(kept)
    if center == 0.0:
        residual = 0.0
    else:
        residual = _median([abs(value - center) for value in kept]) / abs(center)
    return center, residual, len(kept), len(samples)


# ----------------------------------------------------------------------
# Providers.
# ----------------------------------------------------------------------


class CostModel:
    """Provider protocol: where the planner's cost numbers come from.

    A provider owns exactly one thing -- the
    :class:`~repro.core.communication.CommunicationModel` every table
    compilation, simulation, and migration pricing evaluates.  Provider
    identity participates in that model's ``cache_key``, so two providers
    can never share a compiled :class:`~repro.core.costs.CostTable`, a
    :class:`~repro.core.costs.TableCache` slot, or a service result hash.
    """

    #: Provider kind tag (``"analytic"`` / ``"profiled"``).
    kind: str = "abstract"

    @property
    def spec(self) -> str:
        """The canonical spec string that resolves back to this provider."""
        raise NotImplementedError

    def communication_model(self) -> CommunicationModel:
        """Build the communication model carrying this provider's costs."""
        raise NotImplementedError

    def describe(self) -> dict:
        """A JSON-friendly summary (for ``/healthz`` and CLI output)."""
        return {"kind": self.kind, "spec": self.spec}


class AnalyticCostModel(CostModel):
    """The paper's Table-1/2 formulas, exactly as always.

    Hands out the plain :class:`CommunicationModel`, so every byte it
    produces -- and every golden study, CLI golden, and benchmark floor
    derived from it -- is identical to the pre-provider code path.
    """

    kind = "analytic"

    def __init__(self, bytes_per_element: int | None = None) -> None:
        self._bytes_per_element = bytes_per_element

    @property
    def spec(self) -> str:
        return ANALYTIC_SPEC

    def communication_model(self) -> CommunicationModel:
        if self._bytes_per_element is None:
            return CommunicationModel()
        return CommunicationModel(bytes_per_element=self._bytes_per_element)


class ProfiledCostModel(CostModel):
    """Cost tables fitted from measured hardware samples.

    The constructor validates the payload (raising ``ValueError`` with
    every schema problem listed), then fits:

    * ``intra_scale`` / ``inter_scale`` = ``reference_bandwidth`` over the
      outlier-filtered median of the measured link bandwidth -- a link
      half as fast as the reference doubles its traffic cost;
    * ``inter_latency_bytes`` = median inter-link latency expressed as
      equivalent bytes at the reference bandwidth, charged once per
      non-zero directional Table-2 transfer;
    * ``layer_scales`` = each layer's median step time relative to the
      median layer (heterogeneous accelerators make some layers' partial
      sum exchanges relatively pricier);
    * ``bytes_per_element`` = the measured ``precision_bytes``.

    The fit happens once, here; planning against the provider afterwards
    costs the same as planning analytically.
    """

    kind = "profiled"

    def __init__(
        self,
        payload: Mapping,
        source: str = "<memory>",
        spec: str | None = None,
    ) -> None:
        errors = validate_profile_payload(payload)
        if errors:
            raise ValueError(
                f"invalid profile {source}: " + "; ".join(errors)
            )
        self.source = str(source)
        self.name = str(payload["name"]).strip()
        self.description = str(payload.get("description", ""))
        self.precision_bytes = int(payload["precision_bytes"])
        self.reference_bandwidth = float(payload["reference_bandwidth"])
        self._spec = spec if spec is not None else _PROFILED_PREFIX + self.source
        self._fit(payload)

    @classmethod
    def load(cls, path: str, spec: str | None = None) -> "ProfiledCostModel":
        """Read and fit a profile JSON file."""
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ValueError(f"cannot read profile {path!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise ValueError(f"profile {path!r} is not valid JSON: {error}") from error
        return cls(payload, source=path, spec=spec)

    def _fit(self, payload: Mapping) -> None:
        links = payload["links"]
        residuals: dict[str, float] = {}
        samples: dict[str, dict[str, int]] = {}

        def fit(key: str, values: Sequence[float]) -> float:
            center, residual, kept, total = _fit_quantity(values)
            residuals[key] = residual
            samples[key] = {"kept": kept, "total": total}
            return center

        intra_bandwidth = fit("intra_bandwidth", links["intra"]["bandwidth"])
        inter_bandwidth = fit("inter_bandwidth", links["inter"]["bandwidth"])
        fit("intra_latency", links["intra"]["latency"])
        inter_latency = fit("inter_latency", links["inter"]["latency"])

        self.intra_scale = self.reference_bandwidth / intra_bandwidth
        self.inter_scale = self.reference_bandwidth / inter_bandwidth
        self.inter_latency_bytes = inter_latency * self.reference_bandwidth

        layer_medians: dict[str, float] = {}
        for layer_name, entry in payload.get("layers", {}).items():
            layer_medians[str(layer_name)] = fit(
                f"layers.{layer_name}", entry["time_ms"]
            )
        self.layer_scales: dict[str, float] = {}
        if layer_medians:
            typical = _median(list(layer_medians.values()))
            self.layer_scales = {
                name: median / typical for name, median in layer_medians.items()
            }

        self._residuals = residuals
        self._samples = samples
        self._model = CalibratedCommunicationModel(
            self.name,
            bytes_per_element=self.precision_bytes,
            intra_scale=self.intra_scale,
            inter_scale=self.inter_scale,
            inter_latency_bytes=self.inter_latency_bytes,
            layer_scales=self.layer_scales,
        )

    @property
    def spec(self) -> str:
        return self._spec

    def communication_model(self) -> CalibratedCommunicationModel:
        return self._model

    def fit_report(self) -> dict:
        """The fitted parameters with per-quantity residuals and counts."""
        return {
            "name": self.name,
            "source": self.source,
            "precision_bytes": self.precision_bytes,
            "reference_bandwidth": self.reference_bandwidth,
            "intra_scale": self.intra_scale,
            "inter_scale": self.inter_scale,
            "inter_latency_bytes": self.inter_latency_bytes,
            "layer_scales": dict(sorted(self.layer_scales.items())),
            "residuals": dict(sorted(self._residuals.items())),
            "samples": dict(sorted(self._samples.items())),
        }

    def describe(self) -> dict:
        summary = super().describe()
        summary.update(
            name=self.name,
            precision_bytes=self.precision_bytes,
            intra_scale=self.intra_scale,
            inter_scale=self.inter_scale,
            inter_latency_bytes=self.inter_latency_bytes,
            max_residual=max(self._residuals.values(), default=0.0),
        )
        return summary
