"""Algorithm 2: hierarchical partition of an accelerator array.

The whole array of ``2**H`` accelerators is split recursively: Algorithm 1
partitions the array into two halves (hierarchy level ``H1``), then each
half is partitioned again (``H2``), and so on for ``H`` levels until single
accelerators remain.  One parallelism list is produced per level, exactly
as in Figure 5 of the paper, and the total communication is

.. code-block:: text

   com(H) = com_level + 2 * com(H - 1)

because the two sibling sub-arrays each repeat the lower-level pattern.

The tensor amounts seen by deeper levels shrink according to the
:class:`~repro.core.tensors.ScalingMode`; see that module's docstring and
the ablation discussion in DESIGN.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.communication import CommunicationModel
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.result import HierarchicalResult, LevelResult
from repro.core.tensors import (
    ScalingMode,
    TensorScale,
    descend_scales,
    initial_scales,
    model_tensors,
)
from repro.nn.model import DNNModel

#: The paper's array of sixteen accelerators organised in four levels.
DEFAULT_NUM_LEVELS = 4
#: The paper's training batch size.
DEFAULT_BATCH_SIZE = 256


class HierarchicalPartitioner:
    """HyPar's hierarchical, communication-minimising partition search.

    Parameters
    ----------
    num_levels:
        Number of hierarchy levels ``H``; the array holds ``2**H``
        accelerators (the paper uses ``H = 4`` → 16 accelerators).
    communication_model:
        Cost model shared by every level (fp32 by default).
    scaling_mode:
        How tensor amounts shrink for deeper levels (see
        :class:`~repro.core.tensors.ScalingMode`).
    """

    def __init__(
        self,
        num_levels: int = DEFAULT_NUM_LEVELS,
        communication_model: CommunicationModel | None = None,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    ) -> None:
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        self.num_levels = num_levels
        self.communication_model = communication_model or CommunicationModel()
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self._two_way = TwoWayPartitioner(self.communication_model)

    @property
    def num_accelerators(self) -> int:
        return 1 << self.num_levels

    # ------------------------------------------------------------------
    # Search.
    # ------------------------------------------------------------------

    def partition(
        self,
        model: DNNModel,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> HierarchicalResult:
        """Search the parallelism list for every hierarchy level of ``model``."""
        levels: list[LevelResult] = []
        scales = initial_scales(len(model))
        for level in range(self.num_levels):
            tensors = model_tensors(model, batch_size, scales)
            result = self._two_way.partition_tensors(tensors)
            levels.append(
                LevelResult(
                    level=level,
                    assignment=result.assignment,
                    communication_bytes=result.communication_bytes,
                    num_pairs=1 << level,
                    breakdown=result.breakdown,
                )
            )
            scales = descend_scales(scales, result.assignment, self.scaling_mode)

        assignment = HierarchicalAssignment(tuple(lvl.assignment for lvl in levels))
        return HierarchicalResult(
            model_name=model.name,
            batch_size=batch_size,
            assignment=assignment,
            levels=tuple(levels),
        )

    # ------------------------------------------------------------------
    # Evaluation of arbitrary hierarchical assignments (baselines, sweeps).
    # ------------------------------------------------------------------

    def evaluate(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> HierarchicalResult:
        """Total communication of a given (possibly sub-optimal) assignment.

        The same scale-descent rules used by the search are applied, so the
        costs of searched and hand-specified assignments are directly
        comparable.
        """
        if assignment.num_levels != self.num_levels:
            raise ValueError(
                f"assignment has {assignment.num_levels} levels, "
                f"partitioner expects {self.num_levels}"
            )
        if assignment.num_layers != len(model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model {model.name!r} has {len(model)}"
            )
        levels: list[LevelResult] = []
        scales: Sequence[TensorScale] = initial_scales(len(model))
        for level in range(self.num_levels):
            tensors = model_tensors(model, batch_size, scales)
            level_assignment = assignment[level]
            result = self._two_way.evaluate(tensors, level_assignment)
            levels.append(
                LevelResult(
                    level=level,
                    assignment=level_assignment,
                    communication_bytes=result.communication_bytes,
                    num_pairs=1 << level,
                    breakdown=result.breakdown,
                )
            )
            scales = descend_scales(scales, level_assignment, self.scaling_mode)

        return HierarchicalResult(
            model_name=model.name,
            batch_size=batch_size,
            assignment=assignment,
            levels=tuple(levels),
        )

    # ------------------------------------------------------------------
    # Convenience evaluations of the canonical baselines.
    # ------------------------------------------------------------------

    def evaluate_uniform(
        self,
        model: DNNModel,
        parallelism: Parallelism,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> HierarchicalResult:
        """Cost of the default Data Parallelism or Model Parallelism."""
        assignment = HierarchicalAssignment.uniform(
            parallelism, self.num_levels, len(model)
        )
        return self.evaluate(model, assignment, batch_size)

    def evaluate_per_level(
        self,
        model: DNNModel,
        level_assignment: LayerAssignment,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> HierarchicalResult:
        """Cost of repeating the same per-layer list at every hierarchy level."""
        assignment = HierarchicalAssignment(tuple([level_assignment] * self.num_levels))
        return self.evaluate(model, assignment, batch_size)
