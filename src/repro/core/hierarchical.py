"""Algorithm 2: hierarchical partition of an accelerator array.

The whole array of ``2**H`` accelerators is split recursively: Algorithm 1
partitions the array into two halves (hierarchy level ``H1``), then each
half is partitioned again (``H2``), and so on for ``H`` levels until single
accelerators remain.  One parallelism list is produced per level, exactly
as in Figure 5 of the paper, and the total communication is

.. code-block:: text

   com(H) = com_level + 2 * com(H - 1)

because the two sibling sub-arrays each repeat the lower-level pattern.

The tensor amounts seen by deeper levels shrink according to the
:class:`~repro.core.tensors.ScalingMode`; see that module's docstring and
the ablation discussion in DESIGN.md.

Searches and evaluations run against a compiled
:class:`~repro.core.costs.HierarchicalCostTable` (every reachable
scale-descent state is derived once per model and gathered per level), so
sweeps that evaluate many assignments of the same model share one table;
pass it explicitly via the ``table`` parameter or let each call compile its
own.  The original object-based evaluation is kept as
:meth:`HierarchicalPartitioner.evaluate_reference`, the oracle the
vectorized paths are tested against.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core import kernels
from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable, HierarchicalCostTable, TableCache, WarmStartDP
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.strategies import BATCH, WEIGHT, strategy_spec
from repro.core.result import HierarchicalResult, LevelResult
from repro.core.tensors import (
    ScalingMode,
    TensorScale,
    descend_scales,
    initial_scales,
    model_tensors,
)
from repro.nn.model import DNNModel

#: The paper's array of sixteen accelerators organised in four levels.
DEFAULT_NUM_LEVELS = 4
#: The paper's training batch size.
DEFAULT_BATCH_SIZE = 256


class HierarchicalPartitioner:
    """HyPar's hierarchical, communication-minimising partition search.

    Parameters
    ----------
    num_levels:
        Number of hierarchy levels ``H``; the array holds ``2**H``
        accelerators (the paper uses ``H = 4`` → 16 accelerators).
    communication_model:
        Cost model shared by every level (fp32 by default).
    scaling_mode:
        How tensor amounts shrink for deeper levels (see
        :class:`~repro.core.tensors.ScalingMode`).
    strategies:
        The per-layer strategy space searched at every level (the paper's
        dp/mp axis by default; e.g. ``"dp,mp,pp"`` adds pipeline
        parallelism).
    backend:
        Kernel backend for every compiled table (``"numpy"`` /
        ``"compiled"``; ``None`` follows the process default, see
        :mod:`repro.core.kernels`).  Results are backend-independent.
    """

    def __init__(
        self,
        num_levels: int = DEFAULT_NUM_LEVELS,
        communication_model: CommunicationModel | None = None,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        strategies: StrategySpace | str | None = None,
        backend: str | None = None,
    ) -> None:
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        self.num_levels = num_levels
        self.communication_model = communication_model or CommunicationModel()
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self.strategies = StrategySpace.parse(strategies)
        self.backend = kernels.validate_backend(backend)
        self._two_way = TwoWayPartitioner(
            self.communication_model, self.strategies, backend=self.backend
        )

    @property
    def num_accelerators(self) -> int:
        return 1 << self.num_levels

    # ------------------------------------------------------------------
    # Cost-table compilation.
    # ------------------------------------------------------------------

    def compile_table(
        self,
        model: DNNModel,
        batch_size: int,
        table_cache: TableCache | None = None,
    ) -> HierarchicalCostTable:
        """Compile the reusable cost table for ``model`` at ``batch_size``.

        ``table_cache`` optionally supplies a shared
        :class:`~repro.core.costs.TableCache`; the compilation then happens
        at most once per configuration across every caller of that cache.
        """
        if table_cache is not None:
            return table_cache.get_or_compile(
                model,
                batch_size,
                self.num_levels,
                scaling_mode=self.scaling_mode,
                communication_model=self.communication_model,
                strategies=self.strategies,
                backend=self.backend,
            )
        return HierarchicalCostTable(
            model,
            batch_size,
            self.num_levels,
            scaling_mode=self.scaling_mode,
            communication_model=self.communication_model,
            strategies=self.strategies,
            backend=self.backend,
        )

    def _check_table(
        self, table: HierarchicalCostTable, model: DNNModel, batch_size: int
    ) -> None:
        table.check_compatible(
            model,
            batch_size,
            self.num_levels,
            self.scaling_mode,
            self.communication_model,
            strategies=self.strategies,
        )

    def _level_tables(
        self,
        model: DNNModel,
        batch_size: int,
        table: HierarchicalCostTable | None,
    ) -> "_LevelTableProvider":
        """Per-level cost tables for one descent through the hierarchy.

        With a compiled table the levels are pure gathers; without one they
        are derived along the actual scale descent (cheaper than compiling
        the whole state space for a single search or evaluation).
        """
        if table is not None:
            self._check_table(table, model, batch_size)
            return _CompiledLevelTables(table)
        return _DescentLevelTables(
            model,
            batch_size,
            self.communication_model,
            self.scaling_mode,
            self.strategies,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # Search.
    # ------------------------------------------------------------------

    def partition(
        self,
        model: DNNModel,
        batch_size: int = DEFAULT_BATCH_SIZE,
        table: HierarchicalCostTable | None = None,
        warm: "HierarchicalWarmStart | None" = None,
    ) -> HierarchicalResult:
        """Search the parallelism list for every hierarchy level of ``model``.

        ``warm`` optionally supplies a :class:`HierarchicalWarmStart` whose
        per-level :class:`~repro.core.costs.WarmStartDP` solvers carry DP
        state from the caller's previous solves; the result is bit-exact
        with the cold search either way.
        """
        provider = self._level_tables(model, batch_size, table)
        levels: list[LevelResult] = []
        for level in range(self.num_levels):
            level_table = provider.level_table(level)
            if warm is not None:
                result = warm.level_solver(level).solve(level_table)
            else:
                result = level_table.dp_partition()
            levels.append(
                LevelResult(
                    level=level,
                    assignment=result.assignment,
                    communication_bytes=result.communication_bytes,
                    num_pairs=1 << level,
                    breakdown_factory=lambda result=result: result.breakdown,
                )
            )
            provider.advance(result.assignment)

        assignment = HierarchicalAssignment(tuple(lvl.assignment for lvl in levels))
        return HierarchicalResult(
            model_name=model.name,
            batch_size=batch_size,
            assignment=assignment,
            levels=tuple(levels),
        )

    # ------------------------------------------------------------------
    # Evaluation of arbitrary hierarchical assignments (baselines, sweeps).
    # ------------------------------------------------------------------

    def evaluate(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment,
        batch_size: int = DEFAULT_BATCH_SIZE,
        table: HierarchicalCostTable | None = None,
    ) -> HierarchicalResult:
        """Total communication of a given (possibly sub-optimal) assignment.

        The same scale-descent rules used by the search are applied, so the
        costs of searched and hand-specified assignments are directly
        comparable.  Per-layer breakdowns materialize lazily on access.
        """
        self._check_assignment(model, assignment)
        provider = self._level_tables(model, batch_size, table)
        levels: list[LevelResult] = []
        for level in range(self.num_levels):
            level_assignment = assignment[level]
            level_table = provider.level_table(level)
            levels.append(
                LevelResult(
                    level=level,
                    assignment=level_assignment,
                    communication_bytes=level_table.total_bytes(level_assignment),
                    num_pairs=1 << level,
                    breakdown_factory=lambda t=level_table, a=level_assignment: tuple(
                        t.communication_model.layer_breakdown(t.tensors, a, t.edges)
                    ),
                )
            )
            provider.advance(level_assignment)

        return HierarchicalResult(
            model_name=model.name,
            batch_size=batch_size,
            assignment=assignment,
            levels=tuple(levels),
        )

    def evaluate_reference(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> HierarchicalResult:
        """Object-based evaluation: the oracle for the table-driven path.

        Re-derives the :class:`~repro.core.tensors.LayerTensors` list level
        by level with :func:`~repro.core.tensors.descend_scales`, exactly as
        the original implementation did; :meth:`evaluate` must agree with it
        bit for bit.
        """
        self._check_assignment(model, assignment)
        levels: list[LevelResult] = []
        scales: Sequence[TensorScale] = initial_scales(len(model))
        for level in range(self.num_levels):
            tensors = model_tensors(model, batch_size, scales)
            level_assignment = assignment[level]
            result = self._two_way.evaluate(tensors, level_assignment, edges=model.edges)
            levels.append(
                LevelResult(
                    level=level,
                    assignment=level_assignment,
                    communication_bytes=result.communication_bytes,
                    num_pairs=1 << level,
                    breakdown=result.breakdown,
                )
            )
            scales = descend_scales(scales, level_assignment, self.scaling_mode)

        return HierarchicalResult(
            model_name=model.name,
            batch_size=batch_size,
            assignment=assignment,
            levels=tuple(levels),
        )

    def _check_assignment(
        self, model: DNNModel, assignment: HierarchicalAssignment
    ) -> None:
        if assignment.num_levels != self.num_levels:
            raise ValueError(
                f"assignment has {assignment.num_levels} levels, "
                f"partitioner expects {self.num_levels}"
            )
        if assignment.num_layers != len(model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model {model.name!r} has {len(model)}"
            )

    # ------------------------------------------------------------------
    # Convenience evaluations of the canonical baselines.
    # ------------------------------------------------------------------

    def evaluate_uniform(
        self,
        model: DNNModel,
        parallelism: Parallelism,
        batch_size: int = DEFAULT_BATCH_SIZE,
        table: HierarchicalCostTable | None = None,
    ) -> HierarchicalResult:
        """Cost of the default Data Parallelism or Model Parallelism."""
        assignment = HierarchicalAssignment.uniform(
            parallelism, self.num_levels, len(model)
        )
        return self.evaluate(model, assignment, batch_size, table=table)

    def evaluate_per_level(
        self,
        model: DNNModel,
        level_assignment: LayerAssignment,
        batch_size: int = DEFAULT_BATCH_SIZE,
        table: HierarchicalCostTable | None = None,
    ) -> HierarchicalResult:
        """Cost of repeating the same per-layer list at every hierarchy level."""
        assignment = HierarchicalAssignment(tuple([level_assignment] * self.num_levels))
        return self.evaluate(model, assignment, batch_size, table=table)


class HierarchicalWarmStart:
    """Per-level warm-start state for consecutive hierarchical solves.

    The greedy level-by-level descent means level ``h``'s table depends
    only on the choices of levels ``0 .. h-1``: two solves of the same
    ``(model, batch, scaling, strategies)`` configuration at *different*
    total depths share identical tables for their common level prefix.
    Keeping one :class:`~repro.core.costs.WarmStartDP` per level index
    therefore turns the re-solves of an elastic re-planning timeline (the
    array regrows from 8 to 16 accelerators and back) into frontier
    lookups instead of full dynamic programs.
    """

    def __init__(self) -> None:
        self._solvers: dict[int, WarmStartDP] = {}

    def level_solver(self, level: int) -> WarmStartDP:
        solver = self._solvers.get(level)
        if solver is None:
            solver = WarmStartDP()
            self._solvers[level] = solver
        return solver

    def stats(self) -> dict:
        """Aggregated reuse counters across every level solver."""
        totals = {"full_hits": 0, "reused_layers": 0, "solved_layers": 0, "cold_solves": 0}
        for solver in self._solvers.values():
            for key, value in solver.stats().items():
                totals[key] += value
        return totals


class _CompiledLevelTables:
    """Level tables gathered from a pre-compiled :class:`HierarchicalCostTable`."""

    def __init__(self, table: HierarchicalCostTable) -> None:
        self._table = table
        # Per-layer (batch-halvings, weight-halvings) counts of the descent
        # so far; the table maps them to its internal state indices.
        self._batch_counts = [0] * table.num_layers
        self._weight_counts = [0] * table.num_layers

    def level_table(self, level: int):
        states = [
            self._table.state_index(level, b, w)
            for b, w in zip(self._batch_counts, self._weight_counts)
        ]
        return self._table.level_cost_table(level, states)

    def advance(self, assignment: LayerAssignment) -> None:
        if self._table.scaling_mode is not ScalingMode.PARALLELISM_AWARE:
            return
        for layer, choice in enumerate(assignment):
            halves = strategy_spec(choice).halves
            if halves == BATCH:
                self._batch_counts[layer] += 1
            elif halves == WEIGHT:
                self._weight_counts[layer] += 1


class _DescentLevelTables:
    """Level tables derived along the actual scale descent (no full compile).

    A single search or evaluation only visits one ``(level, states)``
    combination per level, so deriving the tensors on the way down -- the
    original object-path structure -- is cheaper than compiling every
    reachable state.  The floats are identical either way.
    """

    def __init__(
        self,
        model,
        batch_size,
        communication_model,
        scaling_mode,
        strategies=None,
        backend=None,
    ) -> None:
        self._model = model
        self._batch_size = batch_size
        self._communication_model = communication_model
        self._scaling_mode = scaling_mode
        self._strategies = StrategySpace.parse(strategies)
        self._backend = kernels.validate_backend(backend)
        self._scales: Sequence[TensorScale] = initial_scales(len(model))

    def level_table(self, level: int) -> CostTable:
        tensors = model_tensors(self._model, self._batch_size, self._scales)
        return CostTable.from_tensors(
            tensors,
            self._communication_model,
            self._strategies,
            edges=self._model.edges,
            backend=self._backend,
        )

    def advance(self, assignment: LayerAssignment) -> None:
        self._scales = descend_scales(self._scales, assignment, self._scaling_mode)


#: Either provider satisfies the same two-method protocol.
_LevelTableProvider = Union[_CompiledLevelTables, _DescentLevelTables]
