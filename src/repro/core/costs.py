"""Vectorized cost-table evaluation engine for the partition search.

The object-based path (:class:`~repro.core.communication.CommunicationModel`
walking :class:`~repro.core.tensors.LayerTensors` lists) is convenient for
reporting but far too slow for the enumeration workloads: the restricted
sweeps of Figures 9/10 and the brute-force validators score up to ``2**22``
candidate assignments, and rebuilding tensor lists plus a
:class:`~repro.core.communication.LayerCommunication` breakdown per candidate
is pure-Python overhead repeated millions of times.

This module compiles the communication model *once* into NumPy arrays and
then scores whole batches of candidates with array operations:

* :class:`CostTable` -- one hierarchy level.  ``intra[l, p]`` is the
  intra-layer traffic (bytes) of layer ``l`` under parallelism bit ``p``
  (0 = dp, 1 = mp); ``inter[l, p, q]`` is the inter-layer traffic of the
  boundary between layers ``l`` and ``l + 1`` when they use bits ``p`` and
  ``q``.  The table supports the array dynamic program of Algorithm 1
  (:meth:`CostTable.dp_partition`) and batched scoring of arbitrary
  bit-patterns (:meth:`CostTable.score_bits`).
* :class:`HierarchicalCostTable` -- every hierarchy level at once.  Under
  :attr:`~repro.core.tensors.ScalingMode.PARALLELISM_AWARE` scaling a
  layer's tensor amounts at level ``h`` depend only on how many of its
  previous ``h`` choices were mp, so the table stores one cost slice per
  ``(level, previous-mp-count)`` state and batched scoring reduces to a
  gather over cumulative bit counts.  This is also the scale-descent cache
  used by the sweeps and the training simulator: the per-level
  :class:`~repro.core.tensors.LayerTensors` are derived once per model
  instead of once per candidate.

Bit-exactness
-------------
The vectorized paths are required (and property-tested) to agree *bit for
bit* with the object-based reference path, which remains the oracle:

* table entries are produced by the same :class:`CommunicationModel` calls
  the object path makes, so the stored floats are identical;
* batched totals accumulate per-layer ``intra + inter`` terms sequentially
  (layer 0, then layer 1, ...), reproducing the exact floating-point
  association of ``sum(record.total_bytes for record in breakdown)``;
* the array DP applies the same recurrence with the same tie rule
  (ties prefer dp, matching :class:`~repro.core.partitioner.TwoWayPartitioner`),
  and batched argmins resolve ties to the lowest bit-pattern, matching the
  enumeration order of the reference brute force.

Breakdown objects are *lazy*: batch scorers return raw totals and only the
winning candidates are materialized into
:class:`~repro.core.result.PartitionResult` /
:class:`~repro.core.communication.LayerCommunication` records, on first
access of ``result.breakdown``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

import numpy as np

from repro.core.communication import CommunicationModel
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
)
from repro.core.result import PartitionResult
from repro.core.tensors import (
    LayerTensors,
    ScalingMode,
    TensorScale,
    layer_tensors,
    model_tensors,
)
from repro.nn.model import DNNModel

#: Candidates scored per NumPy batch; bounds peak memory of the gathered
#: (chunk, L) cost matrices to a few MB while keeping the per-chunk Python
#: overhead negligible.
DEFAULT_CHUNK_SIZE = 1 << 16

_PARALLELISM_BY_BIT = (Parallelism.DATA, Parallelism.MODEL)


def _sequential_row_sum(per_layer: np.ndarray) -> np.ndarray:
    """Left-to-right sum along axis 1, matching Python's ``sum()`` exactly.

    ``np.sum`` uses pairwise summation whose rounding can differ from the
    sequential accumulation of the object-based reference path; an explicit
    column loop (cheap: one vector add per layer) guarantees bit-exact
    parity.
    """
    totals = per_layer[:, 0].copy()
    for column in range(1, per_layer.shape[1]):
        totals += per_layer[:, column]
    return totals


@dataclasses.dataclass(frozen=True, eq=False)
class CostTable:
    """Compiled per-layer communication costs for one hierarchy level.

    Identity equality (``eq=False``): the ndarray fields make a generated
    value ``__eq__`` raise, and two independently compiled tables are never
    meaningfully "the same" object to a cache anyway.

    Attributes
    ----------
    intra:
        ``(L, 2)`` float array; ``intra[l, p]`` is the Table-1 intra-layer
        traffic (bytes) of layer ``l`` under parallelism bit ``p``.
    inter:
        ``(L - 1, 2, 2)`` float array; ``inter[l, p, q]`` is the Table-2
        inter-layer traffic (bytes) of the boundary between layers ``l``
        (bit ``p``) and ``l + 1`` (bit ``q``).
    tensors:
        The tensor records the table was compiled from, kept so winning
        candidates can lazily materialize their full breakdown through the
        object-based reference path.
    communication_model:
        The model used to compile the table (and to materialize breakdowns).
    """

    intra: np.ndarray
    inter: np.ndarray
    tensors: tuple[LayerTensors, ...]
    communication_model: CommunicationModel

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_tensors(
        cls,
        tensors: Sequence[LayerTensors],
        communication_model: CommunicationModel | None = None,
    ) -> "CostTable":
        """Compile the table from per-layer tensor amounts."""
        tensors = tuple(tensors)
        if not tensors:
            raise ValueError("cannot build a cost table for zero layers")
        model = communication_model or CommunicationModel()
        num_layers = len(tensors)
        intra = np.empty((num_layers, 2), dtype=np.float64)
        inter = np.zeros((max(num_layers - 1, 0), 2, 2), dtype=np.float64)
        for index, record in enumerate(tensors):
            for bit, choice in enumerate(_PARALLELISM_BY_BIT):
                intra[index, bit] = model.intra_layer_bytes(record, choice)
        for index in range(num_layers - 1):
            boundary = tensors[index]
            for p_bit, previous in enumerate(_PARALLELISM_BY_BIT):
                for q_bit, current in enumerate(_PARALLELISM_BY_BIT):
                    inter[index, p_bit, q_bit] = model.inter_layer_bytes(
                        previous, current, boundary
                    )
        return cls(
            intra=intra,
            inter=inter,
            tensors=tensors,
            communication_model=model,
        )

    @classmethod
    def compile(
        cls,
        model: DNNModel,
        batch_size: int,
        scales: Sequence[TensorScale] | None = None,
        communication_model: CommunicationModel | None = None,
    ) -> "CostTable":
        """Compile the table for ``model`` at ``batch_size`` (and ``scales``)."""
        return cls.from_tensors(
            model_tensors(model, batch_size, scales), communication_model
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.tensors)

    @property
    def num_assignments(self) -> int:
        """Size of the full assignment space for this level (``2**L``)."""
        return 1 << self.num_layers

    # ------------------------------------------------------------------
    # Algorithm 1 as an array DP over the table.
    # ------------------------------------------------------------------

    def dp_partition(self) -> PartitionResult:
        """Layer-wise dynamic program over the table (Algorithm 1).

        Applies exactly the recurrence of
        :meth:`~repro.core.partitioner.TwoWayPartitioner.partition_tensors_reference`
        -- same additions in the same order, ties preferring dp -- so the
        returned optimum is bit-exact with the object-based oracle.  The
        per-layer breakdown of the winner is materialized lazily.
        """
        num_layers = self.num_layers
        com = self.intra[0].copy()  # (2,): best accumulated cost ending in dp/mp
        parents = np.empty((num_layers - 1, 2), dtype=np.int8)
        state = np.arange(2)
        for layer in range(1, num_layers):
            candidates = com[:, None] + self.inter[layer - 1]  # (from, to)
            # argmin resolves ties to index 0 (dp), matching the reference
            # ``from_dp <= from_mp`` rule.
            choice = np.argmin(candidates, axis=0)
            parents[layer - 1] = choice
            com = candidates[choice, state] + self.intra[layer]

        last = int(np.argmin(com))  # tie -> dp, the reference's final rule
        total = float(com[last])
        bits_per_layer = np.empty(num_layers, dtype=np.int8)
        bits_per_layer[-1] = last
        for layer in range(num_layers - 2, -1, -1):
            bits_per_layer[layer] = parents[layer, bits_per_layer[layer + 1]]

        assignment = LayerAssignment(
            tuple(_PARALLELISM_BY_BIT[bit] for bit in bits_per_layer)
        )
        return self.lazy_result(assignment, total)

    # ------------------------------------------------------------------
    # Batched scoring of candidate bit-patterns.
    # ------------------------------------------------------------------

    def score_bits(self, bits: np.ndarray | Sequence[int]) -> np.ndarray:
        """Total communication bytes for a batch of assignment bit-patterns.

        ``bits`` encodes one candidate per element with the
        :meth:`~repro.core.parallelism.LayerAssignment.from_bits` convention
        (LSB = layer 0, 0 = dp, 1 = mp).  Returns a float array of the same
        length whose entries are bit-exact with
        ``CommunicationModel.total_bytes`` on the decoded assignments.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.ndim != 1:
            raise ValueError(f"bits must be one-dimensional, got shape {bits.shape}")
        totals = np.empty(bits.shape[0], dtype=np.float64)
        for start in range(0, bits.shape[0], DEFAULT_CHUNK_SIZE):
            chunk = bits[start : start + DEFAULT_CHUNK_SIZE]
            totals[start : start + chunk.shape[0]] = self._score_chunk(chunk)
        return totals

    def _score_chunk(self, bits: np.ndarray) -> np.ndarray:
        num_layers = self.num_layers
        shifts = np.arange(num_layers, dtype=np.int64)
        return self._score_decoded((bits[:, None] >> shifts) & 1)

    def _score_decoded(self, decoded: np.ndarray) -> np.ndarray:
        """Score candidates given an ``(N, L)`` 0/1 bit matrix.

        Depth-safe core scorer: unlike the packed-integer entry points it
        has no 64-bit encoding limit, so single assignments of arbitrarily
        deep models route through it.
        """
        num_layers = self.num_layers
        per_layer = self.intra[np.arange(num_layers), decoded]  # (N, L)
        if num_layers > 1:
            boundary = np.arange(num_layers - 1)
            # One add per layer term keeps the ``intra + inter`` association
            # of LayerCommunication.total_bytes.
            per_layer[:, 1:] += self.inter[boundary, decoded[:, :-1], decoded[:, 1:]]
        return _sequential_row_sum(per_layer)

    def iter_all_bits(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[np.ndarray]:
        """Chunked enumeration of the full ``2**L`` bit-pattern space."""
        for start in range(0, self.num_assignments, chunk_size):
            stop = min(start + chunk_size, self.num_assignments)
            yield np.arange(start, stop, dtype=np.int64)

    def argmin_assignment(self) -> tuple[int, float]:
        """Brute-force optimum over all ``2**L`` assignments.

        Returns ``(bits, total_bytes)`` of the first minimum in enumeration
        order (lowest bit-pattern wins ties), matching the reference
        strict-``<`` scan of the object-based brute force.
        """
        best_bits = -1
        best_total = np.inf
        for chunk in self.iter_all_bits():
            totals = self._score_chunk(chunk)
            index = int(np.argmin(totals))
            if totals[index] < best_total:
                best_total = float(totals[index])
                best_bits = int(chunk[index])
        return best_bits, best_total

    # ------------------------------------------------------------------
    # Lazy materialization of winners.
    # ------------------------------------------------------------------

    def total_bytes(self, assignment: LayerAssignment) -> float:
        """Total traffic of one assignment (fast path, no breakdown objects).

        Decodes the assignment directly instead of round-tripping through a
        packed integer, so models with 64+ weighted layers work too.
        """
        self._check_assignment(assignment)
        decoded = np.array([[choice.bit for choice in assignment]], dtype=np.int64)
        return float(self._score_decoded(decoded)[0])

    def lazy_result(
        self, assignment: LayerAssignment, total_bytes: float
    ) -> PartitionResult:
        """A :class:`PartitionResult` whose breakdown materializes on access."""
        tensors = self.tensors
        model = self.communication_model
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total_bytes,
            breakdown_factory=lambda: tuple(
                model.layer_breakdown(tensors, assignment)
            ),
        )

    def result_for_bits(self, bits: int) -> PartitionResult:
        """Materialize the :class:`PartitionResult` of one bit-pattern."""
        assignment = LayerAssignment.from_bits(bits, self.num_layers)
        total = float(self.score_bits(np.array([bits], dtype=np.int64))[0])
        return self.lazy_result(assignment, total)

    def _check_assignment(self, assignment: LayerAssignment) -> None:
        if assignment.num_layers != self.num_layers:
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"table has {self.num_layers}"
            )


class HierarchicalCostTable:
    """Per-level cost tables indexed by each layer's scale-descent state.

    Under :attr:`ScalingMode.PARALLELISM_AWARE` a layer's tensor amounts at
    hierarchy level ``h`` are fully determined by how many of its choices at
    levels ``0 .. h-1`` were mp (``k`` mp choices halve the weight fraction
    ``k`` times and the batch fraction ``h - k`` times), so level ``h`` has
    ``h + 1`` possible states per layer.  ``UNIFORM`` and ``NONE`` scaling
    are choice-independent and collapse to a single state per level.

    The table therefore caches *every* scale-descent outcome a sweep can
    reach: batched candidate scoring, `HierarchicalPartitioner` evaluation
    and the training simulator's per-level tensor derivation all gather from
    the same compiled arrays instead of rebuilding ``LayerTensors`` lists.
    """

    def __init__(
        self,
        model: DNNModel,
        batch_size: int,
        num_levels: int,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        communication_model: CommunicationModel | None = None,
    ) -> None:
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        self.model = model
        self.batch_size = batch_size
        self.num_levels = num_levels
        self.num_layers = len(model)
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self.communication_model = communication_model or CommunicationModel()
        comm = self.communication_model

        # Per level h: tensors[h][k][l], intra[h] (L, K, 2), and the boundary
        # array (L-1, K, 2, 2) -- K = h + 1 for parallelism-aware scaling,
        # otherwise 1.  The forward/backward splits of the inter-layer costs
        # are compiled lazily on first :meth:`level_communication` access:
        # only the simulator reads them, and ``_to_bytes(fwd + bwd)`` versus
        # ``_to_bytes(fwd) + _to_bytes(bwd)`` may round differently, so they
        # cannot be derived from the combined array.
        self._tensors: list[list[tuple[LayerTensors, ...]]] = []
        self._intra: list[np.ndarray] = []
        self._inter: list[np.ndarray] = []
        self._inter_forward: list[np.ndarray] | None = None
        self._inter_backward: list[np.ndarray] | None = None

        layers = list(model)
        num_layers = self.num_layers
        for level in range(num_levels):
            num_states = self.num_states(level)
            level_tensors: list[tuple[LayerTensors, ...]] = []
            intra = np.empty((num_layers, num_states, 2), dtype=np.float64)
            inter = np.zeros((max(num_layers - 1, 0), num_states, 2, 2), dtype=np.float64)
            for state in range(num_states):
                scale = self._state_scale(level, state)
                records = tuple(
                    layer_tensors(layer, batch_size, scale) for layer in layers
                )
                level_tensors.append(records)
                for index, record in enumerate(records):
                    for bit, choice in enumerate(_PARALLELISM_BY_BIT):
                        intra[index, state, bit] = comm.intra_layer_bytes(record, choice)
                for index in range(num_layers - 1):
                    boundary = records[index]
                    for p_bit, previous in enumerate(_PARALLELISM_BY_BIT):
                        for q_bit, current in enumerate(_PARALLELISM_BY_BIT):
                            inter[index, state, p_bit, q_bit] = comm.inter_layer_bytes(
                                previous, current, boundary
                            )
            self._tensors.append(level_tensors)
            self._intra.append(intra)
            self._inter.append(inter)

    def _ensure_direction_split(self) -> None:
        """Compile the forward/backward inter-layer splits on first use."""
        if self._inter_forward is not None:
            return
        comm = self.communication_model
        num_layers = self.num_layers
        forward: list[np.ndarray] = []
        backward: list[np.ndarray] = []
        for level in range(self.num_levels):
            num_states = self.num_states(level)
            shape = (max(num_layers - 1, 0), num_states, 2, 2)
            inter_fwd = np.zeros(shape, dtype=np.float64)
            inter_bwd = np.zeros(shape, dtype=np.float64)
            for state, records in enumerate(self._tensors[level]):
                for index in range(num_layers - 1):
                    boundary = records[index]
                    for p_bit, previous in enumerate(_PARALLELISM_BY_BIT):
                        for q_bit, current in enumerate(_PARALLELISM_BY_BIT):
                            inter_fwd[index, state, p_bit, q_bit] = (
                                comm.inter_layer_forward_bytes(previous, current, boundary)
                            )
                            inter_bwd[index, state, p_bit, q_bit] = (
                                comm.inter_layer_backward_bytes(previous, current, boundary)
                            )
            forward.append(inter_fwd)
            backward.append(inter_bwd)
        self._inter_forward = forward
        self._inter_backward = backward

    # ------------------------------------------------------------------
    # Scale-descent states.
    # ------------------------------------------------------------------

    def num_states(self, level: int) -> int:
        """Number of distinct per-layer scale states at ``level``."""
        if self.scaling_mode is ScalingMode.PARALLELISM_AWARE:
            return level + 1
        return 1

    def _state_scale(self, level: int, state: int) -> TensorScale:
        """The :class:`TensorScale` of state ``state`` at ``level``.

        Halvings are powers of two, so ``0.5 ** k`` is bit-exact with the
        reference path's sequential ``descend`` multiplications.
        """
        if self.scaling_mode is ScalingMode.PARALLELISM_AWARE:
            # ``state`` = number of mp choices among the previous ``level``.
            return TensorScale(
                batch_fraction=0.5 ** (level - state),
                weight_fraction=0.5 ** state,
            )
        if self.scaling_mode is ScalingMode.UNIFORM:
            return TensorScale(batch_fraction=0.5 ** level, weight_fraction=1.0)
        return TensorScale()

    def state_indices(self, assignment: HierarchicalAssignment) -> np.ndarray:
        """Per-(level, layer) state indices implied by ``assignment``."""
        self._check_assignment(assignment)
        states = np.zeros((self.num_levels, self.num_layers), dtype=np.int64)
        if self.scaling_mode is not ScalingMode.PARALLELISM_AWARE:
            return states
        mp_counts = np.zeros(self.num_layers, dtype=np.int64)
        for level in range(self.num_levels):
            states[level] = mp_counts
            for layer, choice in enumerate(assignment[level]):
                if choice is Parallelism.MODEL:
                    mp_counts[layer] += 1
        return states

    def tensors_for_level(
        self, level: int, states: Sequence[int]
    ) -> tuple[LayerTensors, ...]:
        """The per-layer tensor records of one level under given states."""
        level_tensors = self._tensors[level]
        return tuple(
            level_tensors[state][layer] for layer, state in enumerate(states)
        )

    def level_cost_table(self, level: int, states: Sequence[int]) -> CostTable:
        """The single-level :class:`CostTable` of one scale-descent outcome.

        ``states[l]`` is layer ``l``'s state index at ``level`` (its mp
        count over the previous levels under parallelism-aware scaling,
        always 0 otherwise).  Pure gather -- no tensor or communication
        re-derivation -- so per-level searches and evaluations inside a
        sweep are O(L) array slicing.
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range for {self.num_levels} levels")
        state_array = np.asarray(states, dtype=np.int64)
        if state_array.shape != (self.num_layers,):
            raise ValueError(
                f"expected {self.num_layers} states, got {state_array.shape}"
            )
        layer_range = np.arange(self.num_layers)
        intra = self._intra[level][layer_range, state_array, :]
        inter = self._inter[level][
            np.arange(max(self.num_layers - 1, 0)), state_array[:-1], :, :
        ]
        return CostTable(
            intra=intra,
            inter=inter,
            tensors=self.tensors_for_level(level, states),
            communication_model=self.communication_model,
        )

    # ------------------------------------------------------------------
    # Batched candidate scoring.
    # ------------------------------------------------------------------

    @property
    def total_bits(self) -> int:
        """Bits needed to encode one full hierarchical assignment."""
        return self.num_levels * self.num_layers

    def score_bits(self, bits: np.ndarray | Sequence[int]) -> np.ndarray:
        """Total communication bytes of a batch of hierarchical bit-patterns.

        Encoding: the deepest-varying ``num_layers`` bits (LSBs) are the
        *last* level's assignment and each level's bits follow the
        ``LayerAssignment.from_bits`` convention -- exactly the order
        ``itertools.product(all_layer_assignments(L), repeat=H)`` visits the
        space, so first-minimum ties match the reference enumeration.
        Totals are bit-exact with
        ``HierarchicalPartitioner.evaluate(...).total_communication_bytes``.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.ndim != 1:
            raise ValueError(f"bits must be one-dimensional, got shape {bits.shape}")
        totals = np.empty(bits.shape[0], dtype=np.float64)
        for start in range(0, bits.shape[0], DEFAULT_CHUNK_SIZE):
            chunk = bits[start : start + DEFAULT_CHUNK_SIZE]
            totals[start : start + chunk.shape[0]] = self._score_chunk(chunk)
        return totals

    def decode_level_bits(self, bits: np.ndarray) -> list[np.ndarray]:
        """Per-level layer-bit matrices ``(N, L)`` for a batch of candidates."""
        num_layers = self.num_layers
        shifts = np.arange(num_layers, dtype=np.int64)
        mask = (1 << num_layers) - 1
        decoded = []
        for level in range(self.num_levels):
            level_bits = (bits >> (num_layers * (self.num_levels - 1 - level))) & mask
            decoded.append((level_bits[:, None] >> shifts) & 1)
        return decoded

    def _score_chunk(self, bits: np.ndarray) -> np.ndarray:
        return self.score_level_bits(self.decode_level_bits(bits))

    def score_level_bits(self, decoded: Sequence[np.ndarray]) -> np.ndarray:
        """Score candidates given per-level ``(N, L)`` 0/1 bit matrices.

        This is the core batched scorer; it also serves candidate spaces
        whose *full* encoding would overflow 64 bits (deep models at many
        levels) as long as the batch itself is enumerable, e.g. the
        restricted sweeps of Figures 9/10.
        """
        if len(decoded) != self.num_levels:
            raise ValueError(
                f"expected {self.num_levels} level bit matrices, got {len(decoded)}"
            )
        num_layers = self.num_layers
        num_candidates = decoded[0].shape[0]
        layer_range = np.arange(num_layers)
        boundary_range = np.arange(max(num_layers - 1, 0))
        totals = np.zeros(num_candidates, dtype=np.float64)
        states = np.zeros((num_candidates, num_layers), dtype=np.int64)
        track_states = self.scaling_mode is ScalingMode.PARALLELISM_AWARE
        for level in range(self.num_levels):
            level_bits = decoded[level]
            # ``states`` stays all-zero for choice-independent scaling modes.
            per_layer = self._intra[level][layer_range, states, level_bits]
            if num_layers > 1:
                per_layer[:, 1:] += self._inter[level][
                    boundary_range,
                    states[:, :-1],
                    level_bits[:, :-1],
                    level_bits[:, 1:],
                ]
            level_totals = _sequential_row_sum(per_layer)
            # ``level.total_bytes`` multiplies by the (power-of-two) pair
            # count before the exact sequential accumulation over levels.
            totals += level_totals * float(1 << level)
            if track_states:
                states = states + level_bits
        return totals

    def argmin_assignment(self) -> tuple[int, float]:
        """First minimum over the full ``2**(H*L)`` space, in product order."""
        if self.total_bits > 62:
            raise ValueError(
                f"cannot enumerate a 2**{self.total_bits} space with 64-bit encodings"
            )
        best_bits = -1
        best_total = np.inf
        space = 1 << self.total_bits
        for start in range(0, space, DEFAULT_CHUNK_SIZE):
            chunk = np.arange(start, min(start + DEFAULT_CHUNK_SIZE, space), dtype=np.int64)
            totals = self._score_chunk(chunk)
            index = int(np.argmin(totals))
            if totals[index] < best_total:
                best_total = float(totals[index])
                best_bits = int(chunk[index])
        return best_bits, best_total

    # ------------------------------------------------------------------
    # Assignment helpers.
    # ------------------------------------------------------------------

    def assignment_to_bits(self, assignment: HierarchicalAssignment) -> int:
        """Encode an assignment with the :meth:`score_bits` bit layout."""
        self._check_assignment(assignment)
        bits = 0
        for level in range(self.num_levels):
            shift = self.num_layers * (self.num_levels - 1 - level)
            bits |= assignment[level].to_bits() << shift
        return bits

    def bits_to_assignment(self, bits: int) -> HierarchicalAssignment:
        """Inverse of :meth:`assignment_to_bits`."""
        mask = (1 << self.num_layers) - 1
        levels = []
        for level in range(self.num_levels):
            shift = self.num_layers * (self.num_levels - 1 - level)
            levels.append(LayerAssignment.from_bits((bits >> shift) & mask, self.num_layers))
        return HierarchicalAssignment(tuple(levels))

    def total_bytes(self, assignment: HierarchicalAssignment) -> float:
        """Total traffic of one hierarchical assignment (fast path)."""
        self._check_assignment(assignment)
        decoded = [
            np.array([[choice.bit for choice in assignment[level]]], dtype=np.int64)
            for level in range(self.num_levels)
        ]
        return float(self.score_level_bits(decoded)[0])

    def level_communication(
        self, assignment: HierarchicalAssignment
    ) -> list[list[tuple[Parallelism, float, float, float]]]:
        """Per-level, per-layer ``(choice, intra, inter_fwd, inter_bwd)`` bytes.

        This is the gather the training simulator consumes; the floats are
        identical to the ones the object path derives from fresh
        ``model_tensors`` lists at every level.
        """
        self._ensure_direction_split()
        states = self.state_indices(assignment)
        records: list[list[tuple[Parallelism, float, float, float]]] = []
        for level in range(self.num_levels):
            level_assignment = assignment[level]
            level_records = []
            for layer, choice in enumerate(level_assignment):
                state = int(states[level, layer])
                intra = float(self._intra[level][layer, state, choice.bit])
                if layer == 0:
                    fwd = bwd = 0.0
                else:
                    previous = level_assignment[layer - 1]
                    boundary_state = int(states[level, layer - 1])
                    fwd = float(
                        self._inter_forward[level][
                            layer - 1, boundary_state, previous.bit, choice.bit
                        ]
                    )
                    bwd = float(
                        self._inter_backward[level][
                            layer - 1, boundary_state, previous.bit, choice.bit
                        ]
                    )
                level_records.append((choice, intra, fwd, bwd))
            records.append(level_records)
        return records

    def check_compatible(
        self,
        model: DNNModel,
        batch_size: int,
        num_levels: int,
        scaling_mode: ScalingMode,
        communication_model: CommunicationModel,
    ) -> None:
        """Raise when this table was compiled for a different configuration.

        Shared by every consumer that accepts an externally supplied table
        (the hierarchical partitioner, the training simulator) so the
        compatibility rules cannot drift between them.
        """
        if (
            self.model is not model
            or self.batch_size != batch_size
            or self.num_levels != num_levels
            or self.scaling_mode is not scaling_mode
            or not self.communication_model.same_costs(communication_model)
        ):
            raise ValueError(
                "cost table was compiled for a different "
                "(model, batch, levels, scaling, communication-model) configuration"
            )

    def _check_assignment(self, assignment: HierarchicalAssignment) -> None:
        if assignment.num_levels != self.num_levels:
            raise ValueError(
                f"assignment has {assignment.num_levels} levels, "
                f"table expects {self.num_levels}"
            )
        if assignment.num_layers != self.num_layers:
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"table has {self.num_layers}"
            )


def compile_cost_table(
    model: DNNModel,
    batch_size: int,
    scales: Sequence[TensorScale] | None = None,
    communication_model: CommunicationModel | None = None,
) -> CostTable:
    """Module-level convenience alias for :meth:`CostTable.compile`."""
    return CostTable.compile(model, batch_size, scales, communication_model)
