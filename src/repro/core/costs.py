"""Vectorized cost-table evaluation engine for the partition search.

The object-based path (:class:`~repro.core.communication.CommunicationModel`
walking :class:`~repro.core.tensors.LayerTensors` lists) is convenient for
reporting but far too slow for the enumeration workloads: the restricted
sweeps of Figures 9/10 and the brute-force validators score up to ``2**22``
candidate assignments, and rebuilding tensor lists plus a
:class:`~repro.core.communication.LayerCommunication` breakdown per candidate
is pure-Python overhead repeated millions of times.

This module compiles the communication model *once* into NumPy arrays and
then scores whole batches of candidates with array operations.  Tables are
parameterized by a :class:`~repro.core.parallelism.StrategySpace` (the
paper's binary dp/mp axis by default):

* :class:`CostTable` -- one hierarchy level.  ``intra[l, c]`` is the
  intra-layer traffic (bytes) of layer ``l`` under strategy code ``c``
  (the index into the table's strategy space); ``inter[e, c, d]`` is the
  inter-layer traffic (bytes) of layer-DAG edge ``e = (src, dst)``
  (``table.edges``) when its endpoints use codes ``c`` and ``d`` -- for a
  chain, edge ``e`` is the historical boundary ``(e, e + 1)``.  The table
  supports the K-way array dynamic program of Algorithm 1 on chains, the
  cut-vertex dynamic program with batched branch-interior enumeration on
  DAGs (:meth:`CostTable.dp_partition`), and batched scoring of arbitrary
  base-K digit-patterns (:meth:`CostTable.score_codes`).
* :class:`HierarchicalCostTable` -- every hierarchy level at once.  Under
  :attr:`~repro.core.tensors.ScalingMode.PARALLELISM_AWARE` scaling a
  layer's tensor amounts at level ``h`` depend only on how many of its
  previous ``h`` choices halved the batch fraction and how many halved the
  weight fraction, so the table stores one cost slice per
  ``(level, halving-state)`` and batched scoring reduces to a gather over
  cumulative per-effect counts.  This is also the scale-descent cache
  used by the sweeps and the training simulator: the per-level
  :class:`~repro.core.tensors.LayerTensors` are derived once per model
  instead of once per candidate.

Bit-exactness
-------------
The vectorized paths are required (and property-tested) to agree *bit for
bit* with the object-based reference path, which remains the oracle:

* table entries are produced by the same :class:`CommunicationModel` calls
  the object path makes, so the stored floats are identical;
* batched totals accumulate per-layer ``intra + inter`` terms sequentially
  (layer 0, then layer 1, ...), reproducing the exact floating-point
  association of ``sum(record.total_bytes for record in breakdown)``;
* the array DP applies the same recurrence with the same tie rule
  (ties prefer the lowest strategy code -- dp first, matching
  :class:`~repro.core.partitioner.TwoWayPartitioner`), and batched argmins
  resolve ties to the lowest digit-pattern, matching the enumeration order
  of the reference brute force.

For the default dp/mp space the base-2 digit encoding *is* the historical
bit encoding, so ``score_bits`` / ``from_bits`` callers see byte-identical
results; those entry points are kept as thin deprecated shims over
``score_codes`` / ``from_codes``.

Breakdown objects are *lazy*: batch scorers return raw totals and only the
winning candidates are materialized into
:class:`~repro.core.result.PartitionResult` /
:class:`~repro.core.communication.LayerCommunication` records, on first
access of ``result.breakdown``.
"""

from __future__ import annotations

import dataclasses
import functools
import warnings
from typing import Iterator, Sequence

import numpy as np

from repro.core import kernels
from repro.core.communication import CommunicationModel
from repro.core.parallelism import (
    DEFAULT_SPACE,
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.result import PartitionResult
from repro.core.strategies import BATCH, NONE, WEIGHT, strategy_spec
from repro.core.tensors import (
    LayerTensors,
    ScalingMode,
    TensorScale,
    layer_tensors,
    model_tensors,
)
from repro.nn.model import DNNModel

#: Candidates scored per NumPy batch; bounds peak memory of the gathered
#: (chunk, L) cost matrices to a few MB while keeping the per-chunk Python
#: overhead negligible.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Largest enumerable packed-integer candidate space (int64 encodings).
_MAX_PACKED_SPACE = 1 << 62

#: Largest branch-interior pattern count the DAG dynamic program enumerates
#: per block (endpoints included).  The enumeration is chunked, so this
#: bounds *time*, not memory; real branching networks keep interiors to a
#: handful of layers, and hitting this limit means the model's branch
#: structure has no small cut decomposition.
DEFAULT_MAX_BLOCK_PATTERNS = 1 << 28

#: Chains shorter than this skip the repetition detector: the plain layer
#: loop finishes before the detection would pay for itself, and keeping
#: every historical (paper-zoo-sized) solve on the unmodified code path
#: makes the memoization a strict no-op for them.
_MEMOIZE_MIN_LAYERS = 32

#: Largest block period the repetition detector probes.  Transformer zoo
#: blocks repeat with period 4 (qkv / proj / up / down); the bound only
#: caps the (vectorized) detection work on aperiodic chains.
_MAX_MEMO_PERIOD = 64

#: Relative slack applied to dominance-pruning lower bounds before they
#: may discard a candidate chunk.  A bound assembled from per-term minima
#: uses a different float association than the exact sequential scorer, so
#: it can exceed a candidate's float total by a few ULPs; shrinking the
#: bound by far more than the worst accumulated rounding error (yet far
#: less than any real cost gap) keeps pruning bit-exact: no chunk holding
#: a first-minimum candidate is ever skipped.
_PRUNE_MARGIN = 1e-9

#: DAGs with fewer cut segments than this skip the block-repetition
#: detector, mirroring :data:`_MEMOIZE_MIN_LAYERS` for the cut-vertex
#: program: every paper-zoo branching network stays on the unmodified
#: path, and only deep residual stacks (``gpt_r``) pay for detection.
_MEMOIZE_MIN_BLOCKS = 16

#: Largest block-space period the DAG repetition detector probes.  A
#: residual transformer's cut segments alternate between the skip-free
#: connector and the skip-spanning interior (period 2); small bound, the
#: per-probe comparisons are tiny slices.
_MAX_BLOCK_PERIOD = 8

#: Test hook: cumulative DAG periodic-block-jump statistics for the
#: process.  ``jumps`` counts successful jumps, ``jumped_blocks`` /
#: ``jumped_layers`` the cut segments / layers they replayed by
#: translation instead of enumeration.
DAG_JUMP_STATS = {"jumps": 0, "jumped_blocks": 0, "jumped_layers": 0}


def _resolve_chunk_size(chunk_size: int | None) -> int:
    """Normalize a public ``chunk_size=`` argument (``None`` = default)."""
    if chunk_size is None:
        return DEFAULT_CHUNK_SIZE
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return int(chunk_size)


# ----------------------------------------------------------------------
# Chain-DP inner loop: NumPy / compiled advancement plus block-repetition
# memoization.  Shared by CostTable.dp_partition and WarmStartDP.solve.
# ----------------------------------------------------------------------


def _advance_chain_numpy(
    intra: np.ndarray,
    inter: np.ndarray,
    parents: np.ndarray,
    frontiers: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """Advance the Algorithm 1 recurrence over layers ``[start, stop)``.

    Reads the frontier (``com``) of layer ``start - 1`` from ``frontiers``
    and writes one parent row and one frontier row per advanced layer --
    the historical ``dp_partition`` loop body, verbatim, with the frontier
    matrix standing in for the rolling ``com`` vector.
    """
    state = np.arange(intra.shape[1])
    com = frontiers[start - 1]
    for layer in range(start, stop):
        candidates = com[:, None] + inter[layer - 1]  # (from, to)
        # argmin resolves ties to the lowest code (dp), matching the
        # reference earliest-strategy-wins scan.
        choice = np.argmin(candidates, axis=0)
        parents[layer - 1] = choice
        com = candidates[choice, state] + intra[layer]
        frontiers[layer] = com


def _chain_advancer(backend: str):
    """The layer-advancement routine for a resolved backend name.

    Both compiled variants share the serial chain kernel: the recurrence
    is sequential in the layer axis, so there is nothing for the
    ``prange`` leg to parallelize.
    """
    if backend in kernels.COMPILED_BACKENDS and kernels.NUMBA_AVAILABLE:
        return kernels.chain_dp_compiled
    return _advance_chain_numpy


def _detect_periodic_region(
    intra: np.ndarray, inter: np.ndarray
) -> tuple[int, int, int] | None:
    """Smallest ``(period, first, stop)`` with transitions ``first:stop`` periodic.

    Transition ``j`` (into layer ``j + 1``) is the cost pair
    ``(inter[j], intra[j + 1])``; two transitions are equivalent when
    their entries are numerically equal, making the DP treat them
    identically.  Periods are probed in ascending order with one
    vectorized shifted comparison each, and the longest run of shift-equal
    transitions wins (an embedding stem before and a classifier head after
    the repeated blocks are the norm, so the periodic region rarely
    reaches either end of the chain).  Requires at least four full periods
    so the stabilization check (step two blocks, jump the rest) has room
    to pay off.  Returns ``None`` on aperiodic chains.
    """
    num_layers = intra.shape[0]
    num_transitions = num_layers - 1
    for period in range(1, min(_MAX_MEMO_PERIOD, num_transitions // 4) + 1):
        # equal[j]: transition j matches transition j + period.
        equal = np.all(inter[period:] == inter[:-period], axis=(1, 2)) & np.all(
            intra[1 + period :] == intra[1 : num_layers - period], axis=1
        )
        # Longest run of consecutive shift-equal transitions.
        padded = np.concatenate(([False], equal, [False]))
        changes = np.flatnonzero(padded[1:] != padded[:-1])
        if changes.size == 0:
            continue
        run_starts = changes[::2]
        run_lengths = changes[1::2] - run_starts
        longest = int(np.argmax(run_lengths))
        first = int(run_starts[longest])
        length = int(run_lengths[longest])
        # ``equal[j]`` ties transition ``j`` to ``j + period``, so the
        # periodic region covers ``length + period`` transitions.
        if (length + period) // period >= 4:
            return period, first, first + length + period
    return None


def _exactness_shift(arrays: Sequence[np.ndarray], magnitude: float) -> int | None:
    """Power-of-two shift making every entry an exact scaled integer.

    When all values are dyadic rationals at scale ``2**shift`` and every
    intermediate magnitude stays below ``2**53 / 2**shift``, IEEE double
    addition of these values is *exact* -- the precondition for replaying
    a converged DP block by translation instead of recomputation.  Returns
    ``None`` when no such shift exists (jump declined, stepping continues).
    """
    for array in arrays:
        if not np.all(np.isfinite(array)):
            return None
    for shift in range(53):
        scale = float(1 << shift)
        if magnitude * scale >= 2.0**53:
            return None
        if all(np.all(array * scale == np.round(array * scale)) for array in arrays):
            return shift
    return None


def _try_periodic_jump(
    intra: np.ndarray,
    inter: np.ndarray,
    parents: np.ndarray,
    frontiers: np.ndarray,
    cursor: int,
    period: int,
    count: int,
) -> bool:
    """Replay ``count`` converged blocks after boundary layer ``cursor``.

    ``cursor`` is the first layer *after* two fully stepped period blocks.
    The jump fires only when the DP has provably entered its steady state:

    * the last two blocks chose identical parent rows, and the frontier
      advanced by a *uniform* per-period increment ``delta`` (max-plus
      theory: the power iteration of a periodic transition matrix
      converges to uniform growth);
    * an exactness certificate holds (:func:`_exactness_shift`): every
      participating value is a bounded dyadic rational, so the float adds
      the skipped stepping *would* perform are exact and therefore equal
      ``previous block + delta`` bit for bit -- including every argmin
      tie, which is decided by exact comparisons of translated values.

    On success the jumped frontier rows are broadcast translations of the
    last stepped block and the parent rows are tiled copies; the caller's
    result is byte-identical to cold stepping.  Returns ``False`` (caller
    keeps stepping) when any certificate fails.
    """
    num_strategies = frontiers.shape[1]
    boundary = frontiers[cursor - 1]
    previous_boundary = frontiers[cursor - period - 1]
    delta = boundary - previous_boundary
    if not np.all(delta == delta[0]):
        return False
    if not np.array_equal(
        parents[cursor - period - 1 : cursor - 1],
        parents[cursor - 2 * period - 1 : cursor - period - 1],
    ):
        return False
    step = float(delta[0])
    intra_block = intra[cursor - period : cursor]
    inter_block = inter[cursor - period - 1 : cursor - 1]
    block_max = max(
        float(np.abs(intra_block).max()), float(np.abs(inter_block).max()), 1.0
    )
    magnitude = (
        float(np.abs(boundary).max())
        + (count + 2) * (abs(step) + block_max * (period + 2))
    )
    shift = _exactness_shift(
        [boundary, np.array([step]), intra_block, inter_block], magnitude
    )
    if shift is None:
        return False
    base_frontiers = frontiers[cursor - period : cursor]  # (period, K)
    base_parents = parents[cursor - period - 1 : cursor - 1]
    offsets = np.arange(1, count + 1, dtype=np.float64) * step
    frontiers[cursor : cursor + count * period] = (
        base_frontiers[None, :, :] + offsets[:, None, None]
    ).reshape(count * period, num_strategies)
    parents[cursor - 1 : cursor - 1 + count * period] = np.tile(
        base_parents, (count, 1)
    )
    return True


def _chain_dp_run(
    intra: np.ndarray,
    inter: np.ndarray,
    start: int,
    parents: np.ndarray,
    frontiers: np.ndarray,
    *,
    backend: str,
    memoize: bool = True,
) -> tuple[np.ndarray, int]:
    """Fill ``parents`` / ``frontiers`` for layers ``[start, L)``.

    The single chain-DP driver behind :meth:`CostTable.dp_partition` and
    :class:`WarmStartDP`: advances the recurrence with the selected
    backend and, when ``memoize`` is on and the chain's transitions repeat
    (transformer blocks), replays converged period blocks by translation
    (:func:`_try_periodic_jump`) instead of stepping them.  Returns the
    final frontier and the number of layers filled by jumps; every filled
    row is bit-exact with cold stepping.
    """
    num_layers = intra.shape[0]
    advance = _chain_advancer(backend)
    if not memoize or num_layers - start < _MEMOIZE_MIN_LAYERS:
        advance(intra, inter, parents, frontiers, start, num_layers)
        return frontiers[num_layers - 1], 0
    detected = _detect_periodic_region(intra, inter)
    if detected is None:
        advance(intra, inter, parents, frontiers, start, num_layers)
        return frontiers[num_layers - 1], 0
    period, first_transition, stop_transition = detected
    # Transition ``j`` feeds layer ``j + 1``: the periodic layers are
    # ``[first_transition + 1, stop_transition + 1)``.
    region_first = first_transition + 1
    region_stop = stop_transition + 1
    anchor = max(start, region_first, 1)
    blocks_behind = -(-(anchor - region_first) // period)  # ceil division
    cursor = region_first + blocks_behind * period  # first block boundary >= anchor
    last_boundary = region_first + ((region_stop - region_first) // period) * period
    if cursor + 2 * period > last_boundary:
        advance(intra, inter, parents, frontiers, start, num_layers)
        return frontiers[num_layers - 1], 0
    advance(intra, inter, parents, frontiers, start, cursor)
    stepped_blocks = 0
    jumped_layers = 0
    while cursor + period <= last_boundary:
        advance(intra, inter, parents, frontiers, cursor, cursor + period)
        stepped_blocks += 1
        cursor += period
        remaining = (last_boundary - cursor) // period
        if stepped_blocks >= 2 and remaining >= 1:
            if _try_periodic_jump(
                intra, inter, parents, frontiers, cursor, period, remaining
            ):
                jumped_layers = remaining * period
                cursor += jumped_layers
                break
    advance(intra, inter, parents, frontiers, cursor, num_layers)
    return frontiers[num_layers - 1], jumped_layers


def _warn_bits_shim(old: str, new: str) -> None:
    """Deprecation warning shared by the historical K=2 bit-encoding shims.

    ``stacklevel=3`` points the warning at the shim's *caller* (helper →
    shim → caller), matching the ``stacklevel=2`` a direct ``warnings.warn``
    inside the shim would use.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} (bit-exact for the default "
        "dp/mp space)",
        DeprecationWarning,
        stacklevel=3,
    )


def _sequential_row_sum(per_layer: np.ndarray) -> np.ndarray:
    """Left-to-right sum along axis 1, matching Python's ``sum()`` exactly.

    ``np.sum`` uses pairwise summation whose rounding can differ from the
    sequential accumulation of the object-based reference path; an explicit
    column loop (cheap: one vector add per layer) guarantees bit-exact
    parity.
    """
    totals = per_layer[:, 0].copy()
    for column in range(1, per_layer.shape[1]):
        totals += per_layer[:, column]
    return totals


def _decode_digits(codes: np.ndarray, num_layers: int, base: int) -> np.ndarray:
    """Base-``base`` digit matrix ``(N, L)`` of packed candidate integers.

    Callers must ensure ``base ** num_layers`` fits the int64 packed
    encoding (:data:`_MAX_PACKED_SPACE`); the public packed-integer entry
    points check and direct deeper models to the decoded-matrix scorers.
    """
    if base == 2:
        shifts = np.arange(num_layers, dtype=np.int64)
        return (codes[:, None] >> shifts) & 1
    powers = base ** np.arange(num_layers, dtype=np.int64)
    return (codes[:, None] // powers) % base


def _chain_edges(num_layers: int) -> tuple[tuple[int, int], ...]:
    """The canonical edge list of a linear chain of ``num_layers`` layers."""
    return tuple((index, index + 1) for index in range(num_layers - 1))


def _normalize_edges(
    edges: Sequence[tuple[int, int]] | None, num_layers: int
) -> tuple[tuple[int, int], ...]:
    """Coerce an edge list to int tuples, defaulting ``None`` to the chain."""
    if edges is None:
        return _chain_edges(num_layers)
    return tuple((int(source), int(destination)) for source, destination in edges)


def _fill_cost_block(
    records: Sequence[LayerTensors],
    specs: Sequence,
    members: Sequence[Parallelism],
    communication_model: CommunicationModel,
    intra: np.ndarray | None = None,
    inter: np.ndarray | None = None,
    inter_forward: np.ndarray | None = None,
    inter_backward: np.ndarray | None = None,
    edges: Sequence[tuple[int, int]] | None = None,
) -> None:
    """Fill ``(L, K)`` intra / ``(E, K, K)`` inter cost blocks in place.

    ``edges`` is the canonical edge list the ``inter`` axis is indexed by
    (``None`` = chain, where edge ``e`` is the boundary ``(e, e + 1)``);
    the boundary tensor record of an edge is its *source* layer's.

    This is the cost-model seam of the table compiler: a *calibrated*
    model (profiled cost packs, ``is_calibrated``) owns per-entry scaling
    and latency terms, so every entry is produced by the same byte-level
    methods the object-based oracle evaluates -- tables and breakdowns
    agree bit for bit by construction.  For the plain analytic model the
    registry dispatch is hoisted out of the loops (a 512-layer search
    compiles thousands of entries), and the arithmetic inlines
    ``CommunicationModel.intra_layer_bytes`` / ``inter_layer_bytes`` /
    the directional splits exactly -- same additions and multiplications
    in the same order -- so the stored floats are identical to the object
    path's.  This is the single copy of that inlined arithmetic; every
    table compilation routes through it.
    """
    if edges is None:
        edges = _chain_edges(len(records))
    model = communication_model
    if model.is_calibrated:
        if intra is not None:
            for index, record in enumerate(records):
                for code, member in enumerate(members):
                    intra[index, code] = model.intra_layer_bytes(record, member)
        for edge_index, (source, _destination) in enumerate(edges):
            boundary = records[source]
            for q_code, current in enumerate(members):
                for p_code, previous in enumerate(members):
                    if inter is not None:
                        inter[edge_index, p_code, q_code] = model.inter_layer_bytes(
                            previous, current, boundary
                        )
                    if inter_forward is not None:
                        inter_forward[edge_index, p_code, q_code] = (
                            model.inter_layer_forward_bytes(previous, current, boundary)
                        )
                    if inter_backward is not None:
                        inter_backward[edge_index, p_code, q_code] = (
                            model.inter_layer_backward_bytes(previous, current, boundary)
                        )
        return
    bytes_per_element = model.bytes_per_element
    pair_factor = model.pair_factor
    if intra is not None:
        for index, record in enumerate(records):
            for code, spec in enumerate(specs):
                intra[index, code] = (
                    spec.intra_elements(record) * bytes_per_element * pair_factor
                )
    for edge_index, (source, _destination) in enumerate(edges):
        boundary = records[source]
        for q_code, spec in enumerate(specs):
            forward = spec.inter_forward_elements
            backward = spec.inter_backward_elements
            for p_code, previous in enumerate(members):
                if inter is not None:
                    inter[edge_index, p_code, q_code] = (
                        (forward(previous, boundary) + backward(previous, boundary))
                        * bytes_per_element
                        * pair_factor
                    )
                if inter_forward is not None:
                    inter_forward[edge_index, p_code, q_code] = (
                        forward(previous, boundary) * bytes_per_element * pair_factor
                    )
                if inter_backward is not None:
                    inter_backward[edge_index, p_code, q_code] = (
                        backward(previous, boundary) * bytes_per_element * pair_factor
                    )


@dataclasses.dataclass(frozen=True, eq=False)
class CostTable:
    """Compiled per-layer communication costs for one hierarchy level.

    Identity equality (``eq=False``): the ndarray fields make a generated
    value ``__eq__`` raise, and two independently compiled tables are never
    meaningfully "the same" object to a cache anyway.

    Attributes
    ----------
    intra:
        ``(L, K)`` float array; ``intra[l, c]`` is the Table-1 intra-layer
        traffic (bytes) of layer ``l`` under strategy code ``c``.
    inter:
        ``(E, K, K)`` float array; ``inter[e, c, d]`` is the Table-2
        inter-layer traffic (bytes) of edge ``e = (src, dst)`` of the layer
        DAG when ``src`` uses code ``c`` and ``dst`` uses code ``d``.  For
        a chain ``E = L - 1`` and edge ``e`` is the historical boundary
        ``(e, e + 1)``.
    tensors:
        The tensor records the table was compiled from, kept so winning
        candidates can lazily materialize their full breakdown through the
        object-based reference path.
    communication_model:
        The model used to compile the table (and to materialize breakdowns).
    strategies:
        The strategy space defining the code axis (dp/mp by default).
    edges:
        The canonical ``(source, destination)`` edge list the ``inter``
        axis is indexed by (ordered by destination, then input position);
        ``None`` normalizes to the chain.
    backend:
        Kernel backend for the search hot paths: ``"numpy"`` (the
        vectorized loops), ``"compiled"`` (numba ``@njit`` kernels for
        the chain DP, the DAG cut-vertex DP and the batched scorers,
        silently falling back to NumPy when numba is absent),
        ``"compiled-parallel"`` (the same kernels with ``prange``
        candidate scoring), or ``None`` to follow the process default
        (:func:`repro.core.kernels.get_default_backend`), resolved at
        each use.  Backends are bit-exact with each other.
    """

    intra: np.ndarray
    inter: np.ndarray
    tensors: tuple[LayerTensors, ...]
    communication_model: CommunicationModel
    strategies: StrategySpace = DEFAULT_SPACE
    edges: tuple[tuple[int, int], ...] | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "edges", _normalize_edges(self.edges, len(self.tensors))
        )
        kernels.validate_backend(self.backend)
        kernels.warn_numba_fallback(self.backend)

    @functools.cached_property
    def is_chain(self) -> bool:
        """True when the edge list is the historical linear chain."""
        return self.edges == _chain_edges(self.num_layers)

    @functools.cached_property
    def _kernel_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(edge_index, source, destination)`` arrays for the DAG kernels.

        Grouped by destination with a *stable* sort, so each merge
        layer's incoming edges keep their canonical relative order and
        the kernels' per-destination accumulation is bit-exact with the
        NumPy edge loop.
        """
        order = sorted(range(len(self.edges)), key=lambda e: self.edges[e][1])
        edge_index = np.array(order, dtype=np.int64)
        edge_source = np.array(
            [self.edges[e][0] for e in order], dtype=np.int64
        )
        edge_destination = np.array(
            [self.edges[e][1] for e in order], dtype=np.int64
        )
        return edge_index, edge_source, edge_destination

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_tensors(
        cls,
        tensors: Sequence[LayerTensors],
        communication_model: CommunicationModel | None = None,
        strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
        edges: Sequence[tuple[int, int]] | None = None,
        backend: str | None = None,
    ) -> "CostTable":
        """Compile the table from per-layer tensor amounts.

        ``edges`` is the layer DAG's canonical edge list; omitted it
        defaults to the chain, which keeps every historical call site (and
        its outputs) untouched.
        """
        tensors = tuple(tensors)
        if not tensors:
            raise ValueError("cannot build a cost table for zero layers")
        space = StrategySpace.parse(strategies)
        model = communication_model or CommunicationModel()
        edge_list = _normalize_edges(edges, len(tensors))
        num_strategies = space.size
        intra = np.empty((len(tensors), num_strategies), dtype=np.float64)
        inter = np.zeros(
            (len(edge_list), num_strategies, num_strategies), dtype=np.float64
        )
        _fill_cost_block(
            tensors,
            [strategy_spec(member) for member in space],
            space.members,
            model,
            intra=intra,
            inter=inter,
            edges=edge_list,
        )
        return cls(
            intra=intra,
            inter=inter,
            tensors=tensors,
            communication_model=model,
            strategies=space,
            edges=edge_list,
            backend=backend,
        )

    @classmethod
    def compile(
        cls,
        model: DNNModel,
        batch_size: int,
        scales: Sequence[TensorScale] | None = None,
        communication_model: CommunicationModel | None = None,
        strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
        backend: str | None = None,
    ) -> "CostTable":
        """Compile the table for ``model`` at ``batch_size`` (and ``scales``)."""
        return cls.from_tensors(
            model_tensors(model, batch_size, scales),
            communication_model,
            strategies,
            edges=model.edges,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.tensors)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_strategies(self) -> int:
        """The base ``K`` of the candidate digit encoding."""
        return self.strategies.size

    @property
    def num_assignments(self) -> int:
        """Size of the full assignment space for this level (``K**L``)."""
        return self.strategies.num_assignments(self.num_layers)

    # ------------------------------------------------------------------
    # Algorithm 1 as a K-way array DP over the table.
    # ------------------------------------------------------------------

    def dp_partition(self, *, memoize: bool = True) -> PartitionResult:
        """Optimal per-layer assignment over the table (Algorithm 1, generalized).

        For a chain this is exactly the recurrence of
        :meth:`~repro.core.partitioner.TwoWayPartitioner.partition_tensors_reference`
        -- same additions in the same order, ties preferring the lowest
        strategy code (dp first) -- so the returned optimum is bit-exact
        with the object-based oracle, byte-identical to the historical
        array DP.  The chain recurrence runs on the table's
        :attr:`backend` and, with ``memoize`` on (the default), replays
        converged repeated-block transitions by translation instead of
        stepping them (:func:`_chain_dp_run`) -- both bit-exact with the
        cold NumPy loop, which ``memoize=False`` forces for oracle runs.
        For a DAG the table runs the same dynamic program over the model's
        *cut vertices* (layers no edge jumps across), scoring each branch
        interior by batched enumeration (:meth:`_dp_partition_dag`); the
        optimum value equals the brute-force minimum of
        :meth:`score_codes` over the full space, float for float.
        ``memoize`` applies there too: repeated cut segments (residual
        transformer blocks, ``gpt_r``) are replayed by translation under
        the same exactness certificate as the chain jump.  The per-layer
        breakdown of the winner is materialized lazily.
        """
        if not self.is_chain:
            return self._dp_partition_dag(memoize=memoize)
        num_layers = self.num_layers
        parents = np.empty((num_layers - 1, self.num_strategies), dtype=np.int8)
        frontiers = np.empty((num_layers, self.num_strategies), dtype=np.float64)
        frontiers[0] = self.intra[0]  # layer 0 pays only its intra term
        com, _ = _chain_dp_run(
            self.intra,
            self.inter,
            1,
            parents,
            frontiers,
            backend=kernels.resolve_backend(self.backend),
            memoize=memoize,
        )

        last = int(np.argmin(com))  # tie -> lowest code, the reference rule
        total = float(com[last])
        # Backtrack over plain Python lists: scalar ndarray indexing costs
        # ~4x more per step, and at transformer depth the backtrack would
        # otherwise dominate the memoized solve.  The codes are exact
        # integers either way.
        parent_rows = parents.tolist()
        codes_per_layer = [0] * num_layers
        code = codes_per_layer[-1] = last
        for layer in range(num_layers - 2, -1, -1):
            code = codes_per_layer[layer] = parent_rows[layer][code]

        members = self.strategies.members
        assignment = LayerAssignment(
            tuple(members[code] for code in codes_per_layer)
        )
        return self.lazy_result(assignment, total)

    def cut_vertices(self) -> list[int]:
        """Layers no edge jumps across (every source-to-sink path visits them).

        A layer ``v`` is a cut vertex when no edge ``(a, b)`` satisfies
        ``a < v < b``.  The first and last layers always qualify; on a
        chain every layer does.  Consecutive cut vertices delimit the
        *branch interiors* the DAG dynamic program enumerates.
        """
        interior = [False] * self.num_layers
        for source, destination in self.edges:
            for vertex in range(source + 1, destination):
                interior[vertex] = True
        return [vertex for vertex in range(self.num_layers) if not interior[vertex]]

    def _dp_partition_dag(self, *, memoize: bool = True) -> PartitionResult:
        """Cut-vertex dynamic program with batched branch-interior enumeration.

        The layer order is a topological linearization, so between two
        consecutive cut vertices ``u < v`` every edge stays inside the
        block ``[u, v]``.  The program keeps ``com[c]`` -- the minimal
        accumulated cost of the prefix through the current cut vertex
        under code ``c``, built with the exact left-to-right per-layer
        association of :meth:`score_codes` -- and advances one block at a
        time (:meth:`_advance_dag_block`) by enumerating all
        ``K**(I + 2)`` code patterns of the block (``I`` interior layers
        plus both endpoints) in batched,
        :data:`DEFAULT_CHUNK_SIZE`-chunked operations (peak memory stays
        a few MB regardless of the block size).  IEEE addition is
        monotone, so the per-state minima compose exactly and the final
        optimum equals the brute-force minimum of :meth:`score_codes`,
        float for float; ties resolve to the lowest pattern digits
        (dp-first per layer).

        With ``memoize`` on, repeated cut segments -- the residual
        transformer stacks of ``gpt_r``, where every block's costs and
        local edge shape recur with a small period -- are detected up
        front (:meth:`_detect_periodic_blocks`) and, once the block map
        provably reaches its steady state (uniform ``com`` growth per
        period, identical block argmins, and the dyadic exactness
        certificate of :func:`_exactness_shift`), the remaining periods
        are replayed by translation instead of enumeration: ``com``
        advances by ``count * step`` and the stepped period's argmin
        arrays are reused verbatim.  This is the cut-vertex analogue of
        the chain-DP jump in :func:`_chain_dp_run`, byte-identical to
        cold stepping for the same reasons; ``memoize=False`` forces the
        full enumeration for oracle runs.
        """
        num_strategies = self.num_strategies
        cuts = self.cut_vertices()
        blocks = list(zip(cuts, cuts[1:]))
        com = self.intra[0].copy()  # layer 0 has no incoming edges
        block_plans: list[tuple[int, int, int, np.ndarray]] = []
        detected = None
        if memoize and len(blocks) >= _MEMOIZE_MIN_BLOCKS:
            detected = self._detect_periodic_blocks(blocks)
        # com entering block ``b`` (filled as stepping reaches ``b``);
        # the jump certificate compares boundaries one period apart.
        boundary_coms: list[np.ndarray | None] = [None] * (len(blocks) + 1)
        index = 0
        while index < len(blocks):
            boundary_coms[index] = com
            if detected is not None:
                period, first, stop = detected
                aligned = index >= first + 2 * period and (index - first) % period == 0
                remaining = (stop - index) // period if aligned else 0
                if remaining >= 1:
                    jumped_com = self._try_periodic_block_jump(
                        blocks,
                        block_plans,
                        boundary_coms,
                        index,
                        period,
                        remaining,
                    )
                    if jumped_com is not None:
                        com = jumped_com
                        index += remaining * period
                        # One region per table; later blocks step normally.
                        detected = None
                        continue
            block_start, block_end = blocks[index]
            best, best_rest = self._advance_dag_block(com, block_start, block_end)
            com = best
            block_plans.append(
                (block_start, block_end, block_end - block_start - 1, best_rest)
            )
            index += 1

        last = int(np.argmin(com))  # tie -> lowest code
        total = float(com[last])
        codes_per_layer = np.zeros(self.num_layers, dtype=np.int64)
        codes_per_layer[cuts[-1]] = last
        for block_start, block_end, interior_count, argmin_rest in reversed(block_plans):
            rest = int(argmin_rest[codes_per_layer[block_end]])
            codes_per_layer[block_start] = rest % num_strategies
            rest //= num_strategies
            for offset in range(interior_count):
                codes_per_layer[block_start + 1 + offset] = rest % num_strategies
                rest //= num_strategies

        members = self.strategies.members
        assignment = LayerAssignment(
            tuple(members[int(code)] for code in codes_per_layer)
        )
        return self.lazy_result(assignment, total)

    def _block_local_edges(
        self, block_start: int, block_end: int
    ) -> list[tuple[int, int, int]]:
        """``(edge_index, local_source, local_destination)`` of one cut segment.

        Local coordinates are relative to ``block_start``; an edge belongs
        to the block that contains its destination (the entering cut
        vertex's own incoming edges were settled by the previous block).
        """
        return [
            (edge_index, source - block_start, destination - block_start)
            for edge_index, (source, destination) in enumerate(self.edges)
            if block_start < destination <= block_end
        ]

    def _detect_periodic_blocks(
        self, blocks: list[tuple[int, int]]
    ) -> tuple[int, int, int] | None:
        """Smallest ``(period, first, stop)`` with blocks ``first:stop`` periodic.

        Block ``b`` matches block ``b + period`` when the two cut
        segments have the same local shape (layer span and local edge
        endpoints) and numerically equal cost entries: the intra rows
        past the entering cut vertex and, pairing the blocks' local edge
        lists positionally, each edge's inter table.  Equal costs make
        the block maps identical functions of ``com``, the precondition
        for the steady-state jump.  As in :func:`_detect_periodic_region`
        the longest run wins and at least four full periods are required;
        returns ``None`` otherwise.
        """
        num_blocks = len(blocks)
        shapes: list[tuple[int, tuple[tuple[int, int], ...]]] = []
        edge_lists: list[list[int]] = []
        for block_start, block_end in blocks:
            local_edges = self._block_local_edges(block_start, block_end)
            shapes.append(
                (
                    block_end - block_start,
                    tuple((source, destination) for _, source, destination in local_edges),
                )
            )
            edge_lists.append([edge_index for edge_index, _, _ in local_edges])

        def matches(left: int, right: int) -> bool:
            if shapes[left] != shapes[right]:
                return False
            left_start, left_end = blocks[left]
            right_start, right_end = blocks[right]
            if not np.array_equal(
                self.intra[left_start + 1 : left_end + 1],
                self.intra[right_start + 1 : right_end + 1],
            ):
                return False
            for left_edge, right_edge in zip(edge_lists[left], edge_lists[right]):
                if not np.array_equal(self.inter[left_edge], self.inter[right_edge]):
                    return False
            return True

        for period in range(1, min(_MAX_BLOCK_PERIOD, num_blocks // 4) + 1):
            best_first = best_length = 0
            run_start = run_length = 0
            for position in range(num_blocks - period):
                if matches(position, position + period):
                    if run_length == 0:
                        run_start = position
                    run_length += 1
                    if run_length > best_length:
                        best_first, best_length = run_start, run_length
                else:
                    run_length = 0
            if best_length and (best_length + period) // period >= 4:
                return period, best_first, best_first + best_length + period
        return None

    def _try_periodic_block_jump(
        self,
        blocks: list[tuple[int, int]],
        block_plans: list[tuple[int, int, int, np.ndarray]],
        boundary_coms: list[np.ndarray | None],
        index: int,
        period: int,
        count: int,
    ) -> np.ndarray | None:
        """Replay ``count`` converged periods of cut segments by translation.

        ``index`` is the next block to process, with at least two full
        periods stepped immediately before it.  Mirrors
        :func:`_try_periodic_jump` at block granularity:

        * the entering ``com`` advanced by a *uniform* increment ``step``
          over the last period, and the last two periods produced
          identical per-block argmin (``best_rest``) arrays -- the block
          map has reached its max-plus steady state;
        * the exactness certificate of :func:`_exactness_shift` holds for
          every participating value (boundary ``com``, ``step``, and one
          period's intra rows and inter tables), so the float adds the
          skipped enumeration *would* perform are exact and equal
          ``previous period + step`` bit for bit, including every
          strict-``<`` tie.

        On success appends the replayed block plans (reusing the stepped
        period's ``best_rest`` arrays) and returns the translated ``com``;
        returns ``None`` (caller keeps stepping) when any check fails.
        """
        com = boundary_coms[index]
        previous = boundary_coms[index - period]
        delta = com - previous
        if not np.all(delta == delta[0]):
            return None
        for offset in range(period):
            if not np.array_equal(
                block_plans[index - period + offset][3],
                block_plans[index - 2 * period + offset][3],
            ):
                return None
        step = float(delta[0])
        period_start = blocks[index - period][0]
        period_end = blocks[index - 1][1]
        intra_period = self.intra[period_start + 1 : period_end + 1]
        edge_indices = [
            edge_index
            for edge_index, (_, destination) in enumerate(self.edges)
            if period_start < destination <= period_end
        ]
        inter_period = self.inter[edge_indices]
        block_max = max(
            float(np.abs(intra_period).max()),
            float(np.abs(inter_period).max()) if edge_indices else 0.0,
            1.0,
        )
        period_terms = (period_end - period_start) + len(edge_indices)
        magnitude = float(np.abs(com).max()) + (count + 2) * (
            abs(step) + block_max * (period_terms + 2)
        )
        shift = _exactness_shift(
            [com, np.array([step]), intra_period, inter_period], magnitude
        )
        if shift is None:
            return None
        for jumped in range(count * period):
            source_plan = block_plans[index - period + (jumped % period)]
            block_start, block_end = blocks[index + jumped]
            block_plans.append(
                (block_start, block_end, block_end - block_start - 1, source_plan[3])
            )
        DAG_JUMP_STATS["jumps"] += 1
        DAG_JUMP_STATS["jumped_blocks"] += count * period
        DAG_JUMP_STATS["jumped_layers"] += (
            blocks[index + count * period - 1][1] - blocks[index][0]
        )
        return com + float(count) * step

    def _advance_dag_block(
        self, com: np.ndarray, block_start: int, block_end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance the cut-vertex DP across one block ``[block_start, block_end]``.

        ``com`` is the accumulated prefix cost through the entering cut
        vertex; returns ``(best, best_rest)`` -- the new frontier indexed
        by the closing cut vertex's code, and each frontier entry's
        winning low-digit pattern.  On a compiled backend the per-chunk
        candidate totals come from the numba block scorer
        (:func:`repro.core.kernels.dag_block_totals_compiled`, bit-exact
        with the NumPy body); chunking, dominance pruning and the
        strict-``<`` end-code scan stay in shared NumPy code, so every
        backend walks the identical sequence of comparisons.
        """
        num_strategies = self.num_strategies
        interior_count = block_end - block_start - 1
        num_patterns = num_strategies ** (interior_count + 2)
        if num_patterns > DEFAULT_MAX_BLOCK_PATTERNS:
            raise ValueError(
                f"branch interior between layers {block_start} and "
                f"{block_end} spans {interior_count + 2} layers; "
                f"{num_strategies}**{interior_count + 2} patterns exceed "
                f"the enumeration limit of {DEFAULT_MAX_BLOCK_PATTERNS}"
            )
        block_layers = interior_count + 2
        block_edges = self._block_local_edges(block_start, block_end)
        use_kernel = kernels.compiled_active(self.backend)
        if use_kernel:
            # Group the block's edges by local destination (stably) for
            # the kernel's single-pass walk; arrays are materialized once
            # per block, not per chunk.
            order = sorted(range(len(block_edges)), key=lambda e: block_edges[e][2])
            kernel_edge_index = np.array(
                [block_edges[e][0] for e in order], dtype=np.int64
            )
            kernel_edge_source = np.array(
                [block_edges[e][1] for e in order], dtype=np.int64
            )
            kernel_edge_destination = np.array(
                [block_edges[e][2] for e in order], dtype=np.int64
            )
            kernel_intra = np.ascontiguousarray(self.intra)
            kernel_inter = np.ascontiguousarray(self.inter)
            kernel_com = np.ascontiguousarray(com)
            parallel = kernels.parallel_active(self.backend)
        # The block-end code is the most significant digit; patterns
        # split as ``rest + group_size * end_code``.
        group_size = num_patterns // num_strategies
        best = np.full(num_strategies, np.inf)
        best_rest = np.zeros(num_strategies, dtype=np.int64)
        # Digit-aligned chunking (largest K**free <= DEFAULT_CHUNK_SIZE)
        # keeps every chunk's high digits constant, enabling dominance
        # pruning.  Chunk boundaries never affect the result: the
        # strict-< running minima scan codes in ascending order, so
        # any partition of that order yields the identical winner.
        free_digits = 0
        chunk_span = 1
        while (
            free_digits < block_layers
            and chunk_span * num_strategies <= DEFAULT_CHUNK_SIZE
        ):
            chunk_span *= num_strategies
            free_digits += 1
        # Lower-bound scaffolding over the free (low) digits: the
        # cheapest prefix state, each free layer's cheapest intra
        # entry, each free-internal edge's cheapest inter entry
        # (costs are nonnegative byte counts, so per-term minima
        # bound any completion from below).
        free_floor = float(com.min())
        for local in range(1, free_digits):
            free_floor += float(self.intra[block_start + local].min())
        fixed_edges = []
        cross_into_fixed = []
        cross_into_free = []
        for edge_index, local_source, local_destination in block_edges:
            if local_source < free_digits and local_destination < free_digits:
                free_floor += float(self.inter[edge_index].min())
            elif local_source >= free_digits:
                fixed_edges.append((edge_index, local_source, local_destination))
            elif local_destination >= free_digits:
                cross_into_fixed.append((edge_index, local_destination))
            else:  # pragma: no cover - edges run forward (source < dest)
                cross_into_free.append((edge_index, local_source))
        for start in range(0, num_patterns, chunk_span):
            if free_digits < block_layers:
                fixed = _decode_digits(
                    np.array([start // chunk_span], dtype=np.int64),
                    block_layers - free_digits,
                    num_strategies,
                )[0]
                bound = free_floor
                for local in range(free_digits, block_layers):
                    bound += float(
                        self.intra[block_start + local, fixed[local - free_digits]]
                    )
                for edge_index, local_source, local_destination in fixed_edges:
                    bound += float(
                        self.inter[
                            edge_index,
                            fixed[local_source - free_digits],
                            fixed[local_destination - free_digits],
                        ]
                    )
                for edge_index, local_destination in cross_into_fixed:
                    bound += float(
                        self.inter[
                            edge_index, :, fixed[local_destination - free_digits]
                        ].min()
                    )
                for edge_index, local_source in cross_into_free:  # pragma: no cover
                    bound += float(
                        self.inter[
                            edge_index, fixed[local_source - free_digits], :
                        ].min()
                    )
                incumbent = float(best.max())
                # Strictly-worse chunks cannot improve (or first-tie)
                # any end code's running minimum; the margin absorbs
                # the bound's different float association, keeping
                # the scan's output byte-identical to the unpruned
                # enumeration.
                if bound * (1.0 - _PRUNE_MARGIN) > incumbent:
                    continue
            codes = np.arange(
                start, min(start + chunk_span, num_patterns), dtype=np.int64
            )
            if use_kernel:
                totals = np.empty(codes.shape[0], dtype=np.float64)
                kernels.dag_block_totals_compiled(
                    kernel_com,
                    kernel_intra,
                    kernel_inter,
                    kernel_edge_index,
                    kernel_edge_source,
                    kernel_edge_destination,
                    block_start,
                    block_layers,
                    num_strategies,
                    start,
                    totals,
                    parallel=parallel,
                )
            else:
                decoded = _decode_digits(codes, block_layers, num_strategies)
                # Column 0 carries the accumulated prefix cost (the cut
                # vertex's own term is already inside ``com``); later
                # columns carry ``intra + (sequential sum of incoming-edge
                # inters)`` exactly like the batched scorer.
                per_layer = np.empty((codes.shape[0], block_layers), dtype=np.float64)
                per_layer[:, 0] = com[decoded[:, 0]]
                for local in range(1, block_layers):
                    per_layer[:, local] = self.intra[block_start + local][
                        decoded[:, local]
                    ]
                inter_acc = np.zeros_like(per_layer)
                for edge_index, local_source, local_destination in block_edges:
                    inter_acc[:, local_destination] += self.inter[
                        edge_index,
                        decoded[:, local_source],
                        decoded[:, local_destination],
                    ]
                per_layer[:, 1:] += inter_acc[:, 1:]
                totals = _sequential_row_sum(per_layer)
            end_codes = codes // group_size
            # Strict ``<`` against the running minima keeps the first
            # (lowest-pattern) winner across ascending chunks, matching
            # the unchunked group-argmin tie rule.
            for end_code in np.unique(end_codes):
                mask = end_codes == end_code
                subset = totals[mask]
                index = int(np.argmin(subset))
                if subset[index] < best[end_code]:
                    best[end_code] = subset[index]
                    best_rest[end_code] = codes[mask][index] % group_size
        return best, best_rest

    # ------------------------------------------------------------------
    # Batched scoring of candidate digit-patterns.
    # ------------------------------------------------------------------

    def score_codes(
        self, codes: np.ndarray | Sequence[int], chunk_size: int | None = None
    ) -> np.ndarray:
        """Total communication bytes for a batch of packed digit-patterns.

        ``codes`` encodes one candidate per element with the
        :meth:`~repro.core.parallelism.LayerAssignment.from_codes`
        convention (least-significant digit = layer 0, digit value =
        strategy code).  Returns a float array of the same length whose
        entries are bit-exact with ``CommunicationModel.total_bytes`` on
        the decoded assignments.

        ``chunk_size`` bounds the peak memory of the gathered ``(chunk,
        L)`` cost matrices (``None`` = :data:`DEFAULT_CHUNK_SIZE`); each
        candidate is scored independently, so every chunk size returns
        byte-identical totals.
        """
        if self.num_assignments > _MAX_PACKED_SPACE:
            # base ** layer powers would overflow int64 and decode garbage
            # digits; deep models must score decoded assignments instead.
            raise ValueError(
                f"a {self.num_strategies}**{self.num_layers} space overflows "
                "the 64-bit packed encoding; score assignments via "
                "total_bytes() instead"
            )
        step = _resolve_chunk_size(chunk_size)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError(f"codes must be one-dimensional, got shape {codes.shape}")
        totals = np.empty(codes.shape[0], dtype=np.float64)
        for start in range(0, codes.shape[0], step):
            chunk = codes[start : start + step]
            totals[start : start + chunk.shape[0]] = self._score_chunk(chunk)
        return totals

    def score_bits(self, bits: np.ndarray | Sequence[int]) -> np.ndarray:
        """Deprecated shim: the historical name of :meth:`score_codes`.

        For the default dp/mp space the base-2 digit encoding is the bit
        encoding, so the two are interchangeable (and bit-exact).
        """
        _warn_bits_shim("CostTable.score_bits", "CostTable.score_codes")
        return self.score_codes(bits)

    def _score_chunk(self, codes: np.ndarray) -> np.ndarray:
        return self._score_decoded(
            _decode_digits(codes, self.num_layers, self.num_strategies)
        )

    def _score_decoded(self, decoded: np.ndarray) -> np.ndarray:
        """Score candidates given an ``(N, L)`` strategy-code matrix.

        Depth-safe core scorer: unlike the packed-integer entry points it
        has no 64-bit encoding limit, so single assignments of arbitrarily
        deep models route through it.  On the compiled backends both chain
        and DAG tables dispatch to the numba scorer kernels (bit-exact;
        see :mod:`repro.core.kernels`), with ``"compiled-parallel"``
        selecting the ``prange`` variants.
        """
        num_layers = self.num_layers
        if kernels.compiled_active(self.backend):
            totals = np.empty(decoded.shape[0], dtype=np.float64)
            parallel = kernels.parallel_active(self.backend)
            decoded_codes = np.ascontiguousarray(decoded, dtype=np.int64)
            if self.is_chain:
                kernels.score_decoded_chain_compiled(
                    np.ascontiguousarray(self.intra),
                    np.ascontiguousarray(self.inter),
                    decoded_codes,
                    totals,
                    parallel=parallel,
                )
            else:
                edge_index, edge_source, edge_destination = self._kernel_edges
                kernels.score_decoded_dag_compiled(
                    np.ascontiguousarray(self.intra),
                    np.ascontiguousarray(self.inter),
                    edge_index,
                    edge_source,
                    edge_destination,
                    decoded_codes,
                    totals,
                    parallel=parallel,
                )
            return totals
        per_layer = self.intra[np.arange(num_layers), decoded]  # (N, L)
        if self.is_chain:
            if num_layers > 1:
                boundary = np.arange(num_layers - 1)
                # One add per layer term keeps the ``intra + inter``
                # association of LayerCommunication.total_bytes.
                per_layer[:, 1:] += self.inter[boundary, decoded[:, :-1], decoded[:, 1:]]
        else:
            # A merge layer has several incoming edges, so its inter terms
            # are accumulated (in canonical edge order) into a separate
            # buffer first and added to the intra term once -- the
            # ``intra + (e1 + e2 + ...)`` association of the object path.
            inter_acc = np.zeros_like(per_layer)
            for edge_index, (source, destination) in enumerate(self.edges):
                inter_acc[:, destination] += self.inter[
                    edge_index, decoded[:, source], decoded[:, destination]
                ]
            per_layer += inter_acc
        return _sequential_row_sum(per_layer)

    def iter_all_codes(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[np.ndarray]:
        """Chunked enumeration of the full ``K**L`` digit-pattern space."""
        if self.num_assignments > _MAX_PACKED_SPACE:
            raise ValueError(
                f"cannot enumerate a {self.num_strategies}**{self.num_layers} "
                "space with 64-bit packed encodings"
            )
        for start in range(0, self.num_assignments, chunk_size):
            stop = min(start + chunk_size, self.num_assignments)
            yield np.arange(start, stop, dtype=np.int64)

    def iter_all_bits(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[np.ndarray]:
        """Deprecated shim: the historical name of :meth:`iter_all_codes`."""
        _warn_bits_shim("CostTable.iter_all_bits", "CostTable.iter_all_codes")
        return self.iter_all_codes(chunk_size)

    def argmin_assignment(
        self,
        *,
        chunk_size: int | None = None,
        prune: bool = False,
        upper_bound: float | None = None,
    ) -> tuple[int, float]:
        """Brute-force optimum over all ``K**L`` assignments.

        Returns ``(codes, total_bytes)`` of the first minimum in
        enumeration order (lowest digit-pattern wins ties), matching the
        reference strict-``<`` scan of the object-based brute force.

        With ``prune`` on, the scan becomes a branch-and-bound: chunks are
        aligned to digit boundaries, a per-chunk lower bound (exact fixed
        high-digit cost plus per-term minima over the free digits; every
        cost is a nonnegative byte count) is compared against the running
        incumbent -- seeded from ``upper_bound`` when given, e.g. by a
        preceding :meth:`dp_partition` -- and strictly-dominated chunks
        are skipped without scoring.  The margined strict comparison
        (:data:`_PRUNE_MARGIN`) guarantees no chunk containing a first
        minimum is ever discarded, so the returned pair is byte-identical
        to the unpruned scan.  ``chunk_size`` bounds peak memory either
        way.
        """
        step = _resolve_chunk_size(chunk_size)
        if prune:
            return self._argmin_pruned(step, upper_bound)
        best_codes = -1
        best_total = np.inf
        for chunk in self.iter_all_codes(step):
            totals = self._score_chunk(chunk)
            index = int(np.argmin(totals))
            if totals[index] < best_total:
                best_total = float(totals[index])
                best_codes = int(chunk[index])
        return best_codes, best_total

    def _argmin_pruned(
        self, chunk_size: int, upper_bound: float | None
    ) -> tuple[int, float]:
        """Branch-and-bound enumeration behind :meth:`argmin_assignment`."""
        if self.num_assignments > _MAX_PACKED_SPACE:
            raise ValueError(
                f"cannot enumerate a {self.num_strategies}**{self.num_layers} "
                "space with 64-bit packed encodings"
            )
        num_layers = self.num_layers
        base = self.num_strategies
        # Digit-aligned chunks: the largest base**free <= chunk_size low
        # digits enumerate inside a chunk, the remaining high digits are
        # fixed per chunk and priced exactly in the bound.
        free_digits = 0
        span = 1
        while free_digits < num_layers and span * base <= chunk_size:
            span *= base
            free_digits += 1
        incumbent = np.inf if upper_bound is None else float(upper_bound)
        best_codes = -1
        best_total = np.inf
        if free_digits == num_layers:
            # One chunk covers the space; nothing to prune against.
            return self.argmin_assignment(chunk_size=chunk_size)
        free_floor = 0.0
        for layer in range(free_digits):
            free_floor += float(self.intra[layer].min())
        fixed_edges = []
        cross_edges = []
        for edge_index, (source, destination) in enumerate(self.edges):
            if destination < free_digits:
                free_floor += float(self.inter[edge_index].min())
            elif source >= free_digits:
                fixed_edges.append((edge_index, source, destination))
            else:
                cross_edges.append((edge_index, destination))
        fixed_layers = np.arange(free_digits, num_layers)
        for start in range(0, self.num_assignments, span):
            fixed = _decode_digits(
                np.array([start // span], dtype=np.int64),
                num_layers - free_digits,
                base,
            )[0]
            bound = free_floor + float(
                self.intra[fixed_layers, fixed].sum()
            )
            for edge_index, source, destination in fixed_edges:
                bound += float(
                    self.inter[
                        edge_index,
                        fixed[source - free_digits],
                        fixed[destination - free_digits],
                    ]
                )
            for edge_index, destination in cross_edges:
                bound += float(
                    self.inter[edge_index, :, fixed[destination - free_digits]].min()
                )
            # Strict, margined dominance: skipped chunks hold only totals
            # strictly above the incumbent, so neither the minimum value
            # nor the first-minimum tie winner can live there.
            if bound * (1.0 - _PRUNE_MARGIN) > min(incumbent, best_total):
                continue
            chunk = np.arange(
                start, min(start + span, self.num_assignments), dtype=np.int64
            )
            totals = self._score_chunk(chunk)
            index = int(np.argmin(totals))
            if totals[index] < best_total:
                best_total = float(totals[index])
                best_codes = int(chunk[index])
        return best_codes, best_total

    # ------------------------------------------------------------------
    # Lazy materialization of winners.
    # ------------------------------------------------------------------

    def total_bytes(self, assignment: LayerAssignment) -> float:
        """Total traffic of one assignment (fast path, no breakdown objects).

        Decodes the assignment directly instead of round-tripping through a
        packed integer, so models with 64+ weighted layers work too.
        """
        self._check_assignment(assignment)
        code_of = self.strategies.code_of
        decoded = np.array([[code_of(choice) for choice in assignment]], dtype=np.int64)
        return float(self._score_decoded(decoded)[0])

    def lazy_result(
        self, assignment: LayerAssignment, total_bytes: float
    ) -> PartitionResult:
        """A :class:`PartitionResult` whose breakdown materializes on access."""
        tensors = self.tensors
        model = self.communication_model
        edges = self.edges
        return PartitionResult(
            assignment=assignment,
            communication_bytes=total_bytes,
            breakdown_factory=lambda: tuple(
                model.layer_breakdown(tensors, assignment, edges)
            ),
        )

    def result_for_codes(self, codes: int) -> PartitionResult:
        """Materialize the :class:`PartitionResult` of one digit-pattern."""
        assignment = LayerAssignment.from_codes(
            codes, self.num_layers, self.strategies
        )
        total = float(self.score_codes(np.array([codes], dtype=np.int64))[0])
        return self.lazy_result(assignment, total)

    def result_for_bits(self, codes: int) -> PartitionResult:
        """Deprecated shim: the historical name of :meth:`result_for_codes`."""
        _warn_bits_shim("CostTable.result_for_bits", "CostTable.result_for_codes")
        return self.result_for_codes(codes)

    def _check_assignment(self, assignment: LayerAssignment) -> None:
        if assignment.num_layers != self.num_layers:
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"table has {self.num_layers}"
            )


class WarmStartDP:
    """Incremental :meth:`CostTable.dp_partition` across consecutive solves.

    Elastic re-planning under node churn keeps solving near-identical
    tables: when the array shrinks or regrows, the level tables of the
    surviving hierarchy share a leading run of layers (often all of them)
    with the previous solve.  This solver caches the chain DP's per-layer
    frontier -- the ``com`` vector after each layer -- together with the
    parent pointers and the previous table's cost columns.  A new table is
    compared column by column against the cache and the recurrence resumes
    after the longest unchanged prefix instead of from layer 0.

    Bit-exactness invariant: the resumed recurrence performs the *same
    floating-point additions in the same order* with the same
    lowest-code-wins ``argmin`` tie rule as the cold solve, so the result
    is identical float for float (property-pinned over the whole model
    zoo by ``tests/resilience/test_warmstart.py``).  Layer ``l``'s
    frontier depends only on ``intra[0..l]`` and ``inter[0..l-1]``, which
    is what makes prefix reuse sound.  Non-chain (DAG) tables take the
    cold :meth:`CostTable._dp_partition_dag` path unchanged and leave the
    cached chain state untouched.
    """

    def __init__(self) -> None:
        self._intra: "np.ndarray | None" = None
        self._inter: "np.ndarray | None" = None
        self._frontiers: "np.ndarray | None" = None
        self._parents: "np.ndarray | None" = None
        self._result: "PartitionResult | None" = None
        #: Solve statistics (deterministic given the solve sequence).
        self.full_hits = 0
        self.reused_layers = 0
        self.solved_layers = 0
        self.cold_solves = 0
        #: Layers filled by block-repetition jumps instead of stepping
        #: (a subset of ``solved_layers``; purely informational, so the
        #: :meth:`stats` dict -- pinned by replan goldens -- is unchanged).
        self.memoized_layers = 0

    def _matching_prefix(self, table: CostTable) -> int:
        """Longest leading layer run whose DP state the cache can replay."""
        cached_intra, cached_inter = self._intra, self._inter
        if cached_intra is None:
            return 0
        if cached_intra.shape[1] != table.num_strategies:
            return 0
        limit = min(table.num_layers, cached_intra.shape[0])
        if table.intra is cached_intra and table.inter is cached_inter:
            return limit  # identical arrays: skip the column comparison
        prefix = 0
        while prefix < limit:
            if not np.array_equal(table.intra[prefix], cached_intra[prefix]):
                break
            if prefix > 0 and not np.array_equal(
                table.inter[prefix - 1], cached_inter[prefix - 1]
            ):
                break
            prefix += 1
        return prefix

    def solve(self, table: CostTable, *, memoize: bool = True) -> PartitionResult:
        """The ``table.dp_partition()`` optimum, warm-started when possible.

        The resumed recurrence runs through the shared
        :func:`_chain_dp_run` driver, so it inherits the table's backend
        and the block-repetition memoization (``memoize=False`` forces
        cold stepping for oracle comparisons); both are bit-exact with the
        historical layer loop.
        """
        if not table.is_chain:
            self.cold_solves += 1
            return table.dp_partition()
        num_layers = table.num_layers
        num_strategies = table.num_strategies
        prefix = self._matching_prefix(table)
        if (
            prefix == num_layers
            and self._result is not None
            and self._frontiers is not None
            and self._frontiers.shape[0] == num_layers
        ):
            self.full_hits += 1
            return self._result
        self.reused_layers += prefix
        self.solved_layers += num_layers - prefix

        parents = np.empty((num_layers - 1, num_strategies), dtype=np.int8)
        frontiers = np.empty((num_layers, num_strategies), dtype=np.float64)
        if prefix == 0:
            frontiers[0] = table.intra[0]
            start = 1
        else:
            frontiers[:prefix] = self._frontiers[:prefix]
            parents[: prefix - 1] = self._parents[: prefix - 1]
            start = prefix
        com, jumped = _chain_dp_run(
            table.intra,
            table.inter,
            start,
            parents,
            frontiers,
            backend=kernels.resolve_backend(table.backend),
            memoize=memoize,
        )
        self.memoized_layers += jumped

        last = int(np.argmin(com))
        total = float(com[last])
        parent_rows = parents.tolist()
        codes_per_layer = [0] * num_layers
        code = codes_per_layer[-1] = last
        for layer in range(num_layers - 2, -1, -1):
            code = codes_per_layer[layer] = parent_rows[layer][code]
        members = table.strategies.members
        assignment = LayerAssignment(
            tuple(members[code] for code in codes_per_layer)
        )
        result = table.lazy_result(assignment, total)

        self._intra = table.intra
        self._inter = table.inter
        self._frontiers = frontiers
        self._parents = parents
        self._result = result
        return result

    def stats(self) -> dict:
        """Deterministic reuse counters (for reports and tests)."""
        return {
            "full_hits": self.full_hits,
            "reused_layers": self.reused_layers,
            "solved_layers": self.solved_layers,
            "cold_solves": self.cold_solves,
        }


class HierarchicalCostTable:
    """Per-level cost tables indexed by each layer's scale-descent state.

    Under :attr:`ScalingMode.PARALLELISM_AWARE` a layer's tensor amounts at
    hierarchy level ``h`` are fully determined by how many of its choices
    at levels ``0 .. h-1`` halved the batch fraction (``b``, dp choices)
    and how many halved the weight fraction (``w``, mp choices) -- the
    scale is ``(0.5**b, 0.5**w)``.  Stage-local strategies (pp) halve
    neither, so

    * for spaces without a stage-local member ``b + w = h`` and level ``h``
      has ``h + 1`` states (indexed by ``w``, exactly the historical
      mp-count states);
    * for spaces with one, every pair ``b + w <= h`` is reachable and
      level ``h`` has ``(h + 1)(h + 2) / 2`` states.

    ``UNIFORM`` and ``NONE`` scaling are choice-independent and collapse
    to a single state per level.

    The table therefore caches *every* scale-descent outcome a sweep can
    reach: batched candidate scoring, `HierarchicalPartitioner` evaluation
    and the training simulator's per-level tensor derivation all gather from
    the same compiled arrays instead of rebuilding ``LayerTensors`` lists.
    """

    def __init__(
        self,
        model: DNNModel,
        batch_size: int,
        num_levels: int,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        communication_model: CommunicationModel | None = None,
        strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
        backend: str | None = None,
    ) -> None:
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        self.model = model
        self.batch_size = batch_size
        self.num_levels = num_levels
        self.num_layers = len(model)
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self.communication_model = communication_model or CommunicationModel()
        self.strategies = StrategySpace.parse(strategies)
        #: Kernel backend handed to every gathered per-level
        #: :class:`CostTable` (``None`` = follow the process default).
        self.backend = kernels.validate_backend(backend)
        kernels.warn_numba_fallback(backend)
        #: Canonical edge list of the model's layer DAG; the per-level
        #: ``inter`` arrays are indexed by it (chains keep the historical
        #: boundary indexing, edge ``e`` == boundary ``(e, e + 1)``).
        self.edges: tuple[tuple[int, int], ...] = model.edges
        self._is_chain = model.is_chain
        self._edge_source = np.array([s for s, _ in self.edges], dtype=np.int64)
        # Destination-grouped (stable) edge arrays for the compiled level
        # scorers, mirroring CostTable._kernel_edges.
        kernel_order = sorted(range(len(self.edges)), key=lambda e: self.edges[e][1])
        self._kernel_edge_index = np.array(kernel_order, dtype=np.int64)
        self._kernel_edge_source = np.array(
            [self.edges[e][0] for e in kernel_order], dtype=np.int64
        )
        self._kernel_edge_destination = np.array(
            [self.edges[e][1] for e in kernel_order], dtype=np.int64
        )
        #: Per destination layer: its incoming ``(edge_index, source)`` pairs
        #: in canonical (input) order, for per-edge gathers.
        self._incoming: list[list[tuple[int, int]]] = [
            [] for _ in range(self.num_layers)
        ]
        for edge_index, (source, destination) in enumerate(self.edges):
            self._incoming[destination].append((edge_index, source))
        comm = self.communication_model
        space = self.strategies

        #: Per strategy code: 1 when one descent under that choice halves
        #: the batch / weight fraction (dp / mp); stage-local codes are 0
        #: in both.
        self._batch_effect = np.array(
            [1 if strategy_spec(member).halves == BATCH else 0 for member in space],
            dtype=np.int64,
        )
        self._weight_effect = np.array(
            [1 if strategy_spec(member).halves == WEIGHT else 0 for member in space],
            dtype=np.int64,
        )
        # Strategies that halve neither fraction (stage-local pp) break the
        # ``b + w = level`` invariant, widening the state space.
        self._has_stage_local = any(
            strategy_spec(member).halves == NONE for member in space
        )
        # For the default (dp, mp) space the weight effect of code ``c`` is
        # ``c`` itself, so the batched state tracking can skip a gather.
        self._weight_effect_is_identity = bool(
            np.array_equal(self._weight_effect, np.arange(space.size, dtype=np.int64))
        )

        # Per level h: the reachable (batch-halvings, weight-halvings) state
        # list, an index LUT for vectorized gathers, tensors[h][s][l],
        # intra[h] (L, S, K) and the boundary array (L-1, S, K, K).  The
        # forward/backward splits of the inter-layer costs are compiled
        # lazily on first :meth:`level_communication` access: only the
        # simulator reads them, and ``_to_bytes(fwd + bwd)`` versus
        # ``_to_bytes(fwd) + _to_bytes(bwd)`` may round differently, so they
        # cannot be derived from the combined array.
        self._states: list[list[tuple[int, int]]] = []
        self._state_lut: list[np.ndarray] = []
        self._tensors: list[list[tuple[LayerTensors, ...]]] = []
        self._intra: list[np.ndarray] = []
        self._inter: list[np.ndarray] = []
        self._inter_forward: list[np.ndarray] | None = None
        self._inter_backward: list[np.ndarray] | None = None

        layers = list(model)
        num_layers = self.num_layers
        num_strategies = space.size
        specs = [strategy_spec(member) for member in space]
        members = space.members
        for level in range(num_levels):
            level_states = self._level_states(level)
            self._states.append(level_states)
            lut = np.zeros((level + 1, level + 1), dtype=np.int64)
            for index, (b, w) in enumerate(level_states):
                lut[b, w] = index
            self._state_lut.append(lut)
            num_states = len(level_states)
            level_tensors: list[tuple[LayerTensors, ...]] = []
            intra = np.empty((num_layers, num_states, num_strategies), dtype=np.float64)
            inter = np.zeros(
                (len(self.edges), num_states, num_strategies, num_strategies),
                dtype=np.float64,
            )
            for state, (b, w) in enumerate(level_states):
                scale = self._state_scale(level, b, w)
                records = tuple(
                    layer_tensors(layer, batch_size, scale) for layer in layers
                )
                level_tensors.append(records)
                _fill_cost_block(
                    records,
                    specs,
                    members,
                    comm,
                    intra=intra[:, state, :],
                    inter=inter[:, state, :, :],
                    edges=self.edges,
                )
            self._tensors.append(level_tensors)
            self._intra.append(intra)
            self._inter.append(inter)

    def _ensure_direction_split(self) -> None:
        """Compile the forward/backward inter-layer splits on first use."""
        if self._inter_forward is not None:
            return
        comm = self.communication_model
        space = self.strategies
        num_strategies = space.size
        forward: list[np.ndarray] = []
        backward: list[np.ndarray] = []
        specs = [strategy_spec(member) for member in space]
        members = space.members
        for level in range(self.num_levels):
            num_states = self.num_states(level)
            shape = (len(self.edges), num_states, num_strategies, num_strategies)
            inter_fwd = np.zeros(shape, dtype=np.float64)
            inter_bwd = np.zeros(shape, dtype=np.float64)
            for state, records in enumerate(self._tensors[level]):
                _fill_cost_block(
                    records,
                    specs,
                    members,
                    comm,
                    inter_forward=inter_fwd[:, state, :, :],
                    inter_backward=inter_bwd[:, state, :, :],
                    edges=self.edges,
                )
            forward.append(inter_fwd)
            backward.append(inter_bwd)
        self._inter_forward = forward
        self._inter_backward = backward

    # ------------------------------------------------------------------
    # Scale-descent states.
    # ------------------------------------------------------------------

    def _level_states(self, level: int) -> list[tuple[int, int]]:
        """Reachable ``(batch_halvings, weight_halvings)`` pairs at ``level``.

        Without a stage-local strategy every choice halves something, so
        ``b + w = level`` and the list is ordered by ``w`` -- index ``w``
        is the historical "mp count" state, keeping dp/mp tables laid out
        exactly as before.  With a stage-local strategy all pairs with
        ``b + w <= level`` are reachable.
        """
        if self.scaling_mode is not ScalingMode.PARALLELISM_AWARE:
            return [(0, 0)]
        if not self._has_stage_local:
            return [(level - w, w) for w in range(level + 1)]
        return [
            (b, w)
            for b in range(level + 1)
            for w in range(level + 1 - b)
        ]

    def num_states(self, level: int) -> int:
        """Number of distinct per-layer scale states at ``level``."""
        return len(self._states[level])

    def state_index(self, level: int, batch_halvings: int, weight_halvings: int) -> int:
        """The state index of one ``(b, w)`` halving count pair at ``level``."""
        if self.scaling_mode is not ScalingMode.PARALLELISM_AWARE:
            return 0
        return int(self._state_lut[level][batch_halvings, weight_halvings])

    def _state_scale(self, level: int, batch_halvings: int, weight_halvings: int) -> TensorScale:
        """The :class:`TensorScale` of one halving state at ``level``.

        Halvings are powers of two, so ``0.5 ** k`` is bit-exact with the
        reference path's sequential ``descend`` multiplications.
        """
        if self.scaling_mode is ScalingMode.PARALLELISM_AWARE:
            return TensorScale(
                batch_fraction=0.5 ** batch_halvings,
                weight_fraction=0.5 ** weight_halvings,
            )
        if self.scaling_mode is ScalingMode.UNIFORM:
            return TensorScale(batch_fraction=0.5 ** level, weight_fraction=1.0)
        return TensorScale()

    def state_indices(self, assignment: HierarchicalAssignment) -> np.ndarray:
        """Per-(level, layer) state indices implied by ``assignment``."""
        self._check_assignment(assignment)
        states = np.zeros((self.num_levels, self.num_layers), dtype=np.int64)
        if self.scaling_mode is not ScalingMode.PARALLELISM_AWARE:
            return states
        batch_counts = np.zeros(self.num_layers, dtype=np.int64)
        weight_counts = np.zeros(self.num_layers, dtype=np.int64)
        for level in range(self.num_levels):
            states[level] = self._state_lut[level][batch_counts, weight_counts]
            for layer, choice in enumerate(assignment[level]):
                halves = strategy_spec(choice).halves
                if halves == BATCH:
                    batch_counts[layer] += 1
                elif halves == WEIGHT:
                    weight_counts[layer] += 1
        return states

    def tensors_for_level(
        self, level: int, states: Sequence[int]
    ) -> tuple[LayerTensors, ...]:
        """The per-layer tensor records of one level under given state indices."""
        level_tensors = self._tensors[level]
        return tuple(
            level_tensors[state][layer] for layer, state in enumerate(states)
        )

    def level_cost_table(self, level: int, states: Sequence[int]) -> CostTable:
        """The single-level :class:`CostTable` of one scale-descent outcome.

        ``states[l]`` is layer ``l``'s state index at ``level`` (see
        :meth:`state_index`; always 0 outside parallelism-aware scaling).
        Pure gather -- no tensor or communication re-derivation -- so
        per-level searches and evaluations inside a sweep are O(L) array
        slicing.
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range for {self.num_levels} levels")
        state_array = np.asarray(states, dtype=np.int64)
        if state_array.shape != (self.num_layers,):
            raise ValueError(
                f"expected {self.num_layers} states, got {state_array.shape}"
            )
        layer_range = np.arange(self.num_layers)
        intra = self._intra[level][layer_range, state_array, :]
        # An edge's boundary tensors are its *source* layer's, so the edge
        # axis gathers the source's scale state (``[:-1]`` historically).
        inter = self._inter[level][
            np.arange(len(self.edges)), state_array[self._edge_source], :, :
        ]
        return CostTable(
            intra=intra,
            inter=inter,
            tensors=self.tensors_for_level(level, states),
            communication_model=self.communication_model,
            strategies=self.strategies,
            edges=self.edges,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # Batched candidate scoring.
    # ------------------------------------------------------------------

    @property
    def num_strategies(self) -> int:
        return self.strategies.size

    @property
    def total_digits(self) -> int:
        """Digits needed to encode one full hierarchical assignment."""
        return self.num_levels * self.num_layers

    @property
    def total_bits(self) -> int:
        """Deprecated alias of :attr:`total_digits` (binary-space name)."""
        return self.total_digits

    @property
    def num_assignments(self) -> int:
        """Size of the full hierarchical space (``K**(H*L)``)."""
        return self.strategies.size ** self.total_digits

    def score_codes(
        self, codes: np.ndarray | Sequence[int], chunk_size: int | None = None
    ) -> np.ndarray:
        """Total communication bytes of a batch of hierarchical digit-patterns.

        Encoding: the deepest-varying ``num_layers`` digits (least
        significant) are the *last* level's assignment and each level's
        digits follow the ``LayerAssignment.from_codes`` convention --
        exactly the order ``itertools.product(all_layer_assignments(L),
        repeat=H)`` visits the space, so first-minimum ties match the
        reference enumeration.  Totals are bit-exact with
        ``HierarchicalPartitioner.evaluate(...).total_communication_bytes``.
        ``chunk_size`` bounds peak memory (``None`` =
        :data:`DEFAULT_CHUNK_SIZE`) without affecting a single byte of
        the output.
        """
        if self.num_assignments > _MAX_PACKED_SPACE:
            # The packed int64 encoding cannot address the space; deep
            # models route per-level code matrices through
            # :meth:`score_level_codes` instead.
            raise ValueError(
                f"a {self.num_strategies}**{self.total_digits} space overflows "
                "the 64-bit packed encoding; use score_level_codes with "
                "per-level code matrices instead"
            )
        step = _resolve_chunk_size(chunk_size)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError(f"codes must be one-dimensional, got shape {codes.shape}")
        totals = np.empty(codes.shape[0], dtype=np.float64)
        for start in range(0, codes.shape[0], step):
            chunk = codes[start : start + step]
            totals[start : start + chunk.shape[0]] = self._score_chunk(chunk)
        return totals

    def score_bits(self, bits: np.ndarray | Sequence[int]) -> np.ndarray:
        """Deprecated shim: the historical name of :meth:`score_codes`."""
        _warn_bits_shim(
            "HierarchicalCostTable.score_bits", "HierarchicalCostTable.score_codes"
        )
        return self.score_codes(bits)

    def decode_level_codes(self, codes: np.ndarray) -> list[np.ndarray]:
        """Per-level strategy-code matrices ``(N, L)`` for a batch of candidates."""
        num_layers = self.num_layers
        base = self.num_strategies
        decoded = []
        if base == 2:
            shifts = np.arange(num_layers, dtype=np.int64)
            mask = (1 << num_layers) - 1
            for level in range(self.num_levels):
                level_codes = (codes >> (num_layers * (self.num_levels - 1 - level))) & mask
                decoded.append((level_codes[:, None] >> shifts) & 1)
            return decoded
        level_space = base ** num_layers
        for level in range(self.num_levels):
            level_codes = (
                codes // (level_space ** (self.num_levels - 1 - level))
            ) % level_space
            decoded.append(_decode_digits(level_codes, num_layers, base))
        return decoded

    def decode_level_bits(self, codes: np.ndarray) -> list[np.ndarray]:
        """Deprecated shim: the historical name of :meth:`decode_level_codes`."""
        _warn_bits_shim(
            "HierarchicalCostTable.decode_level_bits",
            "HierarchicalCostTable.decode_level_codes",
        )
        return self.decode_level_codes(codes)

    def _score_chunk(self, codes: np.ndarray) -> np.ndarray:
        return self.score_level_codes(self.decode_level_codes(codes))

    def score_level_codes(self, decoded: Sequence[np.ndarray]) -> np.ndarray:
        """Score candidates given per-level ``(N, L)`` strategy-code matrices.

        This is the core batched scorer; it also serves candidate spaces
        whose *full* encoding would overflow 64 bits (deep models at many
        levels) as long as the batch itself is enumerable, e.g. the
        restricted sweeps of Figures 9/10.  On the compiled backends each
        level's gather-and-accumulate runs in a numba kernel
        (:func:`repro.core.kernels.hier_level_score_compiled`, bit-exact
        with the NumPy body; ``"compiled-parallel"`` scores candidates
        under ``prange``), while the cross-level scale-state tracking
        stays in shared NumPy code.
        """
        if len(decoded) != self.num_levels:
            raise ValueError(
                f"expected {self.num_levels} level code matrices, got {len(decoded)}"
            )
        num_layers = self.num_layers
        num_candidates = decoded[0].shape[0]
        layer_range = np.arange(num_layers)
        boundary_range = np.arange(max(num_layers - 1, 0))
        totals = np.zeros(num_candidates, dtype=np.float64)
        use_kernel = kernels.compiled_active(self.backend)
        parallel = kernels.parallel_active(self.backend)
        track_states = self.scaling_mode is ScalingMode.PARALLELISM_AWARE
        weight_counts = np.zeros((num_candidates, num_layers), dtype=np.int64)
        batch_counts = (
            np.zeros((num_candidates, num_layers), dtype=np.int64)
            if self._has_stage_local
            else None
        )
        for level in range(self.num_levels):
            level_codes = decoded[level]
            if not track_states:
                states = np.zeros((num_candidates, num_layers), dtype=np.int64)
            elif batch_counts is None:
                # Without stage-local strategies the state index is the
                # weight-halving (mp) count, as in the historical layout.
                states = weight_counts
            else:
                states = self._state_lut[level][batch_counts, weight_counts]
            if use_kernel:
                # The kernel folds gather, edge accumulation, sequential
                # row sum and the ``* (1 << level)`` pair scaling into one
                # pass, accumulating straight into ``totals``.
                kernels.hier_level_score_compiled(
                    self._intra[level],
                    self._inter[level],
                    np.ascontiguousarray(states, dtype=np.int64),
                    np.ascontiguousarray(level_codes, dtype=np.int64),
                    float(1 << level),
                    totals,
                    is_chain=self._is_chain,
                    edge_index=self._kernel_edge_index,
                    edge_source=self._kernel_edge_source,
                    edge_destination=self._kernel_edge_destination,
                    parallel=parallel,
                )
            else:
                per_layer = self._intra[level][layer_range, states, level_codes]
                if self._is_chain:
                    if num_layers > 1:
                        per_layer[:, 1:] += self._inter[level][
                            boundary_range,
                            states[:, :-1],
                            level_codes[:, :-1],
                            level_codes[:, 1:],
                        ]
                else:
                    # Merge layers accumulate their incoming-edge terms (in
                    # canonical edge order) before the single add onto the intra
                    # term, matching the object path's association.
                    inter_acc = np.zeros_like(per_layer)
                    for edge_index, (source, destination) in enumerate(self.edges):
                        inter_acc[:, destination] += self._inter[level][
                            edge_index,
                            states[:, source],
                            level_codes[:, source],
                            level_codes[:, destination],
                        ]
                    # ``per_layer`` is a fresh advanced-indexing copy, so the
                    # in-place add is safe (and allocation-free, like the
                    # single-level scorer's).
                    per_layer += inter_acc
                level_totals = _sequential_row_sum(per_layer)
                # ``level.total_bytes`` multiplies by the (power-of-two) pair
                # count before the exact sequential accumulation over levels.
                totals += level_totals * float(1 << level)
            if track_states:
                weight_counts = weight_counts + (
                    level_codes
                    if self._weight_effect_is_identity
                    else self._weight_effect[level_codes]
                )
                if batch_counts is not None:
                    batch_counts = batch_counts + self._batch_effect[level_codes]
        return totals

    def score_level_bits(self, decoded: Sequence[np.ndarray]) -> np.ndarray:
        """Deprecated shim: the historical name of :meth:`score_level_codes`."""
        _warn_bits_shim(
            "HierarchicalCostTable.score_level_bits",
            "HierarchicalCostTable.score_level_codes",
        )
        return self.score_level_codes(decoded)

    def argmin_assignment(self, *, chunk_size: int | None = None) -> tuple[int, float]:
        """First minimum over the full ``K**(H*L)`` space, in product order."""
        space = self.num_assignments
        if space > _MAX_PACKED_SPACE:
            raise ValueError(
                f"cannot enumerate a {self.num_strategies}**{self.total_digits} "
                "space with 64-bit packed encodings"
            )
        step = _resolve_chunk_size(chunk_size)
        best_codes = -1
        best_total = np.inf
        for start in range(0, space, step):
            chunk = np.arange(start, min(start + step, space), dtype=np.int64)
            totals = self._score_chunk(chunk)
            index = int(np.argmin(totals))
            if totals[index] < best_total:
                best_total = float(totals[index])
                best_codes = int(chunk[index])
        return best_codes, best_total

    # ------------------------------------------------------------------
    # Assignment helpers.
    # ------------------------------------------------------------------

    def assignment_to_codes(self, assignment: HierarchicalAssignment) -> int:
        """Encode an assignment with the :meth:`score_codes` digit layout."""
        self._check_assignment(assignment)
        level_space = self.num_strategies ** self.num_layers
        codes = 0
        for level in range(self.num_levels):
            codes = codes * level_space + assignment[level].to_codes(self.strategies)
        return codes

    def codes_to_assignment(self, codes: int) -> HierarchicalAssignment:
        """Inverse of :meth:`assignment_to_codes`."""
        level_space = self.num_strategies ** self.num_layers
        levels: list[LayerAssignment] = []
        for _ in range(self.num_levels):
            codes, level_codes = divmod(codes, level_space)
            levels.append(
                LayerAssignment.from_codes(level_codes, self.num_layers, self.strategies)
            )
        levels.reverse()
        return HierarchicalAssignment(tuple(levels))

    def assignment_to_bits(self, assignment: HierarchicalAssignment) -> int:
        """Deprecated shim: the historical name of :meth:`assignment_to_codes`."""
        _warn_bits_shim(
            "HierarchicalCostTable.assignment_to_bits",
            "HierarchicalCostTable.assignment_to_codes",
        )
        return self.assignment_to_codes(assignment)

    def bits_to_assignment(self, codes: int) -> HierarchicalAssignment:
        """Deprecated shim: the historical name of :meth:`codes_to_assignment`."""
        _warn_bits_shim(
            "HierarchicalCostTable.bits_to_assignment",
            "HierarchicalCostTable.codes_to_assignment",
        )
        return self.codes_to_assignment(codes)

    def total_bytes(self, assignment: HierarchicalAssignment) -> float:
        """Total traffic of one hierarchical assignment (fast path)."""
        self._check_assignment(assignment)
        code_of = self.strategies.code_of
        decoded = [
            np.array([[code_of(choice) for choice in assignment[level]]], dtype=np.int64)
            for level in range(self.num_levels)
        ]
        return float(self.score_level_codes(decoded)[0])

    def level_communication(
        self, assignment: HierarchicalAssignment
    ) -> list[list[tuple[Parallelism, float, tuple[tuple[int, float, float], ...]]]]:
        """Per-level, per-layer ``(choice, intra, incoming)`` bytes.

        ``incoming`` lists the layer's incoming-edge re-layouts as
        ``(source_layer, inter_fwd, inter_bwd)`` tuples in canonical edge
        (input) order -- one entry per incoming DAG edge, so merge layers
        carry one record per branch.  This is the gather the training
        simulator consumes; the floats are identical to the ones the
        object path derives from fresh ``model_tensors`` lists at every
        level.
        """
        self._ensure_direction_split()
        states = self.state_indices(assignment)
        code_of = self.strategies.code_of
        records: list[
            list[tuple[Parallelism, float, tuple[tuple[int, float, float], ...]]]
        ] = []
        for level in range(self.num_levels):
            level_assignment = assignment[level]
            level_records = []
            for layer, choice in enumerate(level_assignment):
                state = int(states[level, layer])
                intra = float(self._intra[level][layer, state, code_of(choice)])
                incoming = []
                for edge_index, source in self._incoming[layer]:
                    previous = level_assignment[source]
                    boundary_state = int(states[level, source])
                    fwd = float(
                        self._inter_forward[level][
                            edge_index, boundary_state, code_of(previous), code_of(choice)
                        ]
                    )
                    bwd = float(
                        self._inter_backward[level][
                            edge_index, boundary_state, code_of(previous), code_of(choice)
                        ]
                    )
                    incoming.append((source, fwd, bwd))
                level_records.append((choice, intra, tuple(incoming)))
            records.append(level_records)
        return records

    @property
    def cache_key(self) -> tuple:
        """The :func:`table_cache_key` this compilation answers to."""
        return table_cache_key(
            self.model,
            self.batch_size,
            self.num_levels,
            self.scaling_mode,
            self.communication_model,
            self.strategies,
            self.backend,
        )

    def check_compatible(
        self,
        model: DNNModel,
        batch_size: int,
        num_levels: int,
        scaling_mode: ScalingMode,
        communication_model: CommunicationModel,
        strategies: StrategySpace | None = None,
    ) -> None:
        """Raise when this table was compiled for a different configuration.

        Shared by every consumer that accepts an externally supplied table
        (the hierarchical partitioner, the training simulator) so the
        compatibility rules cannot drift between them.  ``strategies`` may
        be omitted by consumers that only *evaluate* assignments (the
        evaluation is strategy-space-agnostic as long as the assignment's
        choices are members of the table's space).
        """
        if (
            (self.model is not model and self.model != model)
            or self.batch_size != batch_size
            or self.num_levels != num_levels
            or self.scaling_mode is not scaling_mode
            or not self.communication_model.same_costs(communication_model)
            or (strategies is not None and self.strategies != strategies)
        ):
            # Structural equality (not identity) qualifies a model: the
            # shared sweep cache hands one compiled table to every caller
            # holding an equal model, including unpickled copies in worker
            # processes.
            raise ValueError(
                "cost table was compiled for a different "
                "(model, batch, levels, scaling, communication-model, "
                "strategy-space) configuration"
            )

    def _check_assignment(self, assignment: HierarchicalAssignment) -> None:
        if assignment.num_levels != self.num_levels:
            raise ValueError(
                f"assignment has {assignment.num_levels} levels, "
                f"table expects {self.num_levels}"
            )
        if assignment.num_layers != self.num_layers:
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"table has {self.num_layers}"
            )


def compile_cost_table(
    model: DNNModel,
    batch_size: int,
    scales: Sequence[TensorScale] | None = None,
    communication_model: CommunicationModel | None = None,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
    backend: str | None = None,
) -> CostTable:
    """Module-level convenience alias for :meth:`CostTable.compile`."""
    return CostTable.compile(
        model, batch_size, scales, communication_model, strategies, backend
    )


# ----------------------------------------------------------------------
# Shared compiled-table cache.
# ----------------------------------------------------------------------


def table_cache_key(
    model: DNNModel,
    batch_size: int,
    num_levels: int,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    communication_model: CommunicationModel | None = None,
    strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
    backend: str | None = None,
) -> tuple:
    """Hashable identity of a :class:`HierarchicalCostTable` compilation.

    Two compilations with equal keys produce float-identical tables: the
    arrays are pure functions of the model's resolved layers, the batch
    size, the hierarchy depth, the scaling mode, the communication-model
    parameters and the strategy space.  ``DNNModel`` is a frozen dataclass,
    so equal models -- including copies unpickled in sweep worker
    processes -- hash and compare equal and hit the same cache entry.

    ``backend`` is resolved (``None`` -> the process default *at key
    time*) before entering the key: the stored floats are
    backend-independent, but the gathered per-level tables inherit the
    backend, so a cache hit must hand back tables that dispatch the way
    the caller asked.
    """
    communication_model = communication_model or CommunicationModel()
    return (
        model,
        int(batch_size),
        int(num_levels),
        ScalingMode.parse(scaling_mode),
        StrategySpace.parse(strategies),
        communication_model.cache_key,
        kernels.resolve_backend(backend),
    )


class TableCache:
    """Cache of compiled :class:`HierarchicalCostTable` objects.

    Keyed by :func:`table_cache_key`, i.e. by the *configuration* rather
    than by object identity, so every study of a sweep that touches the
    same ``(model, strategy space, scaling mode, batch, num_levels)``
    point compiles the table once and gathers from it thereafter --
    including across the serial and process-parallel runners (each worker
    process holds one instance and warms it as its share of the grid
    streams through).  Hit/miss counters make the sharing observable.
    """

    def __init__(self, limit: int = 64) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self._limit = limit
        self._tables: dict[tuple, HierarchicalCostTable] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._tables)

    def get_or_compile(
        self,
        model: DNNModel,
        batch_size: int,
        num_levels: int,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        communication_model: CommunicationModel | None = None,
        strategies: StrategySpace | Sequence[Parallelism] | str | None = None,
        backend: str | None = None,
    ) -> HierarchicalCostTable:
        """The compiled table for the configuration, compiling on first use."""
        resolved_backend = kernels.resolve_backend(backend)
        key = table_cache_key(
            model,
            batch_size,
            num_levels,
            scaling_mode,
            communication_model,
            strategies,
            resolved_backend,
        )
        table = self._tables.get(key)
        if table is not None:
            self.hits += 1
            return table
        self.misses += 1
        if len(self._tables) >= self._limit:
            # Simple full flush, like the simulator's historical id-keyed
            # cache: sweeps revisit configurations in grid order, so an
            # LRU would only help adversarial access patterns.
            self.evictions += len(self._tables)
            self._tables.clear()
        table = HierarchicalCostTable(
            model,
            batch_size,
            num_levels,
            scaling_mode=scaling_mode,
            communication_model=communication_model,
            strategies=strategies,
            backend=resolved_backend,
        )
        self._tables[key] = table
        return table

    def clear(self) -> None:
        self._tables.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters for tests, sweep reports and the service ``/healthz``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._tables),
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
