"""Parallelism types and per-layer assignments.

Terminology follows Section 3 of the paper:

* lowercase *data parallelism* (``dp``) / *model parallelism* (``mp``) refer
  to the choice for one specific layer at one hierarchy level;
* uppercase *Data Parallelism* / *Model Parallelism* refer to the degenerate
  whole-network assignments where every layer at every level uses the same
  choice.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Iterator, Sequence


class Parallelism(enum.Enum):
    """Per-layer parallelism choice.

    ``DATA``
        The layer's feature maps and errors are partitioned along the batch
        dimension; every accelerator (group) holds a full copy of the
        layer's kernel.  Intra-layer communication happens when gradients
        are reduced for the weight update.

    ``MODEL``
        The layer's kernel is partitioned along the output-channel (or
        output-neuron) dimension; every accelerator sees the full batch.
        Intra-layer communication happens when output-feature-map partial
        sums are reduced in the forward pass.
    """

    DATA = "dp"
    MODEL = "mp"

    @property
    def short(self) -> str:
        """Two-letter abbreviation used in the paper's figures (``dp``/``mp``)."""
        return self.value

    @property
    def bit(self) -> int:
        """Bit encoding used by the exploration figures: 0 = dp, 1 = mp."""
        return 0 if self is Parallelism.DATA else 1

    @classmethod
    def from_bit(cls, bit: int) -> "Parallelism":
        """Inverse of :attr:`bit` (0 → dp, 1 → mp)."""
        if bit not in (0, 1):
            raise ValueError(f"parallelism bit must be 0 or 1, got {bit!r}")
        return cls.DATA if bit == 0 else cls.MODEL

    @classmethod
    def parse(cls, text: str) -> "Parallelism":
        """Parse ``"dp"``/``"mp"`` (or ``"data"``/``"model"``, any case)."""
        normalized = text.strip().lower()
        if normalized in ("dp", "data", "data_parallelism", "0"):
            return cls.DATA
        if normalized in ("mp", "model", "model_parallelism", "1"):
            return cls.MODEL
        raise ValueError(f"cannot parse parallelism from {text!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


DATA = Parallelism.DATA
MODEL = Parallelism.MODEL


@dataclasses.dataclass(frozen=True)
class LayerAssignment:
    """Parallelism choices for every weighted layer at one hierarchy level."""

    choices: tuple[Parallelism, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError("LayerAssignment requires at least one layer")

    @classmethod
    def of(cls, choices: Iterable[Parallelism | str | int]) -> "LayerAssignment":
        """Build an assignment from parallelism values, strings or bits."""
        parsed: list[Parallelism] = []
        for choice in choices:
            if isinstance(choice, Parallelism):
                parsed.append(choice)
            elif isinstance(choice, str):
                parsed.append(Parallelism.parse(choice))
            elif isinstance(choice, int):
                parsed.append(Parallelism.from_bit(choice))
            else:
                raise TypeError(f"cannot interpret {choice!r} as a parallelism choice")
        return cls(tuple(parsed))

    @classmethod
    def uniform(cls, parallelism: Parallelism, num_layers: int) -> "LayerAssignment":
        """All ``num_layers`` layers assigned the same parallelism."""
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        return cls(tuple([parallelism] * num_layers))

    @classmethod
    def from_bits(cls, bits: int, num_layers: int) -> "LayerAssignment":
        """Decode an integer bit-pattern (LSB = layer 0) into an assignment.

        This is the encoding used by the parallelism-space exploration of
        Figures 9 and 10 (``0`` = dp, ``1`` = mp).
        """
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        if bits < 0 or bits >= (1 << num_layers):
            raise ValueError(
                f"bit pattern {bits} out of range for {num_layers} layers"
            )
        return cls(
            tuple(Parallelism.from_bit((bits >> layer) & 1) for layer in range(num_layers))
        )

    def to_bits(self) -> int:
        """Inverse of :meth:`from_bits`."""
        value = 0
        for layer, choice in enumerate(self.choices):
            value |= choice.bit << layer
        return value

    def __iter__(self) -> Iterator[Parallelism]:
        return iter(self.choices)

    def __len__(self) -> int:
        return len(self.choices)

    def __getitem__(self, index: int) -> Parallelism:
        return self.choices[index]

    @property
    def num_layers(self) -> int:
        return len(self.choices)

    def count(self, parallelism: Parallelism) -> int:
        """Number of layers assigned ``parallelism``."""
        return sum(1 for choice in self.choices if choice is parallelism)

    def is_uniform(self, parallelism: Parallelism) -> bool:
        """True when every layer uses ``parallelism``."""
        return all(choice is parallelism for choice in self.choices)

    def as_strings(self) -> list[str]:
        return [choice.short for choice in self.choices]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "-".join(self.as_strings())


@dataclasses.dataclass(frozen=True)
class HierarchicalAssignment:
    """Parallelism choices for every layer at every hierarchy level.

    ``levels[0]`` corresponds to the topmost partition (``H1`` in the paper,
    splitting the whole array into two halves) and ``levels[-1]`` to the
    deepest partition between individual accelerators.
    """

    levels: tuple[LayerAssignment, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("HierarchicalAssignment requires at least one level")
        num_layers = self.levels[0].num_layers
        for level in self.levels:
            if level.num_layers != num_layers:
                raise ValueError(
                    "all hierarchy levels must cover the same number of layers"
                )

    @classmethod
    def of(cls, levels: Sequence[LayerAssignment | Sequence]) -> "HierarchicalAssignment":
        parsed = tuple(
            level if isinstance(level, LayerAssignment) else LayerAssignment.of(level)
            for level in levels
        )
        return cls(parsed)

    @classmethod
    def uniform(
        cls, parallelism: Parallelism, num_levels: int, num_layers: int
    ) -> "HierarchicalAssignment":
        """Every layer at every level uses ``parallelism`` (the paper's defaults)."""
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        level = LayerAssignment.uniform(parallelism, num_layers)
        return cls(tuple([level] * num_levels))

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_layers(self) -> int:
        return self.levels[0].num_layers

    @property
    def num_accelerators(self) -> int:
        """Number of accelerators implied by the number of levels (2^H)."""
        return 1 << self.num_levels

    def __iter__(self) -> Iterator[LayerAssignment]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, level: int) -> LayerAssignment:
        return self.levels[level]

    def choice(self, level: int, layer: int) -> Parallelism:
        """Parallelism of ``layer`` at hierarchy ``level`` (both 0-based)."""
        return self.levels[level][layer]

    def layer_choices(self, layer: int) -> tuple[Parallelism, ...]:
        """The per-level choices for one layer, from H1 down to the deepest level."""
        return tuple(level[layer] for level in self.levels)

    def is_uniform(self, parallelism: Parallelism) -> bool:
        return all(level.is_uniform(parallelism) for level in self.levels)

    def replace_level(self, level: int, assignment: LayerAssignment) -> "HierarchicalAssignment":
        """Return a copy with one hierarchy level replaced."""
        if assignment.num_layers != self.num_layers:
            raise ValueError("replacement level has a different number of layers")
        levels = list(self.levels)
        levels[level] = assignment
        return HierarchicalAssignment(tuple(levels))

    def replace_layer(
        self, layer: int, choices: Sequence[Parallelism]
    ) -> "HierarchicalAssignment":
        """Return a copy with one layer's per-level choices replaced."""
        if len(choices) != self.num_levels:
            raise ValueError(
                f"expected {self.num_levels} per-level choices, got {len(choices)}"
            )
        levels = []
        for level_index, level in enumerate(self.levels):
            new_choices = list(level.choices)
            new_choices[layer] = choices[level_index]
            levels.append(LayerAssignment(tuple(new_choices)))
        return HierarchicalAssignment(tuple(levels))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " | ".join(f"H{i + 1}:{level}" for i, level in enumerate(self.levels))
