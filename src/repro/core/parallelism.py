"""Parallelism types, strategy spaces and per-layer assignments.

Terminology follows Section 3 of the paper:

* lowercase *data parallelism* (``dp``) / *model parallelism* (``mp``) refer
  to the choice for one specific layer at one hierarchy level;
* uppercase *Data Parallelism* / *Model Parallelism* refer to the degenerate
  whole-network assignments where every layer at every level uses the same
  choice.

Beyond the paper's binary dp/mp axis the reproduction supports an
extensible per-layer **strategy space**: a :class:`StrategySpace` is an
ordered subset of :class:`Parallelism` members, candidate assignments are
encoded as base-``K`` digit patterns over that space
(:meth:`LayerAssignment.from_codes` / :meth:`LayerAssignment.to_codes`),
and every search, sweep and cost table is parameterized by the space.  The
default space is the paper's ``(dp, mp)``, for which the base-2 digit
encoding coincides bit for bit with the historical ``from_bits``/``to_bits``
encoding of Figures 9 and 10 (kept as thin deprecated shims).  The first
strategy beyond the paper is per-layer *pipeline* parallelism
(``Parallelism.PIPELINE``); the per-strategy cost contributions live in
:mod:`repro.core.strategies`.
"""

from __future__ import annotations

import dataclasses
import enum
import warnings
from typing import Iterable, Iterator, Sequence


class Parallelism(enum.Enum):
    """Per-layer parallelism choice.

    ``DATA``
        The layer's feature maps and errors are partitioned along the batch
        dimension; every accelerator (group) holds a full copy of the
        layer's kernel.  Intra-layer communication happens when gradients
        are reduced for the weight update.

    ``MODEL``
        The layer's kernel is partitioned along the output-channel (or
        output-neuron) dimension; every accelerator sees the full batch.
        Intra-layer communication happens when output-feature-map partial
        sums are reduced in the forward pass.

    ``PIPELINE``
        The layer is *stage-local*: one group of the pair holds the whole
        layer (full kernel, full batch) and executes it for micro-batches
        streamed across the stage boundary.  There is no intra-layer
        reduction; all communication happens at the stage boundaries
        (activations forward, errors backward).  Consecutive pipeline
        layers alternate owner groups, so they form adjacent pipeline
        stages.  This strategy is *not* part of the paper; it is only
        explored when a strategy space containing it is requested.
    """

    DATA = "dp"
    MODEL = "mp"
    PIPELINE = "pp"

    @property
    def short(self) -> str:
        """Two-letter abbreviation used in the figures (``dp``/``mp``/``pp``)."""
        return self.value

    @property
    def bit(self) -> int:
        """Bit encoding used by the exploration figures: 0 = dp, 1 = mp.

        .. deprecated:: PR 2
            Only meaningful for the binary dp/mp space; use
            :meth:`StrategySpace.code_of` for general spaces.
        """
        if self is Parallelism.PIPELINE:
            raise ValueError(
                "Parallelism.PIPELINE has no dp/mp bit encoding; "
                "use StrategySpace.code_of"
            )
        return 0 if self is Parallelism.DATA else 1

    @classmethod
    def from_bit(cls, bit: int) -> "Parallelism":
        """Inverse of :attr:`bit` (0 → dp, 1 → mp).

        .. deprecated:: PR 2
            Only meaningful for the binary dp/mp space; use
            :meth:`StrategySpace.member` for general spaces.
        """
        if bit not in (0, 1):
            raise ValueError(f"parallelism bit must be 0 or 1, got {bit!r}")
        return cls.DATA if bit == 0 else cls.MODEL

    @classmethod
    def parse(cls, text: str) -> "Parallelism":
        """Parse ``"dp"``/``"mp"``/``"pp"`` (or long names, any case)."""
        normalized = text.strip().lower()
        if normalized in ("dp", "data", "data_parallelism", "0"):
            return cls.DATA
        if normalized in ("mp", "model", "model_parallelism", "1"):
            return cls.MODEL
        if normalized in ("pp", "pipe", "pipeline", "pipeline_parallelism", "2"):
            return cls.PIPELINE
        raise ValueError(f"cannot parse parallelism from {text!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


DATA = Parallelism.DATA
MODEL = Parallelism.MODEL
PIPELINE = Parallelism.PIPELINE


@dataclasses.dataclass(frozen=True)
class StrategySpace:
    """An ordered set of per-layer strategies forming one candidate axis.

    The order defines the base-``K`` digit encoding of candidate
    assignments: digit value ``c`` stands for ``members[c]``.  It also
    defines tie-breaking -- searches resolve cost ties to the *lowest*
    digit, so putting ``dp`` first preserves the paper's "ties favour data
    parallelism" rule.  The default space is the paper's binary
    ``(dp, mp)``; pipeline parallelism joins only when explicitly
    requested (e.g. ``StrategySpace.parse("dp,mp,pp")``).
    """

    members: tuple[Parallelism, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a strategy space needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate strategies in space: {self.members}")

    @classmethod
    def parse(cls, value: "StrategySpace | Sequence[Parallelism | str] | str | None") -> "StrategySpace":
        """Parse a space from ``"dp,mp,pp"``, a member sequence, or ``None``.

        ``None`` yields the default binary dp/mp space.
        """
        if value is None:
            return DEFAULT_SPACE
        if isinstance(value, StrategySpace):
            return value
        if isinstance(value, str):
            value = [part for part in value.split(",") if part.strip()]
        members = tuple(
            member if isinstance(member, Parallelism) else Parallelism.parse(member)
            for member in value
        )
        return cls(members)

    @property
    def size(self) -> int:
        """The base ``K`` of the digit encoding."""
        return len(self.members)

    def __iter__(self) -> Iterator[Parallelism]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, member: Parallelism) -> bool:
        return member in self.members

    def __getitem__(self, code: int) -> Parallelism:
        return self.members[code]

    def member(self, code: int) -> Parallelism:
        """The strategy encoded by digit ``code``."""
        if not 0 <= code < self.size:
            raise ValueError(
                f"strategy code {code} out of range for a {self.size}-way space"
            )
        return self.members[code]

    def code_of(self, member: Parallelism) -> int:
        """The digit encoding ``member`` within this space."""
        try:
            return self.members.index(member)
        except ValueError:
            raise ValueError(
                f"{member} is not part of the strategy space {self.describe()}"
            ) from None

    def num_assignments(self, num_layers: int) -> int:
        """Size of the per-level assignment space (``K**L``)."""
        return self.size ** num_layers

    def describe(self) -> str:
        """Human-readable form, e.g. ``"dp,mp,pp"``."""
        return ",".join(member.short for member in self.members)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


#: The paper's binary dp/mp axis -- the default everywhere.
DEFAULT_SPACE = StrategySpace((Parallelism.DATA, Parallelism.MODEL))
#: Every registered strategy, in canonical digit order.
FULL_SPACE = StrategySpace(
    (Parallelism.DATA, Parallelism.MODEL, Parallelism.PIPELINE)
)


@dataclasses.dataclass(frozen=True)
class LayerAssignment:
    """Parallelism choices for every weighted layer at one hierarchy level."""

    choices: tuple[Parallelism, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError("LayerAssignment requires at least one layer")

    @classmethod
    def of(cls, choices: Iterable[Parallelism | str | int]) -> "LayerAssignment":
        """Build an assignment from parallelism values, strings or bits."""
        parsed: list[Parallelism] = []
        for choice in choices:
            if isinstance(choice, Parallelism):
                parsed.append(choice)
            elif isinstance(choice, str):
                parsed.append(Parallelism.parse(choice))
            elif isinstance(choice, int):
                # Canonical integer codes: 0 = dp, 1 = mp, 2 = pp.
                parsed.append(FULL_SPACE.member(choice))
            else:
                raise TypeError(f"cannot interpret {choice!r} as a parallelism choice")
        return cls(tuple(parsed))

    @classmethod
    def uniform(cls, parallelism: Parallelism, num_layers: int) -> "LayerAssignment":
        """All ``num_layers`` layers assigned the same parallelism."""
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        return cls(tuple([parallelism] * num_layers))

    @classmethod
    def from_codes(
        cls,
        codes: int,
        num_layers: int,
        strategies: "StrategySpace | Sequence[Parallelism] | str | None" = None,
    ) -> "LayerAssignment":
        """Decode a base-``K`` digit pattern (least-significant digit =
        layer 0) into an assignment over ``strategies``.

        For the default binary dp/mp space this is exactly the historical
        bit encoding of the Figures 9/10 exploration (``0`` = dp,
        ``1`` = mp).
        """
        space = StrategySpace.parse(strategies)
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        if codes < 0 or codes >= space.num_assignments(num_layers):
            raise ValueError(
                f"code pattern {codes} out of range for {num_layers} layers "
                f"over a {space.size}-way strategy space"
            )
        base = space.size
        choices = []
        for _ in range(num_layers):
            codes, digit = divmod(codes, base)
            choices.append(space.members[digit])
        return cls(tuple(choices))

    def to_codes(
        self,
        strategies: "StrategySpace | Sequence[Parallelism] | str | None" = None,
    ) -> int:
        """Inverse of :meth:`from_codes`."""
        space = StrategySpace.parse(strategies)
        value = 0
        for choice in reversed(self.choices):
            value = value * space.size + space.code_of(choice)
        return value

    @classmethod
    def from_bits(cls, bits: int, num_layers: int) -> "LayerAssignment":
        """Decode an integer bit-pattern (LSB = layer 0) into an assignment.

        .. deprecated:: PR 2
            Thin shim over :meth:`from_codes` with the default binary
            dp/mp space; the two are bit-exact for that space.
        """
        warnings.warn(
            "LayerAssignment.from_bits is deprecated; use "
            "LayerAssignment.from_codes with the default dp/mp space "
            "(bit-exact for that space)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.from_codes(bits, num_layers, DEFAULT_SPACE)

    def to_bits(self) -> int:
        """Inverse of :meth:`from_bits`.

        .. deprecated:: PR 2
            Thin shim over :meth:`to_codes` with the default binary dp/mp
            space.
        """
        warnings.warn(
            "LayerAssignment.to_bits is deprecated; use "
            "LayerAssignment.to_codes with the default dp/mp space "
            "(bit-exact for that space)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.to_codes(DEFAULT_SPACE)

    def __iter__(self) -> Iterator[Parallelism]:
        return iter(self.choices)

    def __len__(self) -> int:
        return len(self.choices)

    def __getitem__(self, index: int) -> Parallelism:
        return self.choices[index]

    @property
    def num_layers(self) -> int:
        return len(self.choices)

    def count(self, parallelism: Parallelism) -> int:
        """Number of layers assigned ``parallelism``."""
        return sum(1 for choice in self.choices if choice is parallelism)

    def is_uniform(self, parallelism: Parallelism) -> bool:
        """True when every layer uses ``parallelism``."""
        return all(choice is parallelism for choice in self.choices)

    def as_strings(self) -> list[str]:
        return [choice.short for choice in self.choices]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "-".join(self.as_strings())


@dataclasses.dataclass(frozen=True)
class HierarchicalAssignment:
    """Parallelism choices for every layer at every hierarchy level.

    ``levels[0]`` corresponds to the topmost partition (``H1`` in the paper,
    splitting the whole array into two halves) and ``levels[-1]`` to the
    deepest partition between individual accelerators.
    """

    levels: tuple[LayerAssignment, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("HierarchicalAssignment requires at least one level")
        num_layers = self.levels[0].num_layers
        for level in self.levels:
            if level.num_layers != num_layers:
                raise ValueError(
                    "all hierarchy levels must cover the same number of layers"
                )

    @classmethod
    def of(cls, levels: Sequence[LayerAssignment | Sequence]) -> "HierarchicalAssignment":
        parsed = tuple(
            level if isinstance(level, LayerAssignment) else LayerAssignment.of(level)
            for level in levels
        )
        return cls(parsed)

    @classmethod
    def uniform(
        cls, parallelism: Parallelism, num_levels: int, num_layers: int
    ) -> "HierarchicalAssignment":
        """Every layer at every level uses ``parallelism`` (the paper's defaults)."""
        if num_levels <= 0:
            raise ValueError(f"num_levels must be positive, got {num_levels}")
        level = LayerAssignment.uniform(parallelism, num_layers)
        return cls(tuple([level] * num_levels))

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_layers(self) -> int:
        return self.levels[0].num_layers

    @property
    def num_accelerators(self) -> int:
        """Number of accelerators implied by the number of levels (2^H)."""
        return 1 << self.num_levels

    def __iter__(self) -> Iterator[LayerAssignment]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, level: int) -> LayerAssignment:
        return self.levels[level]

    def choice(self, level: int, layer: int) -> Parallelism:
        """Parallelism of ``layer`` at hierarchy ``level`` (both 0-based)."""
        return self.levels[level][layer]

    def layer_choices(self, layer: int) -> tuple[Parallelism, ...]:
        """The per-level choices for one layer, from H1 down to the deepest level."""
        return tuple(level[layer] for level in self.levels)

    def is_uniform(self, parallelism: Parallelism) -> bool:
        return all(level.is_uniform(parallelism) for level in self.levels)

    def replace_level(self, level: int, assignment: LayerAssignment) -> "HierarchicalAssignment":
        """Return a copy with one hierarchy level replaced."""
        if assignment.num_layers != self.num_layers:
            raise ValueError("replacement level has a different number of layers")
        levels = list(self.levels)
        levels[level] = assignment
        return HierarchicalAssignment(tuple(levels))

    def replace_layer(
        self, layer: int, choices: Sequence[Parallelism]
    ) -> "HierarchicalAssignment":
        """Return a copy with one layer's per-level choices replaced."""
        if len(choices) != self.num_levels:
            raise ValueError(
                f"expected {self.num_levels} per-level choices, got {len(choices)}"
            )
        levels = []
        for level_index, level in enumerate(self.levels):
            new_choices = list(level.choices)
            new_choices[layer] = choices[level_index]
            levels.append(LayerAssignment(tuple(new_choices)))
        return HierarchicalAssignment(tuple(levels))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " | ".join(f"H{i + 1}:{level}" for i, level in enumerate(self.levels))
