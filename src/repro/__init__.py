"""repro -- a reproduction of HyPar (Song et al., HPCA 2019).

HyPar decides, per weighted layer and per hierarchy level of an accelerator
array, whether DNN training should use data parallelism or model
parallelism, by minimising the total inter-accelerator communication with a
linear-time dynamic program.  This package provides:

* :mod:`repro.nn` -- layer/model descriptions and the ten evaluation networks;
* :mod:`repro.core` -- the communication model and the partition search
  (the paper's contribution), plus baselines and an exhaustive validator;
* :mod:`repro.accelerator` -- the HMC-based accelerator and energy models;
* :mod:`repro.interconnect` -- H-tree and torus topologies;
* :mod:`repro.sim` -- the event-driven training-step simulator;
* :mod:`repro.analysis` -- drivers that regenerate every figure of the
  paper's evaluation;
* :mod:`repro.cli` -- a command-line interface (``hypar ...``).

Quickstart
----------

>>> from repro import get_model, HierarchicalPartitioner
>>> model = get_model("AlexNet")
>>> result = HierarchicalPartitioner(num_levels=4).partition(model, batch_size=256)
>>> print(result.describe())  # doctest: +SKIP
"""

from repro.accelerator import ArrayConfig, EnergyModel
from repro.analysis import ExperimentRunner
from repro.core import (
    CommunicationModel,
    HierarchicalAssignment,
    HierarchicalPartitioner,
    LayerAssignment,
    Parallelism,
    ScalingMode,
    TwoWayPartitioner,
)
from repro.interconnect import HTreeTopology, TorusTopology, build_topology
from repro.nn import DNNModel, build_model, get_model
from repro.sim import (
    SimulationResult,
    SimulationSpec,
    TrainingSimulator,
    simulate,
    simulate_partitioned,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Parallelism",
    "LayerAssignment",
    "HierarchicalAssignment",
    "CommunicationModel",
    "TwoWayPartitioner",
    "HierarchicalPartitioner",
    "ScalingMode",
    "DNNModel",
    "build_model",
    "get_model",
    "ArrayConfig",
    "EnergyModel",
    "HTreeTopology",
    "TorusTopology",
    "build_topology",
    "TrainingSimulator",
    "SimulationSpec",
    "SimulationResult",
    "simulate",
    "simulate_partitioned",
    "ExperimentRunner",
]
