"""Event-driven simulation of DNN training steps on the accelerator array.

* :mod:`repro.sim.engine` -- a generic discrete-event scheduling engine
  (resources, dependent tasks, event queue).
* :mod:`repro.sim.training` -- builds the task graph of one training step
  (forward, error backward, gradient computation, weight update, and every
  tensor exchange dictated by the communication model) and runs it.
* :mod:`repro.sim.metrics` -- the report records (time, energy, traffic).
* :mod:`repro.sim.trace` -- explicit point-to-point transfer lists derived
  from a partitioned network (for link-load studies and export).
"""

from repro.sim.engine import (
    EventDrivenEngine,
    Resource,
    Schedule,
    ScheduledTask,
    SimulationError,
    Task,
)
from repro.sim.metrics import EnergyBreakdown, PhaseBreakdown, TrainingStepReport
from repro.sim.trace import CommunicationTrace, TraceBuilder, Transfer
from repro.sim.training import PHASES, TrainingSimulator, simulate_partitioned

__all__ = [
    "TraceBuilder",
    "CommunicationTrace",
    "Transfer",
    "EventDrivenEngine",
    "Resource",
    "Task",
    "Schedule",
    "ScheduledTask",
    "SimulationError",
    "TrainingSimulator",
    "simulate_partitioned",
    "PHASES",
    "TrainingStepReport",
    "PhaseBreakdown",
    "EnergyBreakdown",
]
