"""Event-driven simulation of DNN training steps on the accelerator array.

* :mod:`repro.sim.engine` -- a generic discrete-event scheduling engine
  (resources, dependent tasks, event queue).
* :mod:`repro.sim.api` -- the unified entry point: :func:`simulate` over a
  :class:`SimulationSpec`, with keyword-only engine selection.
* :mod:`repro.sim.backend` -- the ``SimulatorBackend`` seam and engine
  registry (``"analytic"`` / ``"network"``).
* :mod:`repro.sim.training` -- builds the task graph of one training step
  (forward, error backward, gradient computation, weight update, and every
  tensor exchange dictated by the communication model) and runs it.
* :mod:`repro.sim.network` -- the contention-aware discrete-event engine:
  per-device PUs and per-physical-link resources with real queueing.
* :mod:`repro.sim.metrics` -- the report records (time, energy, traffic).
* :mod:`repro.sim.trace` -- explicit point-to-point transfer lists derived
  from a partitioned network (for link-load studies and export).
"""

from repro.sim.api import SimulationResult, SimulationSpec, simulate
from repro.sim.backend import (
    SIM_ENGINES,
    SimulatorBackend,
    get_backend,
    validate_sim_engine,
)
from repro.sim.engine import (
    EventDrivenEngine,
    Resource,
    Schedule,
    ScheduledTask,
    SimulationError,
    Task,
)
from repro.sim.metrics import EnergyBreakdown, PhaseBreakdown, TrainingStepReport
from repro.sim.trace import CommunicationTrace, TraceBuilder, Transfer
from repro.sim.training import PHASES, TrainingSimulator, simulate_partitioned

__all__ = [
    "TraceBuilder",
    "CommunicationTrace",
    "Transfer",
    "EventDrivenEngine",
    "Resource",
    "Task",
    "Schedule",
    "ScheduledTask",
    "SimulationError",
    "TrainingSimulator",
    "SimulationSpec",
    "SimulationResult",
    "simulate",
    "SIM_ENGINES",
    "SimulatorBackend",
    "get_backend",
    "validate_sim_engine",
    "simulate_partitioned",
    "PHASES",
    "TrainingStepReport",
    "PhaseBreakdown",
    "EnergyBreakdown",
]
