"""Result records produced by the training-step simulator."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence


@dataclasses.dataclass(frozen=True)
class PhaseBreakdown:
    """Time spent in one phase of the training step (seconds)."""

    compute_seconds: float
    communication_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.communication_seconds


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one training step split by source (joules)."""

    compute_joules: float
    sram_joules: float
    dram_joules: float
    communication_joules: float

    @property
    def total_joules(self) -> float:
        return (
            self.compute_joules
            + self.sram_joules
            + self.dram_joules
            + self.communication_joules
        )

    @property
    def parallelism_independent_joules(self) -> float:
        """The share of the energy that no partition choice can change."""
        return self.compute_joules + self.sram_joules + self.dram_joules


@dataclasses.dataclass(frozen=True)
class TrainingStepReport:
    """Simulated cost of one training step of one model under one strategy.

    Attributes
    ----------
    model_name, strategy_name, topology_name:
        Identification of the configuration simulated.
    num_accelerators, batch_size:
        Array size and training batch size.
    step_seconds:
        End-to-end latency of the step (the schedule's makespan).
    energy:
        Energy breakdown for the step.
    communication_bytes:
        Total bytes crossing pair boundaries during the step (all levels).
    phase_seconds:
        Per-phase timing breakdown, keyed by ``"forward"``, ``"backward"``,
        ``"gradient"``.
    level_communication_bytes:
        Traffic per hierarchy level (index 0 = topmost level H1).
    """

    model_name: str
    strategy_name: str
    topology_name: str
    num_accelerators: int
    batch_size: int
    step_seconds: float
    energy: EnergyBreakdown
    communication_bytes: float
    phase_seconds: Mapping[str, PhaseBreakdown]
    level_communication_bytes: Sequence[float]

    @property
    def energy_joules(self) -> float:
        return self.energy.total_joules

    @property
    def throughput_samples_per_second(self) -> float:
        """Training throughput implied by the step latency."""
        if self.step_seconds <= 0:
            return float("inf")
        return self.batch_size / self.step_seconds

    @property
    def communication_gb(self) -> float:
        """Total communication per step in gigabytes (the unit of Figure 8)."""
        return self.communication_bytes / 1e9

    @property
    def compute_seconds(self) -> float:
        return sum(phase.compute_seconds for phase in self.phase_seconds.values())

    @property
    def communication_seconds(self) -> float:
        return sum(
            phase.communication_seconds for phase in self.phase_seconds.values()
        )

    def speedup_over(self, baseline: "TrainingStepReport") -> float:
        """Performance normalised to ``baseline`` (the paper's Figures 6, 9-13)."""
        if self.step_seconds <= 0:
            return float("inf")
        return baseline.step_seconds / self.step_seconds

    def energy_efficiency_over(self, baseline: "TrainingStepReport") -> float:
        """Energy saving normalised to ``baseline`` (the paper's Figure 7)."""
        if self.energy_joules <= 0:
            return float("inf")
        return baseline.energy_joules / self.energy_joules

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.model_name} / {self.strategy_name} on {self.topology_name} "
            f"({self.num_accelerators} accelerators, batch {self.batch_size}): "
            f"{self.step_seconds * 1e3:.2f} ms/step, "
            f"{self.energy_joules:.2f} J/step, "
            f"{self.communication_gb:.3f} GB communicated"
        )
