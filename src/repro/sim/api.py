"""The redesigned simulation entry point: one spec, one call, two engines.

Historically the package had two diverging entry points -- the
:class:`~repro.sim.training.TrainingSimulator` method (platform via the
constructor, assignment required) and the module-level
``simulate_partitioned`` helper (platform via positional arguments, search
implied).  This module unifies them:

* :class:`SimulationSpec` -- one frozen record naming the platform and the
  engine (batch size, array, topology, scaling mode, strategy space,
  micro-batches, ``sim_engine``);
* :func:`simulate` -- the single entry point.  Given an assignment it
  simulates it; given none (on a multi-accelerator array) it runs HyPar's
  hierarchical search first, sharing one compiled cost table between the
  search and the simulation.  Engine selection is keyword-only
  (``sim_engine="analytic" | "network"``, see :mod:`repro.sim.backend`);
* :class:`SimulationResult` -- the report, the (searched or given)
  assignment, the engine that produced it, and the raw schedule.

The old signatures survive as thin ``DeprecationWarning`` shims
(``simulate_partitioned``) that delegate here bit-exactly.
"""

from __future__ import annotations

import dataclasses

from repro.accelerator.array import ArrayConfig
from repro.core.costs import HierarchicalCostTable, TableCache
from repro.core.hierarchical import DEFAULT_BATCH_SIZE, HierarchicalPartitioner
from repro.core.parallelism import HierarchicalAssignment, StrategySpace
from repro.core.tensors import ScalingMode
from repro.interconnect import Topology
from repro.nn.model import DNNModel
from repro.sim.backend import validate_sim_engine
from repro.sim.engine import Schedule
from repro.sim.metrics import TrainingStepReport
from repro.sim.training import DEFAULT_NUM_MICROBATCHES, TrainingSimulator


@dataclasses.dataclass(frozen=True)
class SimulationSpec:
    """Everything that fixes one simulated platform (and its engine).

    The defaults are the paper's evaluation platform: batch 256 on sixteen
    accelerators joined by an H tree, parallelism-aware scaling over the
    dp/mp strategy space, four micro-batches, analytic engine.
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    array: ArrayConfig | None = None
    topology: Topology | None = None
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE
    strategies: StrategySpace | str | None = None
    num_microbatches: int = DEFAULT_NUM_MICROBATCHES
    sim_engine: str = "analytic"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        validate_sim_engine(self.sim_engine)

    def build_simulator(
        self,
        table_cache: TableCache | None = None,
        backend: str | None = None,
    ) -> TrainingSimulator:
        """A :class:`TrainingSimulator` configured exactly as this spec."""
        return TrainingSimulator(
            self.array,
            self.topology,
            scaling_mode=self.scaling_mode,
            strategies=self.strategies,
            num_microbatches=self.num_microbatches,
            table_cache=table_cache,
            backend=backend,
            sim_engine=self.sim_engine,
        )


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one :func:`simulate` call."""

    report: TrainingStepReport
    assignment: HierarchicalAssignment | None
    sim_engine: str
    schedule: Schedule

    @property
    def step_seconds(self) -> float:
        return self.report.step_seconds


def simulate(
    model: DNNModel,
    assignment: HierarchicalAssignment | None = None,
    spec: SimulationSpec | None = None,
    *,
    sim_engine: str | None = None,
    strategy_name: str | None = None,
    simulator: TrainingSimulator | None = None,
    cost_table: HierarchicalCostTable | None = None,
) -> SimulationResult:
    """Simulate one training step of ``model`` on the platform of ``spec``.

    With ``assignment=None`` on a multi-accelerator array, HyPar's
    hierarchical search runs first and the searched assignment is
    simulated (and returned); the search and the simulation share one
    compiled cost table.  An explicit ``assignment`` is simulated as-is.

    ``sim_engine`` (keyword-only) overrides the spec's engine for this
    call.  ``simulator`` optionally reuses an existing
    :class:`TrainingSimulator` (its platform wins over ``spec``'s;
    sweeps pass their cached, table-cache-wired instance).
    ``strategy_name`` defaults to ``"HyPar"`` for searched assignments and
    ``"custom"`` for explicit ones.
    """
    spec = spec if spec is not None else SimulationSpec()
    engine = validate_sim_engine(
        spec.sim_engine if sim_engine is None else sim_engine
    )
    sim = simulator if simulator is not None else spec.build_simulator()

    if assignment is None and sim.array.num_levels > 0:
        partitioner = HierarchicalPartitioner(
            num_levels=sim.array.num_levels,
            communication_model=sim.communication_model,
            scaling_mode=sim.scaling_mode,
            strategies=sim.strategies,
        )
        table = sim.cost_table(model, spec.batch_size)
        searched = partitioner.partition(model, spec.batch_size, table=table)
        assignment = searched.assignment
        report = sim.simulate(
            model,
            assignment,
            spec.batch_size,
            strategy_name or "HyPar",
            cost_table=table,
            sim_engine=engine,
        )
    else:
        report = sim.simulate(
            model,
            assignment,
            spec.batch_size,
            strategy_name or "custom",
            cost_table=cost_table,
            sim_engine=engine,
        )
    return SimulationResult(
        report=report,
        assignment=assignment,
        sim_engine=engine,
        schedule=sim.last_schedule,
    )
