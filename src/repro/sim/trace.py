"""Communication-trace extraction.

The analytical model answers "how many bytes cross each pair boundary?";
this module turns that answer into an explicit list of point-to-point
transfers -- which accelerator sends how many bytes to which accelerator,
for which layer, in which phase of the training step, at which hierarchy
level.  Traces are useful for

* validating that the per-transfer accounting sums back to the analytical
  totals (done in the test suite),
* mapping the traffic onto a physical topology to study link utilisation
  (via :func:`repro.interconnect.routing.link_loads`), and
* exporting workloads for external network simulators.
"""

from __future__ import annotations

import dataclasses

from repro.core.communication import CommunicationModel
from repro.core.parallelism import HierarchicalAssignment
from repro.core.strategies import strategy_spec
from repro.core.tensors import ScalingMode, descend_scales, initial_scales, model_tensors
from repro.interconnect.topology import Topology, hierarchical_groups
from repro.nn.model import DNNModel

#: Phases a transfer can belong to.
TRANSFER_PHASES = ("forward", "backward", "gradient")


@dataclasses.dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer of a training step."""

    source: int
    destination: int
    num_bytes: float
    layer_name: str
    phase: str
    level: int
    kind: str  # "intra" (partial-sum exchange) or "inter" (boundary re-layout)

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if self.phase not in TRANSFER_PHASES:
            raise ValueError(f"unknown phase {self.phase!r}")
        if self.kind not in ("intra", "inter"):
            raise ValueError(f"unknown transfer kind {self.kind!r}")
        if self.source == self.destination:
            raise ValueError("a transfer needs two distinct accelerators")


@dataclasses.dataclass(frozen=True)
class CommunicationTrace:
    """All transfers of one training step of one partitioned network."""

    model_name: str
    num_accelerators: int
    batch_size: int
    transfers: tuple[Transfer, ...]

    @property
    def total_bytes(self) -> float:
        return sum(transfer.num_bytes for transfer in self.transfers)

    def bytes_by_level(self) -> dict[int, float]:
        totals: dict[int, float] = {}
        for transfer in self.transfers:
            totals[transfer.level] = totals.get(transfer.level, 0.0) + transfer.num_bytes
        return totals

    def bytes_by_phase(self) -> dict[str, float]:
        totals = {phase: 0.0 for phase in TRANSFER_PHASES}
        for transfer in self.transfers:
            totals[transfer.phase] += transfer.num_bytes
        return totals

    def bytes_by_layer(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for transfer in self.transfers:
            totals[transfer.layer_name] = (
                totals.get(transfer.layer_name, 0.0) + transfer.num_bytes
            )
        return totals

    def bytes_by_accelerator_pair(self) -> dict[tuple[int, int], float]:
        """Traffic per unordered accelerator pair."""
        totals: dict[tuple[int, int], float] = {}
        for transfer in self.transfers:
            key = tuple(sorted((transfer.source, transfer.destination)))
            totals[key] = totals.get(key, 0.0) + transfer.num_bytes
        return totals

    def filter(
        self,
        phase: str | None = None,
        level: int | None = None,
        layer_name: str | None = None,
    ) -> list[Transfer]:
        """Transfers matching the given criteria (all optional)."""
        selected = []
        for transfer in self.transfers:
            if phase is not None and transfer.phase != phase:
                continue
            if level is not None and transfer.level != level:
                continue
            if layer_name is not None and transfer.layer_name != layer_name:
                continue
            selected.append(transfer)
        return selected

    def link_traffic(self, topology: Topology) -> dict[tuple, float]:
        """Map the trace onto a physical topology: bytes carried per link."""
        import networkx as nx

        graph = topology.graph
        loads: dict[tuple, float] = {
            tuple(sorted(edge, key=str)): 0.0 for edge in graph.edges
        }
        for transfer in self.transfers:
            path = nx.shortest_path(graph, transfer.source, transfer.destination)
            for u, v in zip(path, path[1:]):
                key = tuple(sorted((u, v), key=str))
                loads[key] += transfer.num_bytes
        return loads


class TraceBuilder:
    """Builds :class:`CommunicationTrace` objects from a partitioned network.

    The per-pair-boundary byte counts come from the same communication model
    and scaling rules used by the partitioner and the simulator, so the
    trace's total always equals the analytical objective.  Within one pair
    boundary the traffic is split evenly across the partner accelerators:
    accelerator ``i`` of the left group exchanges with accelerator ``i`` of
    the right group (the natural pairing of the recursive halving).
    """

    def __init__(
        self,
        communication_model: CommunicationModel | None = None,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    ) -> None:
        self.communication_model = communication_model or CommunicationModel()
        self.scaling_mode = ScalingMode.parse(scaling_mode)

    def build(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment,
        batch_size: int,
    ) -> CommunicationTrace:
        """Extract the full transfer list for one training step."""
        if assignment.num_layers != len(model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model has {len(model)}"
            )
        num_levels = assignment.num_levels
        num_accelerators = assignment.num_accelerators
        comm = self.communication_model

        transfers: list[Transfer] = []
        scales = initial_scales(len(model))
        for level in range(num_levels):
            tensors = model_tensors(model, batch_size, scales)
            level_assignment = assignment[level]
            pairs = hierarchical_groups(num_accelerators, level)
            for index, (layer, choice) in enumerate(zip(model, level_assignment)):
                layer_tensor = tensors[index]
                intra = comm.intra_layer_bytes(layer_tensor, choice)
                intra_phase = strategy_spec(choice).intra_phase
                # One (forward, backward) re-layout per incoming DAG edge;
                # a chain layer has the single boundary from its
                # predecessor, a merge layer one per branch.
                amounts = [(intra, intra_phase, "intra")]
                for source in layer.inputs:
                    previous = level_assignment[source]
                    boundary = tensors[source]
                    amounts.append(
                        (
                            comm.inter_layer_forward_bytes(previous, choice, boundary),
                            "forward",
                            "inter",
                        )
                    )
                    amounts.append(
                        (
                            comm.inter_layer_backward_bytes(previous, choice, boundary),
                            "backward",
                            "inter",
                        )
                    )

                for left, right, in pairs:
                    flows = list(zip(left, right))
                    for amount, phase, kind in amounts:
                        if amount <= 0:
                            continue
                        # The pair-boundary amount already counts both
                        # directions (the model's pair factor), so half flows
                        # left->right and half right->left.
                        per_flow = amount / (2 * len(flows))
                        for a, b in flows:
                            transfers.append(
                                Transfer(a, b, per_flow, layer.name, phase, level, kind)
                            )
                            transfers.append(
                                Transfer(b, a, per_flow, layer.name, phase, level, kind)
                            )
            scales = descend_scales(scales, level_assignment, self.scaling_mode)

        return CommunicationTrace(
            model_name=model.name,
            num_accelerators=num_accelerators,
            batch_size=batch_size,
            transfers=tuple(transfers),
        )
