"""Contention-aware discrete-event network simulation of one training step.

The ``"network"`` backend of :func:`repro.sim.api.simulate`.  Where the
analytic engine (:mod:`repro.sim.training`) serializes all compute on one
aggregate ``array-pu`` resource and models each hierarchy level as one
aggregate link, this engine instantiates the *physical* platform from the
:class:`~repro.interconnect.Topology`:

* one PU resource per device (``pu-0`` .. ``pu-N-1``); a layer pass runs in
  lock-step across the array, so a compute task occupies every PU for the
  per-accelerator duration -- but communication tasks occupy *links only*,
  which lets the PUs compute while exchanges are in flight;
* one resource per physical link of ``topology.graph`` (accelerator-switch
  and accelerator-accelerator edges alike), carrying that link's
  ``bandwidth`` attribute.

A pair boundary's exchange at hierarchy level ``h`` is routed as the
shortest-path flows between the paired devices (``left[i] <-> right[i]``,
the pairing of :class:`~repro.sim.trace.TraceBuilder`): one task per
boundary that occupies every link on the union of its flow paths for the
*bottleneck* duration -- the maximum over links of (bytes crossing that
link) / (link bandwidth).  Two boundaries whose routes share a physical
link therefore queue on it, which is exactly the contention the analytic
model's per-level aggregate cannot express: on the H tree the binary-tree
traffic pattern gets dedicated links and the two engines agree bit-tight,
while on the torus same-level boundaries zig-zag across shared mesh links
and the network engine charges the resulting serialization.

Scheduling differences from the analytic chain (both are *relaxations*,
never added cost, so uncongested no-overlap cases stay equal):

* hierarchy levels of one logical exchange still chain deepest-first, but
  per boundary -- the level-``h`` task of group ``p`` waits only on its two
  child boundaries at level ``h+1``, and disjoint boundaries run in
  parallel on their own links;
* the gradient all-reduce (``gradient-intra``, dp's weight-update
  exchange) no longer gates the predecessor layer's backward compute: the
  error is already propagated once the ``backward-inter`` re-layout is
  done, so the all-reduce drains on the links while the PUs continue down
  the backward chain (it still extends the step when it finishes last);
* micro-batched pipeline transfers keep the analytic gating (downstream
  compute resumes after the first chunk of the shallowest level).

Energy and byte accounting are computed from the same per-level amounts
with the same formulas as the analytic engine, so reports differ only in
the scheduled times.  ``PhaseBreakdown.communication_seconds`` aggregates
per-link task occupancy (a level with ``2**h`` busy boundaries contributes
each boundary's duration), which is the physically meaningful total here;
step time, energy and bytes are the cross-engine comparable quantities.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.core.parallelism import Parallelism
from repro.core.strategies import strategy_spec
from repro.interconnect.topology import Topology, hierarchical_groups
from repro.nn.model import DNNModel
from repro.sim.engine import EventDrivenEngine, Schedule, Task
from repro.sim.metrics import EnergyBreakdown, PhaseBreakdown, TrainingStepReport
from repro.sim.training import PHASES, TrainingSimulator


def link_name(u, v) -> str:
    """Canonical resource name of the physical link ``{u, v}``."""
    a, b = sorted((str(u), str(v)))
    return f"link:{a}<->{b}"


class _PairPlan:
    """Pre-routed flow plan of one pair boundary at one hierarchy level.

    ``link_loads`` lists ``(link name, bandwidth bytes/s, flow count)`` for
    every physical link on the union of the boundary's flow paths;
    ``num_flows`` is the number of device pairs exchanging (half the group
    size).  The per-link byte load of a ``per_pair``-byte exchange is
    ``count * per_pair / num_flows`` (each flow carries an equal share,
    both directions traverse the same undirected links).
    """

    __slots__ = ("link_loads", "num_flows")

    def __init__(
        self, link_loads: tuple[tuple[str, float, int], ...], num_flows: int
    ) -> None:
        self.link_loads = link_loads
        self.num_flows = num_flows

    def duration(self, per_pair_bytes: float) -> float:
        """Bottleneck transfer time of a ``per_pair_bytes`` exchange."""
        per_flow = per_pair_bytes / self.num_flows
        return max(
            count * per_flow / bandwidth
            for _, bandwidth, count in self.link_loads
        )


def flow_plans(topology: Topology) -> list[list[_PairPlan]]:
    """Routed plans for every boundary, indexed ``[level][pair]`` (cached).

    Cached on the topology instance next to its other derived-quantity
    caches: the graph is immutable, and every simulated step of a sweep
    reuses the same routes.
    """
    plans = getattr(topology, "_network_flow_plans", None)
    if plans is not None:
        return plans
    graph = topology.graph
    plans = []
    for level in range(topology.num_levels):
        level_plans = []
        for left, right in hierarchical_groups(topology.num_accelerators, level):
            loads: dict[str, list] = {}
            for a, b in zip(left, right):
                path = nx.shortest_path(graph, a, b)
                for u, v in zip(path, path[1:]):
                    key = link_name(u, v)
                    entry = loads.get(key)
                    if entry is None:
                        bandwidth = graph.edges[u, v].get(
                            "bandwidth", topology.link_bandwidth_bytes
                        )
                        loads[key] = [bandwidth, 1]
                    else:
                        entry[1] += 1
            level_plans.append(
                _PairPlan(
                    link_loads=tuple(
                        (key, bandwidth, count)
                        for key, (bandwidth, count) in loads.items()
                    ),
                    num_flows=len(left),
                )
            )
        plans.append(level_plans)
    topology._network_flow_plans = plans
    return plans


class NetworkBackend:
    """:class:`~repro.sim.backend.SimulatorBackend` for the network engine."""

    name = "network"

    def run_step(
        self,
        simulator: TrainingSimulator,
        model: DNNModel,
        batch_size: int,
        strategy_name: str,
        level_comm: list,
    ) -> tuple[TrainingStepReport, Schedule]:
        return _run_network_step(
            simulator, model, batch_size, strategy_name, level_comm
        )


def _run_network_step(
    sim: TrainingSimulator,
    model: DNNModel,
    batch_size: int,
    strategy_name: str,
    level_comm: list,
) -> tuple[TrainingStepReport, Schedule]:
    array = sim.array
    topology = sim.topology
    num_levels = array.num_levels
    num_accelerators = array.num_accelerators
    accelerators = array.accelerators()
    reference_accelerator = accelerators[0]

    engine = EventDrivenEngine()
    pus = tuple(engine.resource(f"pu-{i}") for i in range(num_accelerators))
    if num_levels:
        plans = flow_plans(topology)
        level_hops = [topology.average_hops(level) for level in range(num_levels)]

    compute_energy = 0.0
    sram_energy = 0.0
    dram_energy = 0.0
    comm_energy = 0.0
    level_comm_bytes = [0.0] * num_levels

    pass_cache = sim._pass_cache

    def add_compute(
        name: str, layer, macs_total: float, dram_words_total: float, phase: str, deps
    ) -> Task:
        nonlocal compute_energy, sram_energy, dram_energy
        cache_key = (layer, macs_total, dram_words_total, num_accelerators)
        execution = pass_cache.get(cache_key)
        if execution is None:
            if len(pass_cache) >= 4096:
                pass_cache.clear()
            execution = reference_accelerator.execute_layer_pass(
                layer,
                macs_total / num_accelerators,
                dram_words_total / num_accelerators,
            )
            pass_cache[cache_key] = execution
        compute_energy += execution.compute_energy * num_accelerators
        sram_energy += execution.sram_energy * num_accelerators
        dram_energy += execution.dram_energy * num_accelerators
        return engine.add_task(
            name,
            execution.seconds,
            resources=pus,
            deps=deps,
            tags={"phase": phase, "kind": "compute", "layer": layer.name},
        )

    def add_communication(
        name: str,
        bytes_per_level: Sequence[float],
        phase: str,
        layer_name: str,
        deps,
        chunks: int = 1,
    ) -> tuple[Task, ...]:
        """One logical exchange as per-boundary link tasks, chained per group.

        Returns the gate tasks the downstream consumer must wait on: the
        shallowest scheduled level's boundary tasks (first micro-batch
        chunks when ``chunks > 1``, matching the analytic gating), or a
        zero-duration communication marker for an all-zero exchange.
        """
        nonlocal comm_energy
        chain_deps = tuple(deps)
        prev_level: int | None = None
        prev_last: list[Task] = []
        gates: tuple[Task, ...] = ()
        for level in reversed(range(num_levels)):
            per_pair = bytes_per_level[level]
            if per_pair <= 0:
                continue
            num_pairs = 1 << level
            level_comm_bytes[level] += per_pair * num_pairs
            comm_energy += array.energy_model.communication_energy_bytes(
                per_pair * num_pairs, level_hops[level]
            )
            firsts: list[Task] = []
            lasts: list[Task] = []
            for pair_index in range(num_pairs):
                plan = plans[level][pair_index]
                if prev_level is None:
                    task_deps = chain_deps
                else:
                    # This boundary's group covers a contiguous span of the
                    # deeper level's groups; wait on exactly those.
                    span = 1 << (prev_level - level)
                    task_deps = tuple(
                        prev_last[pair_index * span : (pair_index + 1) * span]
                    )
                first, last = engine.add_microbatched_task(
                    f"{name}/L{level}/p{pair_index}",
                    plan.duration(per_pair),
                    chunks,
                    resources=tuple(
                        engine.resource(key) for key, _, _ in plan.link_loads
                    ),
                    deps=task_deps,
                    tags={
                        "phase": phase,
                        "kind": "communication",
                        "layer": layer_name,
                        "level": level,
                        "pair": pair_index,
                    },
                )
                firsts.append(first)
                lasts.append(last)
            prev_level = level
            prev_last = lasts
            gates = tuple(firsts) if chunks > 1 else tuple(lasts)
        if not gates:
            marker = engine.add_task(
                f"{name}/none",
                0.0,
                deps=chain_deps,
                tags={"phase": phase, "kind": "communication", "layer": layer_name},
            )
            return (marker,)
        return gates

    # ------------------------------------------------------------------
    # Forward pass (mirrors the analytic task graph, with tuple gates).
    # ------------------------------------------------------------------

    layers = list(model)
    is_chain = model.is_chain
    layer_consumers = [model.consumers(layer.index) for layer in layers]
    if num_levels:
        layer_pipelined = [
            any(
                level_comm[level][index].parallelism is Parallelism.PIPELINE
                for level in range(num_levels)
            )
            for index in range(len(layers))
        ]
    else:
        layer_pipelined = [False] * len(layers)

    def edge_chunks(source: int, destination: int) -> int:
        if layer_pipelined[source] or layer_pipelined[destination]:
            return sim.num_microbatches
        return 1

    def edge_task_name(prefix: str, source_layer, destination: int) -> str:
        if is_chain:
            return f"{prefix}/{source_layer.name}"
        return f"{prefix}/{source_layer.name}->{layers[destination].name}"

    def input_position(destination: int, source: int) -> int:
        return layers[destination].inputs.index(source)

    forward_edge_gate: dict[tuple[int, int], tuple[Task, ...]] = {}
    tail_deps: tuple[Task, ...] = ()
    for layer in layers:
        deps = tuple(
            task
            for source in layer.inputs
            for task in forward_edge_gate[(source, layer.index)]
        )
        macs = batch_size * layer.macs_per_sample
        words = batch_size * (
            layer.input_shape.elements + layer.output_shape.elements
        ) + layer.weight_count
        compute = add_compute(
            f"forward/{layer.name}", layer, macs, words, "forward", deps
        )
        tail_deps = (compute,)
        if num_levels:
            intra = [
                record.intra_bytes
                if strategy_spec(record.parallelism).intra_phase == "forward"
                else 0.0
                for record in (level_comm[level][layer.index] for level in range(num_levels))
            ]
            tail_deps = add_communication(
                f"forward-intra/{layer.name}", intra, "forward", layer.name, (compute,)
            )
            for destination in layer_consumers[layer.index]:
                position = input_position(destination, layer.index)
                inter = [
                    level_comm[level][destination].incoming[position][1]
                    for level in range(num_levels)
                ]
                gate = add_communication(
                    edge_task_name("forward-inter", layer, destination),
                    inter,
                    "forward",
                    layer.name,
                    tail_deps,
                    chunks=edge_chunks(layer.index, destination),
                )
                forward_edge_gate[(layer.index, destination)] = gate
                if is_chain:
                    tail_deps = gate
        else:
            for destination in layer_consumers[layer.index]:
                forward_edge_gate[(layer.index, destination)] = tail_deps

    # ------------------------------------------------------------------
    # Backward pass.  The error chain gates the predecessor (backward
    # compute + backward-inter re-layouts); the gradient computation and
    # its dp all-reduce hang off the chain and overlap with it.
    # ------------------------------------------------------------------

    forward_final_deps: tuple[Task, ...] = tail_deps
    error_ready: dict[int, tuple[Task, ...]] = {}
    for layer in reversed(layers):
        consumers = layer_consumers[layer.index]
        if consumers:
            deps = tuple(
                task for destination in consumers for task in error_ready[destination]
            )
        else:
            deps = forward_final_deps
        macs = batch_size * layer.macs_per_sample
        backward_words = batch_size * (
            layer.input_shape.elements + layer.output_shape.elements
        ) + layer.weight_count
        backward = add_compute(
            f"backward/{layer.name}", layer, macs, backward_words, "backward", deps
        )
        tail_deps = (backward,)
        if num_levels:
            for destination in consumers:
                position = input_position(destination, layer.index)
                inter = [
                    level_comm[level][destination].incoming[position][2]
                    for level in range(num_levels)
                ]
                tail_deps = add_communication(
                    edge_task_name("backward-inter", layer, destination),
                    inter,
                    "backward",
                    layer.name,
                    tail_deps,
                    chunks=edge_chunks(layer.index, destination),
                )
        # The predecessor's backward needs only the propagated error, not
        # this layer's weight-gradient work: the overlap relaxation.
        error_ready[layer.index] = tail_deps

        gradient_words = batch_size * (
            layer.input_shape.elements + layer.output_shape.elements
        ) + 3 * layer.weight_count
        gradient = add_compute(
            f"gradient/{layer.name}",
            layer,
            macs,
            gradient_words,
            "gradient",
            tail_deps,
        )
        if num_levels:
            intra = [
                record.intra_bytes
                if strategy_spec(record.parallelism).intra_phase == "gradient"
                else 0.0
                for record in (level_comm[level][layer.index] for level in range(num_levels))
            ]
            # Nothing downstream waits on the all-reduce; it drains on the
            # links and extends the step only if it finishes last.
            add_communication(
                f"gradient-intra/{layer.name}", intra, "gradient", layer.name, (gradient,)
            )

    schedule = engine.run()

    phase_durations = {phase: {"compute": 0.0, "communication": 0.0} for phase in PHASES}
    for task in schedule.tasks:
        phase = task.tags.get("phase")
        kind = task.tags.get("kind")
        bucket = phase_durations.get(phase)
        if bucket is not None and kind in bucket:
            bucket[kind] += task.duration
    phase_seconds = {
        phase: PhaseBreakdown(
            compute_seconds=durations["compute"],
            communication_seconds=durations["communication"],
        )
        for phase, durations in phase_durations.items()
    }

    report = TrainingStepReport(
        model_name=model.name,
        strategy_name=strategy_name,
        topology_name=topology.name if topology is not None else "none",
        num_accelerators=num_accelerators,
        batch_size=batch_size,
        step_seconds=schedule.makespan,
        energy=EnergyBreakdown(
            compute_joules=compute_energy,
            sram_joules=sram_energy,
            dram_joules=dram_energy,
            communication_joules=comm_energy,
        ),
        communication_bytes=sum(level_comm_bytes),
        phase_seconds=phase_seconds,
        level_communication_bytes=tuple(level_comm_bytes),
    )
    return report, schedule
