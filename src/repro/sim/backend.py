"""The simulator-backend seam behind the redesigned ``simulate()`` API.

Two engines produce a :class:`~repro.sim.metrics.TrainingStepReport` from
the same compiled per-level communication records:

* ``"analytic"`` -- the historical aggregate model
  (:mod:`repro.sim.training`): all compute serializes on one array-wide PU
  resource and each hierarchy level is one aggregate link resource, so the
  step time is a closed-form chain with no intra-level contention.
* ``"network"`` -- the contention-aware discrete-event model
  (:mod:`repro.sim.network`): per-device PU resources and per-physical-link
  resources instantiated from the :class:`~repro.interconnect.Topology`
  graph, with real link occupancy/queueing and compute/communication
  overlap.

Both engines share everything outside the task graph -- cost-table
compilation, the :class:`~repro.core.costs.TableCache`, energy accounting
and report assembly -- so a backend is just "build the step's task graph
and run it": the :class:`SimulatorBackend` protocol below.  Backends are
stateless singletons resolved lazily by :func:`get_backend` (lazy so the
registry stays import-cycle-free: ``training`` imports this module for
validation, and both engine modules import ``training``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.model import DNNModel
    from repro.sim.engine import Schedule
    from repro.sim.metrics import TrainingStepReport
    from repro.sim.training import TrainingSimulator

#: Engine names accepted everywhere a ``sim_engine`` is spelled (CLI,
#: service, sweep specs, :class:`~repro.sim.api.SimulationSpec`).
SIM_ENGINES = ("analytic", "network")

#: The engine used when none is requested; keeps every historical caller,
#: cache key and golden artifact on the analytic model.
DEFAULT_SIM_ENGINE = "analytic"


def validate_sim_engine(name: str | None = None) -> str:
    """Canonicalize a sim-engine spelling (``None`` means the default)."""
    if name is None:
        return DEFAULT_SIM_ENGINE
    if name not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {name!r}; known engines: {', '.join(SIM_ENGINES)}"
        )
    return name


@runtime_checkable
class SimulatorBackend(Protocol):
    """Builds and runs one training step's task graph for one engine.

    ``level_comm`` is the per-level, per-layer communication record list
    the simulator gathered from its compiled cost table -- the one
    engine-independent compilation product -- and the return value is the
    assembled report next to the raw :class:`~repro.sim.engine.Schedule`
    (exposed for tag/occupancy inspection).
    """

    name: str

    def run_step(
        self,
        simulator: "TrainingSimulator",
        model: "DNNModel",
        batch_size: int,
        strategy_name: str,
        level_comm: list,
    ) -> "tuple[TrainingStepReport, Schedule]": ...


_BACKENDS: dict[str, SimulatorBackend] = {}


def get_backend(name: str | None = None) -> SimulatorBackend:
    """The (stateless, shared) backend instance for ``name``."""
    name = validate_sim_engine(name)
    backend = _BACKENDS.get(name)
    if backend is None:
        if name == "analytic":
            from repro.sim.training import AnalyticBackend

            backend = AnalyticBackend()
        else:
            from repro.sim.network import NetworkBackend

            backend = NetworkBackend()
        _BACKENDS[name] = backend
    return backend
