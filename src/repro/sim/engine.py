"""A small discrete-event scheduling engine.

The HyPar evaluation is an event-driven simulation (Section 6.1): the
execution of one training step is a directed acyclic graph of tasks
(compute passes, local-memory streaming, tensor exchanges) competing for
resources (the accelerators' processing units and the interconnect links at
each hierarchy level).  This module provides the generic machinery --
resources, tasks with dependencies, and an event queue that advances
simulated time -- and :mod:`repro.sim.training` builds the training-step
task graph on top of it.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Dict, Iterable, List


class SimulationError(RuntimeError):
    """Raised when the task graph cannot be scheduled (cycles, missing deps)."""


class Resource:
    """A serially reusable resource (a PU, a link, a DRAM channel).

    ``available_at`` tracks the simulated time at which the resource becomes
    free; tasks claiming the resource execute back to back in the order the
    engine starts them.  A plain ``__slots__`` class (identity-hashed, like
    the registry entries they are): simulations create one task graph per
    sweep point, so attribute access and allocation are on the hot path.
    """

    __slots__ = ("name", "available_at")

    def __init__(self, name: str, available_at: float = 0.0) -> None:
        self.name = name
        self.available_at = available_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource(name={self.name!r}, available_at={self.available_at!r})"


class Task:
    """One unit of simulated work.

    Attributes
    ----------
    name:
        Unique task name (used in schedules and error messages).
    duration:
        Simulated execution time in seconds.
    resources:
        Resources the task occupies for its whole duration.
    deps:
        Tasks that must complete before this one may start.
    tags:
        Free-form key/value metadata (layer, phase, level, energy, ...)
        carried through to the schedule for reporting.
    """

    __slots__ = ("name", "duration", "resources", "deps", "tags", "start", "end")

    def __init__(
        self,
        name: str,
        duration: float,
        resources: tuple[Resource, ...] = (),
        deps: tuple["Task", ...] = (),
        tags: dict | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        self.name = name
        self.duration = duration
        self.resources = resources
        self.deps = deps
        self.tags = {} if tags is None else tags
        self.start = start
        self.end = end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task(name={self.name!r}, duration={self.duration!r})"


@dataclasses.dataclass(frozen=True)
class ScheduledTask:
    """Immutable record of one task's placement in the final schedule."""

    name: str
    start: float
    end: float
    tags: dict

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class Schedule:
    """Result of running the engine: per-task timings and the makespan."""

    tasks: tuple[ScheduledTask, ...]

    @property
    def makespan(self) -> float:
        """Completion time of the last task (the simulated step latency)."""
        return max((task.end for task in self.tasks), default=0.0)

    def by_tag(self, key: str, value) -> list[ScheduledTask]:
        """All scheduled tasks whose ``tags[key]`` equals ``value``."""
        return [task for task in self.tasks if task.tags.get(key) == value]

    def total_duration_by_tag(self, key: str, value) -> float:
        """Summed durations of the tasks selected by :meth:`by_tag`."""
        return sum(task.duration for task in self.by_tag(key, value))

    def task(self, name: str) -> ScheduledTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r} in schedule")


class EventDrivenEngine:
    """Event-driven scheduler for a static task graph.

    Tasks are added with :meth:`add_task`; :meth:`run` then advances
    simulated time with an event queue: a task becomes *ready* when all its
    dependencies have completed, starts as soon as all its resources are
    free, and occupies those resources until it finishes.  Ready tasks
    contend for resources in the order they became ready (FIFO), which makes
    the schedule deterministic.
    """

    def __init__(self) -> None:
        self._tasks: List[Task] = []
        self._task_set: set[Task] = set()
        self._names: set[str] = set()
        self._resources: Dict[str, Resource] = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Graph construction.
    # ------------------------------------------------------------------

    def resource(self, name: str) -> Resource:
        """Get or create the named resource."""
        if name not in self._resources:
            self._resources[name] = Resource(name)
        return self._resources[name]

    def add_task(
        self,
        name: str,
        duration: float,
        resources: Iterable[Resource] = (),
        deps: Iterable[Task] = (),
        tags: dict | None = None,
    ) -> Task:
        """Add one task to the graph and return its handle."""
        if duration < 0:
            raise ValueError(f"task {name!r}: duration must be non-negative")
        if name in self._names:
            raise ValueError(f"duplicate task name {name!r}")
        task = Task(
            name=name,
            duration=float(duration),
            resources=tuple(resources),
            deps=tuple(deps),
            tags=dict(tags or {}),
        )
        for dep in task.deps:
            if dep not in self._task_set:
                raise SimulationError(
                    f"task {name!r} depends on unknown task {dep.name!r}"
                )
        self._tasks.append(task)
        self._task_set.add(task)
        self._names.add(name)
        return task

    def add_microbatched_task(
        self,
        name: str,
        duration: float,
        chunks: int,
        resources: Iterable[Resource] = (),
        deps: Iterable[Task] = (),
        tags: dict | None = None,
    ) -> tuple[Task, Task]:
        """Split one task into ``chunks`` equal sequential micro-tasks.

        This is the engine-level primitive behind micro-batched pipeline
        transfers: the chunks chain on each other (and serialise on their
        resources), so the resource is occupied for the full ``duration``,
        but a downstream consumer that can proceed after the *first*
        micro-batch depends on the returned ``first`` task and overlaps
        the remaining ``chunks - 1`` chunks.  Returns ``(first, last)``;
        with ``chunks <= 1`` the task is added unsplit and returned as
        both.
        """
        if chunks <= 1:
            task = self.add_task(name, duration, resources, deps, tags)
            return task, task
        resources = tuple(resources)
        first: Task | None = None
        last: Task | None = None
        for index in range(chunks):
            task = self.add_task(
                f"{name}/mb{index}",
                duration / chunks,
                resources,
                deps if last is None else (last,),
                tags,
            )
            if first is None:
                first = task
            last = task
        return first, last

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self) -> Schedule:
        """Schedule every task and return the resulting :class:`Schedule`."""
        remaining_deps: Dict[Task, int] = {
            task: len(task.deps) for task in self._tasks
        }
        dependants: Dict[Task, List[Task]] = {task: [] for task in self._tasks}
        for task in self._tasks:
            for dep in task.deps:
                dependants[dep].append(task)

        # ready_at[task] = simulated time at which all deps were satisfied.
        ready_queue: List[tuple[float, int, Task]] = []
        for task in self._tasks:
            if remaining_deps[task] == 0:
                heapq.heappush(ready_queue, (0.0, next(self._counter), task))

        completion_events: List[tuple[float, int, Task]] = []
        completed = 0

        while ready_queue or completion_events:
            # Start every ready task whose resources allow it; because
            # resources serialise work by bumping ``available_at`` we can
            # start tasks eagerly in ready order.
            while ready_queue:
                ready_time, _, task = heapq.heappop(ready_queue)
                start = ready_time
                for resource in task.resources:
                    start = max(start, resource.available_at)
                task.start = start
                task.end = start + task.duration
                for resource in task.resources:
                    resource.available_at = task.end
                heapq.heappush(
                    completion_events, (task.end, next(self._counter), task)
                )

            if not completion_events:
                break
            end_time, _, finished = heapq.heappop(completion_events)
            completed += 1
            for dependant in dependants[finished]:
                remaining_deps[dependant] -= 1
                if remaining_deps[dependant] == 0:
                    ready_at = max(
                        dep.end for dep in dependant.deps if dep.end is not None
                    )
                    heapq.heappush(
                        ready_queue, (ready_at, next(self._counter), dependant)
                    )

        if completed != len(self._tasks):
            unscheduled = [t.name for t in self._tasks if t.end is None]
            raise SimulationError(
                f"task graph contains a dependency cycle; unscheduled tasks: {unscheduled}"
            )

        scheduled = tuple(
            ScheduledTask(name=t.name, start=t.start, end=t.end, tags=t.tags)
            for t in self._tasks
        )
        return Schedule(tasks=scheduled)
