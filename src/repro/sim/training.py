"""Event-driven simulation of one DNN training step on the accelerator array.

The simulator builds a task graph for one mini-batch step -- forward pass,
error backward pass, gradient computation and weight update for every
weighted layer -- and schedules it with the discrete-event engine:

* every layer pass runs as a *compute* task on the array's processing units
  (all accelerators execute their share in lock-step, so the pass occupies
  one aggregate PU resource for the per-accelerator duration, bounded below
  by local HMC streaming);
* the tensor exchanges dictated by the HyPar communication model run as
  *communication* tasks on the hierarchy-level link resources: model-parallel
  layers exchange output-feature partial sums during forward, data-parallel
  layers exchange gradients during the weight update, and inter-layer
  re-layouts are charged per layer-DAG edge (feature-map share in forward,
  error share in backward) -- the task graph carries the model's fan-out
  and fan-in, so a merge layer's forward waits on every branch and a
  branching layer's backward waits on every consumer's chain;
* communication of the different hierarchy levels of one logical exchange is
  chained (a hierarchical reduction proceeds level by level), with each level
  running at the effective bandwidth its topology gives to a pair boundary.

Energy is accumulated analytically from the same quantities: arithmetic,
on-chip buffer and local DRAM energy are identical under every strategy
(the work is merely partitioned differently), while communication energy
scales with the bytes and hop counts of the exchanges.

The per-level communication amounts are gathered from a compiled
:class:`~repro.core.costs.HierarchicalCostTable` (cached per
``(model, batch size)``, or passed in via ``simulate(..., cost_table=...)``
by sweeps that pre-compile one), so repeated simulations of the same model
-- the Figures 9/10 sweeps, the strategy comparisons -- derive the
scale-descent tensor amounts once instead of once per level per point.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.core import kernels
from repro.core.communication import CommunicationModel
from repro.core.costs import HierarchicalCostTable, TableCache
from repro.core.parallelism import (
    HierarchicalAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.strategies import strategy_spec
from repro.core.tensors import ScalingMode
from repro.interconnect import HTreeTopology, Topology
from repro.nn.model import DNNModel
from repro.sim.backend import get_backend, validate_sim_engine
from repro.sim.engine import EventDrivenEngine, Schedule, Task
from repro.sim.metrics import EnergyBreakdown, PhaseBreakdown, TrainingStepReport

#: The three layer passes of training (Equations 1-3 of the paper).
PHASES = ("forward", "backward", "gradient")

#: Micro-batches streamed across pipeline stage boundaries per step.  Only
#: transfers adjacent to a pipeline (pp) layer are micro-batched; dp/mp-only
#: assignments build exactly the same task graph as before.
DEFAULT_NUM_MICROBATCHES = 4


class TrainingSimulator:
    """Simulates one training step of a partitioned DNN on an accelerator array.

    Parameters
    ----------
    array:
        The accelerator-array configuration (size, per-accelerator models).
    topology:
        Interconnect topology; defaults to the H tree the paper prefers.
    communication_model:
        Byte-level communication cost model shared with the partitioner.
    scaling_mode:
        How tensor amounts shrink at deeper hierarchy levels; must match the
        mode used when the assignment was searched for the costs to be
        consistent.
    strategies:
        The strategy space cost tables are compiled over (dp/mp by
        default); must cover every choice of the simulated assignments.
    num_microbatches:
        How many micro-batches stream across pipeline stage boundaries.
        Transfers adjacent to a pipeline layer are split into this many
        chained chunks, and downstream compute resumes after the first
        chunk (overlapping the rest).  Irrelevant for assignments without
        pipeline layers, whose task graphs are unchanged.
    table_cache:
        Optional shared :class:`~repro.core.costs.TableCache`.  When given,
        :meth:`cost_table` compiles into (and gathers from) it, keyed by
        the full configuration instead of this instance's model-identity
        cache -- sweep runners hand every simulator of a worker process
        the same cache so one compilation serves every study touching the
        configuration.
    backend:
        Kernel backend for the compiled cost tables (``"numpy"`` /
        ``"compiled"``; ``None`` follows the process default, see
        :mod:`repro.core.kernels`).  Simulated costs are
        backend-independent.
    sim_engine:
        Default simulation engine (``"analytic"`` or ``"network"``, see
        :mod:`repro.sim.backend`); individual :meth:`simulate` calls may
        override it with their keyword-only ``sim_engine``.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        topology: Topology | None = None,
        communication_model: CommunicationModel | None = None,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        strategies: StrategySpace | str | None = None,
        num_microbatches: int = DEFAULT_NUM_MICROBATCHES,
        table_cache: TableCache | None = None,
        backend: str | None = None,
        sim_engine: str | None = None,
    ) -> None:
        if num_microbatches <= 0:
            raise ValueError(
                f"num_microbatches must be positive, got {num_microbatches}"
            )
        self.array = array or ArrayConfig()
        if self.array.num_accelerators == 1:
            # A single accelerator has no interconnect at all.
            if topology is not None:
                raise ValueError("a single-accelerator array takes no topology")
            self.topology = None
        else:
            self.topology = topology or HTreeTopology(
                self.array.num_accelerators, self.array.link_bandwidth_bytes
            )
            if self.topology.num_accelerators != self.array.num_accelerators:
                raise ValueError(
                    "topology and array configuration disagree on the number of accelerators"
                )
        self.communication_model = communication_model or CommunicationModel()
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self.strategies = StrategySpace.parse(strategies)
        self.num_microbatches = num_microbatches
        self.table_cache = table_cache
        self.backend = kernels.validate_backend(backend)
        self.sim_engine = validate_sim_engine(sim_engine)
        #: The raw :class:`~repro.sim.engine.Schedule` of the most recent
        #: :meth:`simulate` call (tag/occupancy inspection; ``None`` before
        #: the first call).
        self.last_schedule: Schedule | None = None
        # Compiled cost tables keyed by (model identity, batch size).  The
        # table holds a strong reference to its model, so the id cannot be
        # recycled while the entry lives; sweeps re-simulating one model
        # hundreds of times (Figures 9/10) hit this cache on every point.
        self._table_cache: dict[tuple[int, int], HierarchicalCostTable] = {}
        # Layer-pass executions depend on (layer, work), not on the
        # assignment, so every point of a sweep issues identical passes.
        # Keyed by the (frozen, hashable) layer itself plus the work amounts.
        self._pass_cache: dict = {}

    # ------------------------------------------------------------------
    # Cost-table management.
    # ------------------------------------------------------------------

    _TABLE_CACHE_LIMIT = 16

    def cost_table(self, model: DNNModel, batch_size: int) -> HierarchicalCostTable:
        """The compiled cost table for ``model`` at ``batch_size`` (cached)."""
        if self.table_cache is not None:
            return self.table_cache.get_or_compile(
                model,
                batch_size,
                self.array.num_levels,
                scaling_mode=self.scaling_mode,
                communication_model=self.communication_model,
                strategies=self.strategies,
                backend=self.backend,
            )
        key = (id(model), batch_size)
        table = self._table_cache.get(key)
        if table is None:
            if len(self._table_cache) >= self._TABLE_CACHE_LIMIT:
                self._table_cache.clear()
            table = HierarchicalCostTable(
                model,
                batch_size,
                self.array.num_levels,
                scaling_mode=self.scaling_mode,
                communication_model=self.communication_model,
                strategies=self.strategies,
                backend=self.backend,
            )
            self._table_cache[key] = table
        return table

    # ------------------------------------------------------------------
    # Public entry point.
    # ------------------------------------------------------------------

    def simulate(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment | None,
        batch_size: int,
        strategy_name: str = "custom",
        cost_table: HierarchicalCostTable | None = None,
        *,
        sim_engine: str | None = None,
    ) -> TrainingStepReport:
        """Simulate one training step and return its report.

        ``assignment`` may be ``None`` only for a single-accelerator array,
        in which case there is no inter-accelerator communication at all.
        ``cost_table`` optionally supplies an already-compiled
        :class:`~repro.core.costs.HierarchicalCostTable` (it must match this
        simulator's configuration); otherwise one is compiled and cached per
        (model, batch size).  The keyword-only ``sim_engine`` overrides the
        simulator's default engine for this call (``"analytic"`` or
        ``"network"``); both engines share the compiled communication
        records, and the run's raw schedule lands in :attr:`last_schedule`.
        """
        engine_name = validate_sim_engine(
            self.sim_engine if sim_engine is None else sim_engine
        )
        level_comm = self._validated_level_comm(
            model, assignment, batch_size, cost_table
        )
        backend = get_backend(engine_name)
        report, schedule = backend.run_step(
            self, model, batch_size, strategy_name, level_comm
        )
        self.last_schedule = schedule
        return report

    def _validated_level_comm(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment | None,
        batch_size: int,
        cost_table: HierarchicalCostTable | None = None,
    ) -> list[list["_LayerLevelComm"]]:
        """Validate the (model, assignment) pair and gather its records.

        The engine-independent compilation step both backends share.
        """
        num_levels = self.array.num_levels
        if num_levels == 0:
            if assignment is not None:
                raise ValueError("a single-accelerator array takes no assignment")
            return []
        if assignment is None:
            raise ValueError("an assignment is required for a multi-accelerator array")
        if assignment.num_levels != num_levels:
            raise ValueError(
                f"assignment has {assignment.num_levels} levels, "
                f"array expects {num_levels}"
            )
        if assignment.num_layers != len(model):
            raise ValueError(
                f"assignment covers {assignment.num_layers} layers, "
                f"model has {len(model)}"
            )
        return self._per_level_communication(
            model, assignment, batch_size, cost_table
        )

    def _run_analytic_step(
        self,
        model: DNNModel,
        batch_size: int,
        strategy_name: str,
        level_comm: list[list["_LayerLevelComm"]],
    ) -> tuple[TrainingStepReport, Schedule]:
        """Build and run the analytic (aggregate-resource) task graph."""
        num_levels = self.array.num_levels
        engine = EventDrivenEngine()
        pu = engine.resource("array-pu")
        link_resources = [
            engine.resource(f"link-level-{level}") for level in range(num_levels)
        ]
        # Per-level interconnect quantities, hoisted out of the task loops.
        level_bandwidth = [
            self.topology.effective_pair_bandwidth(level) for level in range(num_levels)
        ]
        level_hops = [self.topology.average_hops(level) for level in range(num_levels)]

        accelerators = self.array.accelerators()
        reference_accelerator = accelerators[0]
        num_accelerators = self.array.num_accelerators

        compute_energy = 0.0
        sram_energy = 0.0
        dram_energy = 0.0
        comm_energy = 0.0
        level_comm_bytes = [0.0] * num_levels

        # ------------------------------------------------------------------
        # Helper closures.
        # ------------------------------------------------------------------

        pass_cache = self._pass_cache

        def add_compute(
            name: str, layer, macs_total: float, dram_words_total: float, phase: str, deps
        ) -> Task:
            nonlocal compute_energy, sram_energy, dram_energy
            cache_key = (layer, macs_total, dram_words_total, num_accelerators)
            execution = pass_cache.get(cache_key)
            if execution is None:
                if len(pass_cache) >= 4096:
                    pass_cache.clear()
                execution = reference_accelerator.execute_layer_pass(
                    layer,
                    macs_total / num_accelerators,
                    dram_words_total / num_accelerators,
                )
                pass_cache[cache_key] = execution
            # Energy is accumulated for the *whole* array: every accelerator
            # performs 1/N of the work, so the total equals the unpartitioned
            # amounts.
            compute_energy += execution.compute_energy * num_accelerators
            sram_energy += execution.sram_energy * num_accelerators
            dram_energy += execution.dram_energy * num_accelerators
            return engine.add_task(
                name,
                execution.seconds,
                resources=(pu,),
                deps=deps,
                tags={"phase": phase, "kind": "compute", "layer": layer.name},
            )

        def add_communication(
            name: str,
            bytes_per_level: Sequence[float],
            phase: str,
            layer_name: str,
            deps,
            chunks: int = 1,
        ) -> Task:
            """Chain one logical exchange across the hierarchy levels (deepest first).

            With ``chunks > 1`` (pipeline stage boundaries) each level's
            transfer is split into that many chained micro-batch tasks and
            the *first* chunk of the shallowest level is returned, so the
            downstream consumer overlaps the remaining micro-batches while
            the link stays occupied for the full transfer.
            """
            nonlocal comm_energy
            gate: Task | None = None
            last: Task | None = None
            chain_deps = tuple(deps)
            for level in reversed(range(num_levels)):
                per_pair = bytes_per_level[level]
                if per_pair <= 0:
                    continue
                num_pairs = 1 << level
                level_comm_bytes[level] += per_pair * num_pairs
                duration = per_pair / level_bandwidth[level]
                comm_energy += self.array.energy_model.communication_energy_bytes(
                    per_pair * num_pairs, level_hops[level]
                )
                first, level_last = engine.add_microbatched_task(
                    f"{name}/L{level}",
                    duration,
                    chunks,
                    resources=(link_resources[level],),
                    deps=chain_deps if last is None else (last,),
                    tags={
                        "phase": phase,
                        "kind": "communication",
                        "layer": layer_name,
                        "level": level,
                    },
                )
                gate = first
                last = level_last
            if last is None:
                # Zero-byte exchange: nothing occupies a link, but the
                # exchange must still be represented by a *communication*
                # marker -- returning the upstream task directly would hand
                # consumers a compute task standing in for a communication
                # gate, mislabeling every tag-based trace of the schedule.
                last = engine.add_task(
                    f"{name}/none",
                    0.0,
                    deps=chain_deps,
                    tags={"phase": phase, "kind": "communication", "layer": layer_name},
                )
                gate = last
            # Micro-batched exchanges gate the downstream on the first chunk
            # of the shallowest level; unsplit exchanges on the final task.
            return gate if chunks > 1 else last

        # ------------------------------------------------------------------
        # Forward pass.
        # ------------------------------------------------------------------

        layers = list(model)
        is_chain = model.is_chain
        #: Consumers of every layer, ascending -- chain: [index + 1].
        layer_consumers = [model.consumers(layer.index) for layer in layers]
        # A boundary adjacent to a pipeline (stage-local) layer at any level
        # carries micro-batched stage transfers; everything else keeps the
        # historical unsplit task graph.
        if num_levels:
            layer_pipelined = [
                any(
                    level_comm[level][index].parallelism is Parallelism.PIPELINE
                    for level in range(num_levels)
                )
                for index in range(len(layers))
            ]
        else:
            layer_pipelined = [False] * len(layers)

        def edge_chunks(source: int, destination: int) -> int:
            """Micro-batch chunks of the edge ``source -> destination``."""
            if layer_pipelined[source] or layer_pipelined[destination]:
                return self.num_microbatches
            return 1

        def edge_task_name(prefix: str, source_layer, destination: int) -> str:
            # Chains keep the historical single-name scheme (the source
            # layer has at most one outgoing boundary); DAG fan-out needs
            # the destination to keep task names unique.
            if is_chain:
                return f"{prefix}/{source_layer.name}"
            return f"{prefix}/{source_layer.name}->{layers[destination].name}"

        def input_position(destination: int, source: int) -> int:
            """Position of ``source`` among ``destination``'s declared inputs."""
            return layers[destination].inputs.index(source)

        # Gate task of every forward edge: what the consumer's compute
        # depends on (the source's intra tail, or its boundary re-layout
        # when one is scheduled).
        forward_edge_gate: dict[tuple[int, int], Task] = {}
        tail: Task | None = None
        for layer in layers:
            deps = tuple(
                forward_edge_gate[(source, layer.index)] for source in layer.inputs
            )
            macs = batch_size * layer.macs_per_sample
            words = batch_size * (
                layer.input_shape.elements + layer.output_shape.elements
            ) + layer.weight_count
            compute = add_compute(
                f"forward/{layer.name}", layer, macs, words, "forward", deps
            )
            tail = compute
            if num_levels:
                # Strategies whose intra exchange happens in forward (mp's
                # output-feature partial-sum reduction) run it now.
                intra = [
                    record.intra_bytes
                    if strategy_spec(record.parallelism).intra_phase == "forward"
                    else 0.0
                    for record in (level_comm[level][layer.index] for level in range(num_levels))
                ]
                tail = add_communication(
                    f"forward-intra/{layer.name}", intra, "forward", layer.name, (compute,)
                )
                # Boundary re-layout of the feature map crossing each
                # outgoing edge (chain: the single next-layer boundary).
                for destination in layer_consumers[layer.index]:
                    position = input_position(destination, layer.index)
                    inter = [
                        level_comm[level][destination].incoming[position][1]
                        for level in range(num_levels)
                    ]
                    gate = add_communication(
                        edge_task_name("forward-inter", layer, destination),
                        inter,
                        "forward",
                        layer.name,
                        (tail,),
                        chunks=edge_chunks(layer.index, destination),
                    )
                    forward_edge_gate[(layer.index, destination)] = gate
                    if is_chain:
                        tail = gate
            else:
                for destination in layer_consumers[layer.index]:
                    forward_edge_gate[(layer.index, destination)] = tail

        # ------------------------------------------------------------------
        # Backward pass (error backward + gradient computation + update),
        # proceeding from the last layer towards the first.  A layer's
        # backward waits for every consumer's backward chain (branch joins
        # respect the fan-in), and its outgoing-edge error re-layouts are
        # charged before its gradient computation, as on chains.
        # ------------------------------------------------------------------

        forward_final: Task | None = tail
        backward_final: dict[int, Task] = {}
        for layer in reversed(layers):
            consumers = layer_consumers[layer.index]
            if consumers:
                deps = tuple(backward_final[destination] for destination in consumers)
            else:
                deps = (forward_final,) if forward_final is not None else ()
            macs = batch_size * layer.macs_per_sample
            backward_words = batch_size * (
                layer.input_shape.elements + layer.output_shape.elements
            ) + layer.weight_count
            backward = add_compute(
                f"backward/{layer.name}", layer, macs, backward_words, "backward", deps
            )
            tail = backward
            if num_levels:
                # Error re-layout across each outgoing edge.
                for destination in consumers:
                    position = input_position(destination, layer.index)
                    inter = [
                        level_comm[level][destination].incoming[position][2]
                        for level in range(num_levels)
                    ]
                    tail = add_communication(
                        edge_task_name("backward-inter", layer, destination),
                        inter,
                        "backward",
                        layer.name,
                        (tail,),
                        chunks=edge_chunks(layer.index, destination),
                    )

            gradient_words = batch_size * (
                layer.input_shape.elements + layer.output_shape.elements
            ) + 3 * layer.weight_count
            gradient = add_compute(
                f"gradient/{layer.name}",
                layer,
                macs,
                gradient_words,
                "gradient",
                (tail,),
            )
            tail = gradient
            if num_levels:
                # Strategies whose intra exchange happens at the weight
                # update (dp's gradient reduction) run it now.
                intra = [
                    record.intra_bytes
                    if strategy_spec(record.parallelism).intra_phase == "gradient"
                    else 0.0
                    for record in (level_comm[level][layer.index] for level in range(num_levels))
                ]
                tail = add_communication(
                    f"gradient-intra/{layer.name}", intra, "gradient", layer.name, (gradient,)
                )
            backward_final[layer.index] = tail

        schedule = engine.run()

        # One pass over the schedule instead of one scan per (phase, kind).
        phase_durations = {phase: {"compute": 0.0, "communication": 0.0} for phase in PHASES}
        for task in schedule.tasks:
            phase = task.tags.get("phase")
            kind = task.tags.get("kind")
            bucket = phase_durations.get(phase)
            if bucket is not None and kind in bucket:
                bucket[kind] += task.duration
        phase_seconds = {
            phase: PhaseBreakdown(
                compute_seconds=durations["compute"],
                communication_seconds=durations["communication"],
            )
            for phase, durations in phase_durations.items()
        }

        report = TrainingStepReport(
            model_name=model.name,
            strategy_name=strategy_name,
            topology_name=self.topology.name if self.topology is not None else "none",
            num_accelerators=num_accelerators,
            batch_size=batch_size,
            step_seconds=schedule.makespan,
            energy=EnergyBreakdown(
                compute_joules=compute_energy,
                sram_joules=sram_energy,
                dram_joules=dram_energy,
                communication_joules=comm_energy,
            ),
            communication_bytes=sum(level_comm_bytes),
            phase_seconds=phase_seconds,
            level_communication_bytes=tuple(level_comm_bytes),
        )
        return report, schedule

    # ------------------------------------------------------------------
    # Per-level communication pre-computation.
    # ------------------------------------------------------------------

    def _per_level_communication(
        self,
        model: DNNModel,
        assignment: HierarchicalAssignment,
        batch_size: int,
        cost_table: HierarchicalCostTable | None = None,
    ) -> list[list["_LayerLevelComm"]]:
        """Per-hierarchy-level, per-layer communication records (bytes per pair).

        Gathered from the compiled cost table: the scale-descent outcomes
        are derived once per (model, batch) and shared across every
        simulated assignment instead of rebuilding the tensor lists level by
        level for each point of a sweep.
        """
        if cost_table is None:
            cost_table = self.cost_table(model, batch_size)
        else:
            cost_table.check_compatible(
                model,
                batch_size,
                assignment.num_levels,
                self.scaling_mode,
                self.communication_model,
            )
        return [
            [
                _LayerLevelComm(
                    parallelism=choice,
                    intra_bytes=intra,
                    incoming=incoming,
                )
                for choice, intra, incoming in level_records
            ]
            for level_records in cost_table.level_communication(assignment)
        ]


class _LayerLevelComm:
    """Communication of one layer at one hierarchy level (bytes per pair).

    ``incoming`` lists the layer's incoming-edge re-layouts as
    ``(source_layer, forward_bytes, backward_bytes)`` tuples in input
    order; a chain layer has at most one entry, a merge layer one per
    branch.
    """

    __slots__ = ("parallelism", "intra_bytes", "incoming")

    def __init__(
        self,
        parallelism: Parallelism,
        intra_bytes: float,
        incoming: tuple[tuple[int, float, float], ...],
    ) -> None:
        self.parallelism = parallelism
        self.intra_bytes = intra_bytes
        self.incoming = incoming

    @property
    def inter_forward_bytes(self) -> float:
        return sum(record[1] for record in self.incoming)

    @property
    def inter_backward_bytes(self) -> float:
        return sum(record[2] for record in self.incoming)

    @property
    def inter_bytes(self) -> float:
        return self.inter_forward_bytes + self.inter_backward_bytes

    @property
    def total_bytes(self) -> float:
        return self.intra_bytes + self.inter_bytes


class AnalyticBackend:
    """:class:`~repro.sim.backend.SimulatorBackend` for the analytic engine."""

    name = "analytic"

    def run_step(
        self,
        simulator: "TrainingSimulator",
        model: DNNModel,
        batch_size: int,
        strategy_name: str,
        level_comm: list,
    ) -> tuple[TrainingStepReport, Schedule]:
        return simulator._run_analytic_step(
            model, batch_size, strategy_name, level_comm
        )


def simulate_partitioned(
    model: DNNModel,
    batch_size: int = 256,
    array: ArrayConfig | None = None,
    topology: Topology | None = None,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    strategies: StrategySpace | str | None = None,
) -> tuple[TrainingStepReport, HierarchicalAssignment]:
    """Deprecated convenience helper: search HyPar's assignment, then simulate.

    .. deprecated::
        Kept as a bit-exact shim over :func:`repro.sim.api.simulate`; the
        replacement takes a :class:`~repro.sim.api.SimulationSpec` and also
        selects the simulation engine (``sim_engine="network"``).
    """
    warnings.warn(
        "simulate_partitioned is deprecated. use repro.sim.simulate with a "
        "SimulationSpec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sim.api import SimulationSpec, simulate

    result = simulate(
        model,
        spec=SimulationSpec(
            batch_size=batch_size,
            array=array,
            topology=topology,
            scaling_mode=scaling_mode,
            strategies=strategies,
        ),
    )
    return result.report, result.assignment
