"""Topology comparison (Figure 12): H tree versus torus.

The parallelism per layer is HyPar's searched choice in both cases; only
the physical interconnect differs.  Performance is normalised to the
default Data Parallelism on the H tree (the baseline shared with Figure 6),
so the H-tree bars of this study coincide with HyPar's bars in Figure 6 and
the torus bars show what the mismatch between the binary-tree partition
pattern and a mesh costs.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.report import geometric_mean
from repro.core.baselines import data_parallelism
from repro.core.hierarchical import DEFAULT_BATCH_SIZE, HierarchicalPartitioner
from repro.core.tensors import ScalingMode
from repro.interconnect import HTreeTopology, TorusTopology
from repro.nn.model import DNNModel
from repro.nn.model_zoo import all_models
from repro.sim.training import TrainingSimulator


@dataclasses.dataclass(frozen=True)
class TopologyComparison:
    """Normalised performance of HyPar on both topologies for one network."""

    model_name: str
    htree_performance: float
    torus_performance: float

    @property
    def htree_advantage(self) -> float:
        """How much faster the H tree is than the torus for this network."""
        if self.torus_performance <= 0:
            return float("inf")
        return self.htree_performance / self.torus_performance


@dataclasses.dataclass(frozen=True)
class TopologyStudy:
    """Figure 12 data for a set of networks."""

    comparisons: tuple[TopologyComparison, ...]

    def gmean_htree(self) -> float:
        return geometric_mean(c.htree_performance for c in self.comparisons)

    def gmean_torus(self) -> float:
        return geometric_mean(c.torus_performance for c in self.comparisons)

    def as_rows(self) -> list[dict]:
        return [
            {
                "model": c.model_name,
                "torus": c.torus_performance,
                "h_tree": c.htree_performance,
            }
            for c in self.comparisons
        ]


def run_topology_study(
    models: Sequence[DNNModel] | None = None,
    array: ArrayConfig | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    strategies=None,
) -> TopologyStudy:
    """Compare HyPar on the H tree and on the torus (Figure 12)."""
    models = list(models) if models is not None else all_models()
    array = array or ArrayConfig()
    htree = HTreeTopology(array.num_accelerators, array.link_bandwidth_bytes)
    torus = TorusTopology(array.num_accelerators, array.link_bandwidth_bytes)

    htree_simulator = TrainingSimulator(
        array, htree, scaling_mode=scaling_mode, strategies=strategies
    )
    torus_simulator = TrainingSimulator(
        array, torus, scaling_mode=scaling_mode, strategies=strategies
    )
    partitioner = HierarchicalPartitioner(
        num_levels=array.num_levels,
        scaling_mode=scaling_mode,
        strategies=htree_simulator.strategies,
    )

    comparisons = []
    for model in models:
        hypar_assignment = partitioner.partition(model, batch_size).assignment
        dp_assignment = data_parallelism(model, array.num_levels)

        baseline = htree_simulator.simulate(
            model, dp_assignment, batch_size, "Data Parallelism"
        )
        on_htree = htree_simulator.simulate(model, hypar_assignment, batch_size, "HyPar")
        on_torus = torus_simulator.simulate(model, hypar_assignment, batch_size, "HyPar")

        comparisons.append(
            TopologyComparison(
                model_name=model.name,
                htree_performance=on_htree.speedup_over(baseline),
                torus_performance=on_torus.speedup_over(baseline),
            )
        )
    return TopologyStudy(tuple(comparisons))
