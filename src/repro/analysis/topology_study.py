"""Topology comparison (Figure 12): H tree versus torus.

The parallelism per layer is HyPar's searched choice in both cases; only
the physical interconnect differs.  Performance is normalised to the
default Data Parallelism on the H tree (the baseline shared with Figure 6),
so the H-tree bars of this study coincide with HyPar's bars in Figure 6 and
the torus bars show what the mismatch between the binary-tree partition
pattern and a mesh costs.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.report import geometric_mean
from repro.core.baselines import data_parallelism
from repro.core.hierarchical import DEFAULT_BATCH_SIZE, HierarchicalPartitioner
from repro.core.parallelism import StrategySpace
from repro.core.tensors import ScalingMode
from repro.interconnect import HTreeTopology, TorusTopology
from repro.nn.model import DNNModel
from repro.nn.model_zoo import all_models
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine


@dataclasses.dataclass(frozen=True)
class TopologyComparison:
    """Normalised performance of HyPar on both topologies for one network."""

    model_name: str
    htree_performance: float
    torus_performance: float

    @property
    def htree_advantage(self) -> float:
        """How much faster the H tree is than the torus for this network."""
        if self.torus_performance <= 0:
            return float("inf")
        return self.htree_performance / self.torus_performance


@dataclasses.dataclass(frozen=True)
class TopologyStudy:
    """Figure 12 data for a set of networks."""

    comparisons: tuple[TopologyComparison, ...]

    def gmean_htree(self) -> float:
        return geometric_mean(c.htree_performance for c in self.comparisons)

    def gmean_torus(self) -> float:
        return geometric_mean(c.torus_performance for c in self.comparisons)

    def as_rows(self) -> list[dict]:
        return [
            {
                "model": c.model_name,
                "torus": c.torus_performance,
                "h_tree": c.htree_performance,
            }
            for c in self.comparisons
        ]


@dataclasses.dataclass(frozen=True)
class _TopologyContext:
    """Shared, picklable state of one Figure 12 sweep."""

    array: ArrayConfig
    batch_size: int
    scaling_mode: ScalingMode
    strategies: str | None


def _topology_simulators(
    context: _TopologyContext,
) -> tuple[TrainingSimulator, TrainingSimulator, HierarchicalPartitioner]:
    array = context.array

    def build() -> tuple:
        htree = HTreeTopology(array.num_accelerators, array.link_bandwidth_bytes)
        torus = TorusTopology(array.num_accelerators, array.link_bandwidth_bytes)
        htree_simulator = TrainingSimulator(
            array,
            htree,
            scaling_mode=context.scaling_mode,
            strategies=context.strategies,
            table_cache=shared_table_cache(),
        )
        torus_simulator = TrainingSimulator(
            array,
            torus,
            scaling_mode=context.scaling_mode,
            strategies=context.strategies,
            table_cache=shared_table_cache(),
        )
        partitioner = HierarchicalPartitioner(
            num_levels=array.num_levels,
            scaling_mode=context.scaling_mode,
            strategies=htree_simulator.strategies,
        )
        return htree_simulator, torus_simulator, partitioner

    key = ("topology-study", array, context.scaling_mode, context.strategies)
    return runtime_cached(key, build)


def _topology_task(task: tuple[_TopologyContext, DNNModel]) -> TopologyComparison:
    """Sweep-engine task: one network on both interconnects."""
    context, model = task
    htree_simulator, torus_simulator, partitioner = _topology_simulators(context)
    batch_size = context.batch_size

    # One table serves the search and all three simulations: the compiled
    # amounts depend on the model and batch, not on the interconnect.
    table = htree_simulator.cost_table(model, batch_size)
    hypar_assignment = partitioner.partition(model, batch_size, table=table).assignment
    dp_assignment = data_parallelism(model, context.array.num_levels)

    baseline = htree_simulator.simulate(
        model, dp_assignment, batch_size, "Data Parallelism", cost_table=table
    )
    on_htree = htree_simulator.simulate(
        model, hypar_assignment, batch_size, "HyPar", cost_table=table
    )
    on_torus = torus_simulator.simulate(
        model, hypar_assignment, batch_size, "HyPar", cost_table=table
    )

    return TopologyComparison(
        model_name=model.name,
        htree_performance=on_htree.speedup_over(baseline),
        torus_performance=on_torus.speedup_over(baseline),
    )


def run_topology_study(
    models: Sequence[DNNModel] | None = None,
    array: ArrayConfig | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    strategies=None,
    engine: "SweepEngine | int | None" = None,
) -> TopologyStudy:
    """Compare HyPar on the H tree and on the torus (Figure 12).

    One sweep task per network maps through ``engine`` (serial by default,
    byte-identical for any worker count).
    """
    models = list(models) if models is not None else all_models()
    context = _TopologyContext(
        array=array or ArrayConfig(),
        batch_size=batch_size,
        scaling_mode=ScalingMode.parse(scaling_mode),
        strategies=StrategySpace.parse(strategies).describe(),
    )
    with owned_engine(engine) as resolved:
        comparisons = resolved.map(
            _topology_task, [(context, model) for model in models]
        )
    return TopologyStudy(tuple(comparisons))
