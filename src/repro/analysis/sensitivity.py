"""Sensitivity studies beyond the paper's figures.

The paper's evaluation fixes the batch size (256), the link bandwidth
(1600 Mb/s) and the arithmetic precision (fp32).  These sweeps quantify how
HyPar's advantage over the default Data Parallelism changes when those
platform/workload parameters move -- the questions a designer adopting the
technique would ask next:

* **Batch size** -- Section 6.5.2 argues batch size shifts the dp/mp
  trade-off per layer; the sweep shows the end-to-end effect.
* **Link bandwidth** -- faster links shrink every communication advantage;
  the sweep shows where HyPar stops mattering.
* **Precision** -- fp16 halves every tensor, which scales all traffic
  equally and therefore moves the compute/communication balance.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism
from repro.core.communication import CommunicationModel
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.tensors import ScalingMode
from repro.nn.model import DNNModel
from repro.nn.model_zoo import vgg_a
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine

#: Batch sizes spanning the "generalisation" (32) to "throughput" (4096)
#: regimes discussed in Section 6.5.2.
DEFAULT_BATCH_SIZES = (32, 64, 128, 256, 512, 1024, 2048, 4096)
#: Link bandwidths around the paper's 1600 Mb/s baseline (in bits/s).
DEFAULT_LINK_BANDWIDTHS = (400e6, 800e6, 1600e6, 3200e6, 6400e6, 12800e6)


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """HyPar-vs-Data-Parallelism comparison at one swept parameter value."""

    parameter: float
    hypar_speedup: float
    hypar_energy_efficiency: float
    hypar_communication_gb: float
    dp_communication_gb: float

    @property
    def communication_reduction(self) -> float:
        if self.hypar_communication_gb <= 0:
            return float("inf")
        return self.dp_communication_gb / self.hypar_communication_gb


@dataclasses.dataclass(frozen=True)
class SensitivityStudy:
    """A named sweep of :class:`SensitivityPoint` records."""

    name: str
    model_name: str
    points: tuple[SensitivityPoint, ...]

    def parameters(self) -> list[float]:
        return [point.parameter for point in self.points]

    def speedups(self) -> list[float]:
        return [point.hypar_speedup for point in self.points]

    def as_rows(self) -> list[dict]:
        return [
            {
                "parameter": point.parameter,
                "speedup": point.hypar_speedup,
                "energy_efficiency": point.hypar_energy_efficiency,
                "comm_reduction": point.communication_reduction,
            }
            for point in self.points
        ]


def _compare(
    model: DNNModel,
    batch_size: int,
    array: ArrayConfig,
    scaling_mode: ScalingMode | str,
    communication_model: CommunicationModel | None = None,
) -> SensitivityPoint:
    scaling_mode = ScalingMode.parse(scaling_mode)
    comm_key = (communication_model or CommunicationModel()).cache_key
    partitioner = runtime_cached(
        ("sensitivity-partitioner", array.num_levels, scaling_mode, comm_key),
        lambda: HierarchicalPartitioner(
            num_levels=array.num_levels,
            communication_model=communication_model,
            scaling_mode=scaling_mode,
        ),
    )
    simulator = runtime_cached(
        ("sensitivity-simulator", array, scaling_mode, comm_key),
        lambda: TrainingSimulator(
            array,
            communication_model=communication_model,
            scaling_mode=scaling_mode,
            table_cache=shared_table_cache(),
        ),
    )
    # One compiled cost table serves the search and both simulations (and,
    # through the shared cache, any other study of the configuration).
    table = simulator.cost_table(model, batch_size)
    hypar_assignment = partitioner.partition(model, batch_size, table=table).assignment
    hypar = simulator.simulate(
        model, hypar_assignment, batch_size, "HyPar", cost_table=table
    )
    baseline = simulator.simulate(
        model,
        data_parallelism(model, array.num_levels),
        batch_size,
        "Data Parallelism",
        cost_table=table,
    )
    return SensitivityPoint(
        parameter=float("nan"),
        hypar_speedup=hypar.speedup_over(baseline),
        hypar_energy_efficiency=hypar.energy_efficiency_over(baseline),
        hypar_communication_gb=hypar.communication_gb,
        dp_communication_gb=baseline.communication_gb,
    )


@dataclasses.dataclass(frozen=True)
class _SensitivityTask:
    """One swept point: the ``_compare`` inputs plus the axis value."""

    parameter: float
    model: DNNModel
    batch_size: int
    array: ArrayConfig
    scaling_mode: ScalingMode
    communication_model: CommunicationModel | None = None


def _sensitivity_task(task: _SensitivityTask) -> SensitivityPoint:
    """Sweep-engine task: one HyPar-vs-Data-Parallelism comparison."""
    point = _compare(
        task.model,
        task.batch_size,
        task.array,
        task.scaling_mode,
        communication_model=task.communication_model,
    )
    return dataclasses.replace(point, parameter=task.parameter)


def _run_sensitivity(
    name: str,
    model: DNNModel,
    tasks: Sequence[_SensitivityTask],
    engine: "SweepEngine | int | None",
) -> SensitivityStudy:
    with owned_engine(engine) as resolved:
        points = resolved.map(_sensitivity_task, tasks)
    return SensitivityStudy(name, model.name, tuple(points))


def batch_size_sensitivity(
    model: DNNModel | None = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    array: ArrayConfig | None = None,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    engine: "SweepEngine | int | None" = None,
) -> SensitivityStudy:
    """HyPar's advantage over Data Parallelism as the batch size varies."""
    model = model or vgg_a()
    array = array or ArrayConfig()
    scaling_mode = ScalingMode.parse(scaling_mode)
    for batch_size in batch_sizes:
        if batch_size <= 0:
            raise ValueError(f"batch sizes must be positive, got {batch_size}")
    tasks = [
        _SensitivityTask(float(batch_size), model, batch_size, array, scaling_mode)
        for batch_size in batch_sizes
    ]
    return _run_sensitivity("batch-size", model, tasks, engine)


def link_bandwidth_sensitivity(
    model: DNNModel | None = None,
    link_bandwidths_bits: Sequence[float] = DEFAULT_LINK_BANDWIDTHS,
    batch_size: int = 256,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    engine: "SweepEngine | int | None" = None,
) -> SensitivityStudy:
    """HyPar's advantage over Data Parallelism as the links get faster."""
    model = model or vgg_a()
    scaling_mode = ScalingMode.parse(scaling_mode)
    for bandwidth in link_bandwidths_bits:
        if bandwidth <= 0:
            raise ValueError(f"link bandwidths must be positive, got {bandwidth}")
    tasks = [
        _SensitivityTask(
            float(bandwidth),
            model,
            batch_size,
            ArrayConfig(link_bandwidth_bits=bandwidth),
            scaling_mode,
        )
        for bandwidth in link_bandwidths_bits
    ]
    return _run_sensitivity("link-bandwidth", model, tasks, engine)


def precision_sensitivity(
    model: DNNModel | None = None,
    bytes_per_element: Sequence[int] = (2, 4, 8),
    batch_size: int = 256,
    array: ArrayConfig | None = None,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    engine: "SweepEngine | int | None" = None,
) -> SensitivityStudy:
    """HyPar's advantage as the storage precision of tensors changes."""
    model = model or vgg_a()
    array = array or ArrayConfig()
    scaling_mode = ScalingMode.parse(scaling_mode)
    for precision in bytes_per_element:
        if precision <= 0:
            raise ValueError(f"precision must be positive, got {precision}")
    tasks = [
        _SensitivityTask(
            float(precision),
            model,
            batch_size,
            array,
            scaling_mode,
            CommunicationModel(bytes_per_element=precision),
        )
        for precision in bytes_per_element
    ]
    return _run_sensitivity("precision", model, tasks, engine)
