"""Churn study: re-planning policies under synthetic availability traces.

The resilience layer (see DESIGN.md, "Resilience layer") replays node
churn against the partitioner; this study sweeps the policy question the
single ``hypar replan`` run cannot answer: across models and churn
regimes, how much utilization does hysteresis trade for how much saved
migration traffic, compared to re-planning at every membership event?

One grid point is (model, trace preset, policy); every point replays the
same seeded trace per preset, so the two policies of a (model, preset)
pair face identical churn and their rows differ only by policy.  Points
map through the shared :class:`~repro.sweep.engine.SweepEngine` (serial
by default, byte-identical for any worker count -- each point is a pure
function of its own configuration).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.hierarchical import DEFAULT_BATCH_SIZE
from repro.resilience.replan import POLICIES, ReplanConfig, run_replan
from repro.resilience.traces import PRESET_NAMES, synthesize_trace
from repro.sweep.engine import SweepEngine, owned_engine

#: Default model set: the paper's smallest and largest chain networks
#: bracket the migration-cost range without making the study slow.
DEFAULT_MODELS = ("Lenet-c", "VGG-A")


@dataclasses.dataclass(frozen=True)
class ChurnPoint:
    """One picklable grid point of the churn study."""

    model: str
    preset: str
    policy: str
    num_nodes: int = 16
    seed: int = 7
    num_events: int = 10
    batch_size: int = DEFAULT_BATCH_SIZE
    horizon_steps: int = 500

    def label(self) -> str:
        return f"{self.model}/{self.preset}/{self.policy}"


@dataclasses.dataclass(frozen=True)
class ChurnStudy:
    """Flat per-point rows plus the grid that produced them."""

    points: tuple[ChurnPoint, ...]
    rows: tuple[dict, ...]

    def as_rows(self) -> list[dict]:
        return [dict(row) for row in self.rows]


def _evaluate_churn_point(point: ChurnPoint) -> dict:
    """Sweep-engine task: replay one (model, preset, policy) point."""
    trace = synthesize_trace(
        point.preset,
        num_nodes=point.num_nodes,
        seed=point.seed,
        num_events=point.num_events,
    )
    config = ReplanConfig(
        model=point.model,
        batch_size=point.batch_size,
        policy=point.policy,
        horizon_steps=point.horizon_steps,
    )
    report = run_replan(trace, config)
    totals = report.totals()
    return {
        "model": config.model,
        "preset": point.preset,
        "policy": point.policy,
        "num_nodes": point.num_nodes,
        "seed": point.seed,
        "num_events": len(trace.events),
        "batch_size": point.batch_size,
        "mean_utilization": totals["mean_utilization"],
        "effective_samples_per_second": totals["effective_samples_per_second"],
        "replans": totals["replans"],
        "remaps": totals["remaps"],
        "deferred": totals["deferred"],
        "downtime_events": totals["downtime_events"],
        "migration_total_gb": totals["migration_gb"],
        "migration_seconds": totals["migration_seconds"],
        "warm_full_hits": totals["warm_start"]["full_hits"],
        "warm_solved_layers": totals["warm_start"]["solved_layers"],
    }


def run_churn_study(
    models: Sequence[str] = DEFAULT_MODELS,
    presets: Sequence[str] = PRESET_NAMES,
    policies: Sequence[str] = POLICIES,
    num_nodes: int = 16,
    seed: int = 7,
    num_events: int = 10,
    batch_size: int = DEFAULT_BATCH_SIZE,
    horizon_steps: int = 500,
    engine: "SweepEngine | int | None" = None,
) -> ChurnStudy:
    """Sweep (model x trace preset x policy) and tabulate the trade-off."""
    points = tuple(
        ChurnPoint(
            model=model,
            preset=preset,
            policy=policy,
            num_nodes=num_nodes,
            seed=seed,
            num_events=num_events,
            batch_size=batch_size,
            horizon_steps=horizon_steps,
        )
        for model in models
        for preset in presets
        for policy in policies
    )
    with owned_engine(engine) as resolved:
        rows = resolved.map(_evaluate_churn_point, points)
    return ChurnStudy(points=points, rows=tuple(rows))
