"""Drivers for the paper's headline experiments (Figures 5, 6, 7 and 8).

For every evaluation network the paper compares three strategies on the
sixteen-accelerator H-tree array:

* the default **Model Parallelism** (mp everywhere),
* the default **Data Parallelism** (dp everywhere, the normalisation
  baseline),
* **HyPar**, the hierarchical communication-minimising search.

Figure 5 reports the parallelism HyPar picks per layer per hierarchy level;
Figure 6 the performance normalised to Data Parallelism; Figure 7 the
energy efficiency normalised to Data Parallelism; Figure 8 the absolute
communication per training step.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.report import format_table, geometric_mean
from repro.core.baselines import data_parallelism, model_parallelism, one_weird_trick
from repro.core.costmodel import ANALYTIC_SPEC, canonical_cost_model, resolve_cost_model
from repro.core.hierarchical import DEFAULT_BATCH_SIZE, HierarchicalPartitioner
from repro.core.parallelism import HierarchicalAssignment, StrategySpace
from repro.core.result import HierarchicalResult
from repro.core.tensors import ScalingMode
from repro.interconnect import Topology
from repro.nn.model import DNNModel
from repro.nn.model_zoo import all_models
from repro.sim.metrics import TrainingStepReport
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine

#: Strategy names as they appear in the paper's figures.
MODEL_PARALLELISM = "Model Parallelism"
DATA_PARALLELISM = "Data Parallelism"
HYPAR = "HyPar"
ONE_WEIRD_TRICK = "One Weird Trick"


@dataclasses.dataclass(frozen=True)
class ModelComparison:
    """Simulated reports for one network under every strategy."""

    model_name: str
    reports: Mapping[str, TrainingStepReport]
    hypar_result: HierarchicalResult

    @property
    def baseline(self) -> TrainingStepReport:
        return self.reports[DATA_PARALLELISM]

    def normalized_performance(self) -> dict[str, float]:
        """Speedup of every strategy over Data Parallelism (Figure 6)."""
        return {
            name: report.speedup_over(self.baseline)
            for name, report in self.reports.items()
        }

    def normalized_energy_efficiency(self) -> dict[str, float]:
        """Energy saving of every strategy over Data Parallelism (Figure 7)."""
        return {
            name: report.energy_efficiency_over(self.baseline)
            for name, report in self.reports.items()
        }

    def communication_gb(self) -> dict[str, float]:
        """Absolute communication per step in GB (Figure 8)."""
        return {name: report.communication_gb for name, report in self.reports.items()}


@dataclasses.dataclass(frozen=True)
class EvaluationTable:
    """Comparisons for a set of networks plus geometric means."""

    comparisons: Sequence[ModelComparison]

    def models(self) -> list[str]:
        return [comparison.model_name for comparison in self.comparisons]

    def _collect(self, extractor) -> dict[str, dict[str, float]]:
        return {
            comparison.model_name: extractor(comparison)
            for comparison in self.comparisons
        }

    def performance(self) -> dict[str, dict[str, float]]:
        return self._collect(ModelComparison.normalized_performance)

    def energy_efficiency(self) -> dict[str, dict[str, float]]:
        return self._collect(ModelComparison.normalized_energy_efficiency)

    def communication(self) -> dict[str, dict[str, float]]:
        return self._collect(ModelComparison.communication_gb)

    def gmean(self, table: Mapping[str, Mapping[str, float]], strategy: str) -> float:
        return geometric_mean(
            row[strategy] for row in table.values() if row.get(strategy, 0) > 0
        )

    def format(self) -> str:
        """All three tables rendered the way the paper's figures label them."""
        strategies = [MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR]
        sections = [
            format_table("Figure 6: performance normalized to Data Parallelism",
                         self.performance(), strategies),
            format_table("Figure 7: energy efficiency normalized to Data Parallelism",
                         self.energy_efficiency(), strategies),
            format_table("Figure 8: total communication per step (GB)",
                         self.communication(), strategies),
        ]
        return "\n\n".join(sections)


@dataclasses.dataclass(frozen=True)
class _RunnerConfig:
    """Picklable recipe for rebuilding an :class:`ExperimentRunner` in a worker."""

    array: ArrayConfig
    batch_size: int
    scaling_mode: ScalingMode
    include_trick: bool
    strategies: str
    #: A custom topology object rides along verbatim (``None`` = the
    #: default H tree); configs carrying one are not runtime-cached
    #: because topologies hash by identity.
    topology: Topology | None = None
    #: Cost-model spec string -- strings pickle cleanly into workers, and
    #: the worker re-resolves (and re-fits, once per process) on build.
    cost_model: str = ANALYTIC_SPEC

    def build(self) -> "ExperimentRunner":
        return ExperimentRunner(
            array=self.array,
            topology=self.topology,
            batch_size=self.batch_size,
            scaling_mode=self.scaling_mode,
            include_trick=self.include_trick,
            strategies=self.strategies,
            cost_model=self.cost_model,
        )


def _runner_for(config: _RunnerConfig) -> "ExperimentRunner":
    if config.topology is not None:
        return config.build()
    key = (
        "experiment-runner",
        config.array,
        config.batch_size,
        config.scaling_mode,
        config.include_trick,
        config.strategies,
        config.cost_model,
    )
    return runtime_cached(key, config.build)


def _compare_task(task: tuple[_RunnerConfig, DNNModel]) -> "ModelComparison":
    """Sweep-engine task: one network's Figures 6-8 comparison."""
    config, model = task
    return _runner_for(config).compare(model)


class ExperimentRunner:
    """Runs the partition search and the simulator for a set of strategies.

    Parameters mirror the paper's setup: a sixteen-accelerator H-tree array
    and a batch size of 256, all overridable for the sensitivity studies.
    Cost tables compile into the process-shared
    :func:`~repro.sweep.cache.shared_table_cache`, so every study touching
    the same configuration reuses them.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        topology: Topology | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        include_trick: bool = False,
        strategies: "StrategySpace | str | None" = None,
        cost_model: str = ANALYTIC_SPEC,
    ) -> None:
        self.array = array or ArrayConfig()
        self.topology = topology
        self.batch_size = batch_size
        self.scaling_mode = ScalingMode.parse(scaling_mode)
        self.include_trick = include_trick
        self.cost_model = canonical_cost_model(cost_model)
        self.simulator = TrainingSimulator(
            self.array,
            topology,
            communication_model=resolve_cost_model(self.cost_model).communication_model(),
            scaling_mode=self.scaling_mode,
            strategies=strategies,
            table_cache=shared_table_cache(),
        )
        self.strategies = self.simulator.strategies
        self.partitioner = HierarchicalPartitioner(
            num_levels=self.array.num_levels,
            communication_model=self.simulator.communication_model,
            scaling_mode=self.scaling_mode,
            strategies=self.strategies,
        )

    def _task_config(self) -> _RunnerConfig:
        return _RunnerConfig(
            array=self.array,
            batch_size=self.batch_size,
            scaling_mode=self.scaling_mode,
            include_trick=self.include_trick,
            strategies=self.strategies.describe(),
            topology=self.topology,
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------
    # Figure 5: the optimised parallelism lists.
    # ------------------------------------------------------------------

    def optimized_parallelism(self, model: DNNModel) -> HierarchicalResult:
        """HyPar's searched assignment for ``model`` (one list per level).

        Search and simulation share the simulator's cached cost table.
        """
        table = self.simulator.cost_table(model, self.batch_size)
        return self.partitioner.partition(model, self.batch_size, table=table)

    # ------------------------------------------------------------------
    # Figures 6-8: simulate every strategy.
    # ------------------------------------------------------------------

    def strategy_assignments(self, model: DNNModel) -> dict[str, HierarchicalAssignment]:
        """The assignments simulated for one network."""
        num_levels = self.array.num_levels
        hypar = self.optimized_parallelism(model)
        assignments = {
            MODEL_PARALLELISM: model_parallelism(model, num_levels),
            DATA_PARALLELISM: data_parallelism(model, num_levels),
            HYPAR: hypar.assignment,
        }
        if self.include_trick:
            assignments[ONE_WEIRD_TRICK] = one_weird_trick(model, num_levels)
        return assignments

    def compare(self, model: DNNModel) -> ModelComparison:
        """Simulate every strategy for one network.

        Every strategy's simulation gathers from the same compiled cost
        table (tensor amounts depend on the model and batch, not on the
        strategy).
        """
        hypar_result = self.optimized_parallelism(model)
        assignments = self.strategy_assignments(model)
        table = self.simulator.cost_table(model, self.batch_size)
        reports = {
            name: self.simulator.simulate(
                model, assignment, self.batch_size, name, cost_table=table
            )
            for name, assignment in assignments.items()
        }
        return ModelComparison(
            model_name=model.name, reports=reports, hypar_result=hypar_result
        )

    def run(
        self,
        models: Sequence[DNNModel] | None = None,
        engine: "SweepEngine | int | None" = None,
    ) -> EvaluationTable:
        """Run the comparison for every network (defaults to the paper's ten).

        One sweep task per network: the grid maps through ``engine``
        (serial by default), so ``engine=SweepEngine(workers=4)`` fans the
        networks out across processes with byte-identical results.
        """
        models = list(models) if models is not None else all_models()
        with owned_engine(engine) as resolved:
            if resolved.workers <= 1:
                # In-process: use this runner directly instead of caching a
                # duplicate of it in the process-global runtime cache.
                comparisons = resolved.map(self.compare, models)
            else:
                config = self._task_config()
                comparisons = resolved.map(
                    _compare_task, [(config, model) for model in models]
                )
        return EvaluationTable(tuple(comparisons))
