"""Experiment drivers that regenerate every table and figure of the paper.

* :mod:`repro.analysis.experiments` -- Figures 5-8 (optimised parallelism,
  performance, energy efficiency, communication).
* :mod:`repro.analysis.exploration` -- Figures 9-10 (parallelism-space
  exploration for Lenet-c and VGG-A).
* :mod:`repro.analysis.scalability` -- Figure 11 (1-64 accelerators).
* :mod:`repro.analysis.topology_study` -- Figure 12 (H tree vs torus).
* :mod:`repro.analysis.trick_study` -- Figure 13 ("one weird trick").
* :mod:`repro.analysis.churn_study` -- re-planning policies under node
  churn (beyond the paper; see the resilience layer).
* :mod:`repro.analysis.congestion_study` -- analytic vs network-engine
  strategy rankings under link contention (beyond the paper; see the
  network simulator).
* :mod:`repro.analysis.report` -- table/series formatting helpers.
"""

from repro.analysis.churn_study import (
    ChurnPoint,
    ChurnStudy,
    run_churn_study,
)
from repro.analysis.congestion_study import (
    CongestionComparison,
    CongestionConfig,
    CongestionStudy,
    run_congestion_study,
)

from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ONE_WEIRD_TRICK,
    EvaluationTable,
    ExperimentRunner,
    ModelComparison,
)
from repro.analysis.exploration import (
    ExplorationPoint,
    ExplorationResult,
    ParallelismExplorer,
    bit_string,
    describe_point,
)
from repro.analysis.report import format_series, format_table, format_value, geometric_mean
from repro.analysis.sensitivity import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_LINK_BANDWIDTHS,
    SensitivityPoint,
    SensitivityStudy,
    batch_size_sensitivity,
    link_bandwidth_sensitivity,
    precision_sensitivity,
)
from repro.analysis.scalability import (
    DEFAULT_ARRAY_SIZES,
    ScalabilityCurve,
    ScalabilityPoint,
    ScalabilityStudy,
    run_scalability_study,
)
from repro.analysis.topology_study import (
    TopologyComparison,
    TopologyStudy,
    run_topology_study,
)
from repro.analysis.trick_study import (
    DEFAULT_CONFIGS,
    FOCUS_LAYERS,
    TrickComparison,
    TrickStudy,
    focus_subnetwork,
    run_trick_study,
)

__all__ = [
    "ChurnPoint",
    "ChurnStudy",
    "run_churn_study",
    "CongestionComparison",
    "CongestionConfig",
    "CongestionStudy",
    "run_congestion_study",
    "ExperimentRunner",
    "EvaluationTable",
    "ModelComparison",
    "MODEL_PARALLELISM",
    "DATA_PARALLELISM",
    "HYPAR",
    "ONE_WEIRD_TRICK",
    "ParallelismExplorer",
    "ExplorationResult",
    "ExplorationPoint",
    "describe_point",
    "bit_string",
    "run_scalability_study",
    "ScalabilityStudy",
    "ScalabilityCurve",
    "ScalabilityPoint",
    "DEFAULT_ARRAY_SIZES",
    "run_topology_study",
    "TopologyStudy",
    "TopologyComparison",
    "run_trick_study",
    "TrickStudy",
    "TrickComparison",
    "DEFAULT_CONFIGS",
    "FOCUS_LAYERS",
    "focus_subnetwork",
    "geometric_mean",
    "format_table",
    "format_series",
    "format_value",
    "batch_size_sensitivity",
    "link_bandwidth_sensitivity",
    "precision_sensitivity",
    "SensitivityStudy",
    "SensitivityPoint",
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_LINK_BANDWIDTHS",
]
