"""Congestion study: where link contention changes the preferred partition.

The analytic engine charges every pair boundary the closed-form cost
``bytes / effective_pair_bandwidth`` on one shared per-level link resource;
the network engine (:mod:`repro.sim.network`) instead routes each exchange
over the topology's physical links and lets concurrent flows queue.  On
the H tree the two agree bit-for-bit for uncongested schedules (the routed
flows are exactly the disjoint subtree links the closed form assumes), but
on a torus -- where pair flows share physical hops -- and wherever the
event-driven schedule overlaps gradient all-reduce with backpropagation,
the engines diverge.

This study pins the headline consequence: for a small set of
configurations it simulates Data Parallelism, Model Parallelism and
HyPar's searched assignment under *both* engines and records the two
strategy rankings.  At least one default configuration exhibits a
**ranking flip** -- the analytic engine prefers one strategy order, the
contention-aware simulation another -- which is the reason the network
engine exists: a partition chosen off the closed form alone can be the
wrong one on real links.

The default grid and its exact floats are golden-pinned
(``tests/analysis/golden_congestion.json``); regenerate deliberately with
``python scripts/generate_congestion_golden.py`` when an output change is
intended.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism, model_parallelism
from repro.core.hierarchical import HierarchicalPartitioner
from repro.interconnect import HTreeTopology, TorusTopology
from repro.nn.model_zoo import get_model
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine

#: Strategy labels in simulation order (also the figure labels).
STRATEGIES = ("Data Parallelism", "Model Parallelism", "HyPar")


@dataclasses.dataclass(frozen=True)
class CongestionConfig:
    """One platform configuration of the study grid."""

    model: str
    num_accelerators: int
    topology: str
    batch_size: int

    def label(self) -> str:
        return (
            f"{self.model}/n{self.num_accelerators}"
            f"/{self.topology}/b{self.batch_size}"
        )


#: The pinned default grid.  The torus ``gpt_s-4`` point is the flip: the
#: analytic engine ranks Model Parallelism ahead of Data Parallelism, the
#: network engine reverses them (MP's boundary exchanges pile onto shared
#: torus hops while DP's gradient all-reduce overlaps backpropagation).
#: The H-tree points are the agreement controls.
DEFAULT_CONFIGS = (
    CongestionConfig("Lenet-c", 4, "htree", 64),
    CongestionConfig("gpt_s-4", 4, "htree", 256),
    CongestionConfig("gpt_s-4", 4, "torus", 256),
    CongestionConfig("AlexNet", 16, "torus", 256),
)


@dataclasses.dataclass(frozen=True)
class CongestionComparison:
    """Both engines' step times for every strategy at one configuration."""

    config: CongestionConfig
    #: ``{strategy: step_seconds}`` per engine, in :data:`STRATEGIES` order.
    analytic_seconds: dict[str, float]
    network_seconds: dict[str, float]

    def ranking(self, engine: str) -> tuple[str, ...]:
        """Strategies fastest-first under ``engine``."""
        times = {
            "analytic": self.analytic_seconds,
            "network": self.network_seconds,
        }[engine]
        return tuple(sorted(times, key=times.__getitem__))

    @property
    def flipped(self) -> bool:
        """True when contention reorders the strategy preference."""
        return self.ranking("analytic") != self.ranking("network")

    def to_row(self) -> dict:
        row = {
            "model": self.config.model,
            "num_accelerators": self.config.num_accelerators,
            "topology": self.config.topology,
            "batch_size": self.config.batch_size,
        }
        for name in STRATEGIES:
            slug = name.lower().replace(" ", "_")
            row[f"{slug}_analytic_seconds"] = self.analytic_seconds[name]
            row[f"{slug}_network_seconds"] = self.network_seconds[name]
        row["analytic_ranking"] = " > ".join(self.ranking("analytic"))
        row["network_ranking"] = " > ".join(self.ranking("network"))
        row["flipped"] = self.flipped
        return row


@dataclasses.dataclass(frozen=True)
class CongestionStudy:
    """The whole grid's comparisons, in config order."""

    comparisons: tuple[CongestionComparison, ...]

    @property
    def num_flips(self) -> int:
        return sum(1 for comparison in self.comparisons if comparison.flipped)

    def as_rows(self) -> list[dict]:
        return [comparison.to_row() for comparison in self.comparisons]

    def describe(self) -> str:
        lines = [
            f"congestion study: {len(self.comparisons)} configurations, "
            f"{self.num_flips} ranking flip(s)"
        ]
        for comparison in self.comparisons:
            marker = "FLIP" if comparison.flipped else "same"
            lines.append(
                f"  {comparison.config.label():<28s} {marker}  "
                f"analytic: {' > '.join(comparison.ranking('analytic'))}  |  "
                f"network: {' > '.join(comparison.ranking('network'))}"
            )
        return "\n".join(lines)


def _congestion_simulators(
    config: CongestionConfig,
) -> tuple[TrainingSimulator, TrainingSimulator, HierarchicalPartitioner]:
    def build() -> tuple:
        array = ArrayConfig(num_accelerators=config.num_accelerators)
        topology_type = {"htree": HTreeTopology, "torus": TorusTopology}[
            config.topology
        ]
        topology = topology_type(
            config.num_accelerators, array.link_bandwidth_bytes
        )
        analytic = TrainingSimulator(
            array,
            topology,
            table_cache=shared_table_cache(),
            sim_engine="analytic",
        )
        network = TrainingSimulator(
            array,
            topology,
            table_cache=shared_table_cache(),
            sim_engine="network",
        )
        partitioner = HierarchicalPartitioner(num_levels=array.num_levels)
        return analytic, network, partitioner

    key = ("congestion-study", config.num_accelerators, config.topology)
    return runtime_cached(key, build)


def _congestion_task(config: CongestionConfig) -> CongestionComparison:
    """Sweep-engine task: one configuration under both engines."""
    analytic, network, partitioner = _congestion_simulators(config)
    model = get_model(config.model)
    num_levels = analytic.array.num_levels

    # One table serves the search and all six simulations; the search
    # itself is engine-independent (it minimises communication bytes).
    table = analytic.cost_table(model, config.batch_size)
    hypar = partitioner.partition(model, config.batch_size, table=table).assignment
    assignments = {
        "Data Parallelism": data_parallelism(model, num_levels),
        "Model Parallelism": model_parallelism(model, num_levels),
        "HyPar": hypar,
    }
    analytic_seconds = {}
    network_seconds = {}
    for name in STRATEGIES:
        assignment = assignments[name]
        analytic_seconds[name] = analytic.simulate(
            model, assignment, config.batch_size, name, cost_table=table
        ).step_seconds
        network_seconds[name] = network.simulate(
            model, assignment, config.batch_size, name, cost_table=table
        ).step_seconds
    return CongestionComparison(
        config=config,
        analytic_seconds=analytic_seconds,
        network_seconds=network_seconds,
    )


def run_congestion_study(
    configs: Sequence[CongestionConfig] | None = None,
    engine: "SweepEngine | int | None" = None,
) -> CongestionStudy:
    """Simulate the grid under both engines and collect the rankings.

    One sweep task per configuration maps through ``engine`` (serial by
    default, byte-identical for any worker count).
    """
    grid = tuple(configs) if configs is not None else DEFAULT_CONFIGS
    with owned_engine(engine) as resolved:
        comparisons = resolved.map(_congestion_task, grid)
    return CongestionStudy(tuple(comparisons))
