"""Small reporting utilities shared by the experiment drivers.

These helpers keep the benchmark harness output close to the paper's
presentation: normalised bar-chart style tables with a geometric-mean
column, like Figures 6, 7, 8 and 12.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's ``Gmean`` column)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean requires at least one value")
    if any(value <= 0 for value in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_value(value: float, digits: int = 3) -> str:
    """Format a number the way the paper's figures label bars."""
    if value == 0:
        return "0"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.{digits - 1}f}"


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    value_digits: int = 3,
    add_gmean: bool = True,
) -> str:
    """Render ``rows`` (row label -> column label -> value) as an ASCII table.

    When ``add_gmean`` is set a final row holds the geometric mean of every
    column (only the rows with strictly positive values contribute).
    """
    header = ["{:<12s}".format("")] + [f"{column:>18s}" for column in columns]
    lines = [title, "".join(header)]
    for label, values in rows.items():
        cells = [f"{label:<12s}"]
        for column in columns:
            value = values.get(column)
            cells.append(
                f"{format_value(value, value_digits):>18s}" if value is not None else f"{'-':>18s}"
            )
        lines.append("".join(cells))
    if add_gmean:
        cells = [f"{'Gmean':<12s}"]
        for column in columns:
            column_values = [
                values[column]
                for values in rows.values()
                if column in values and values[column] > 0
            ]
            if column_values:
                cells.append(f"{format_value(geometric_mean(column_values), value_digits):>18s}")
            else:
                cells.append(f"{'-':>18s}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_series(title: str, xs: Sequence, ys: Sequence[float], digits: int = 3) -> str:
    """Render an (x, y) series as two aligned rows (for sweep figures)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    x_cells = "  ".join(f"{str(x):>10s}" for x in xs)
    y_cells = "  ".join(f"{format_value(y, digits):>10s}" for y in ys)
    return f"{title}\n  x: {x_cells}\n  y: {y_cells}"


def write_study_artifacts(
    name: str, rows: Sequence[Mapping], directory: str
) -> dict[str, str]:
    """Persist a study's flat rows as ``<name>.json`` + ``<name>.csv``.

    Thin plumbing over :mod:`repro.sweep.artifacts`, so every study's
    figure data leaves through the same deterministic writers the grid
    runner uses (full float precision, stable column order) and the serial
    and process-parallel runs stay byte-comparable on disk.
    """
    import os

    from repro.sweep import artifacts

    rows = list(rows)
    json_path = os.path.join(directory, f"{name}.json")
    csv_path = os.path.join(directory, f"{name}.csv")
    artifacts.write_json(json_path, {"study": name, "rows": rows})
    artifacts.write_csv(csv_path, rows)
    return {"json": json_path, "csv": csv_path}
