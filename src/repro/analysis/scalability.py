"""Scalability study (Figure 11).

The paper scales the accelerator array from one to sixty-four accelerators
(hierarchy depth zero to six) on VGG-A and compares HyPar with the default
Data Parallelism on two axes: performance gain normalised to a single
accelerator, and total communication per step.  Data Parallelism's gain
saturates (and then degrades) once communication dominates, while HyPar
keeps scaling further -- the headline scalability claim of Section 6.4.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism
from repro.core.hierarchical import DEFAULT_BATCH_SIZE, HierarchicalPartitioner
from repro.core.parallelism import StrategySpace
from repro.core.tensors import ScalingMode
from repro.interconnect import HTreeTopology
from repro.nn.model import DNNModel
from repro.nn.model_zoo import vgg_a
from repro.sim.metrics import TrainingStepReport
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine

#: The paper sweeps 1, 2, 4, ..., 64 accelerators.
DEFAULT_ARRAY_SIZES = (1, 2, 4, 8, 16, 32, 64)


@dataclasses.dataclass(frozen=True)
class ScalabilityPoint:
    """Simulated behaviour of one strategy at one array size."""

    num_accelerators: int
    strategy_name: str
    report: TrainingStepReport

    @property
    def step_seconds(self) -> float:
        return self.report.step_seconds

    @property
    def communication_gb(self) -> float:
        return self.report.communication_gb


@dataclasses.dataclass(frozen=True)
class ScalabilityCurve:
    """One strategy's curve across array sizes."""

    strategy_name: str
    points: tuple[ScalabilityPoint, ...]

    def performance_gains(self, single_accelerator_seconds: float) -> list[float]:
        """Speedups over the single-accelerator latency (the left axis of Figure 11)."""
        return [single_accelerator_seconds / point.step_seconds for point in self.points]

    def communication_gb(self) -> list[float]:
        """Per-step traffic at every array size (the right axis of Figure 11)."""
        return [point.communication_gb for point in self.points]

    def saturation_size(self, single_accelerator_seconds: float) -> int:
        """Array size after which adding accelerators stops helping.

        Returns the number of accelerators at which the performance gain
        peaks; if the gain is still rising at the largest size swept, that
        size is returned.
        """
        gains = self.performance_gains(single_accelerator_seconds)
        best_index = max(range(len(gains)), key=lambda i: gains[i])
        return self.points[best_index].num_accelerators


@dataclasses.dataclass(frozen=True)
class ScalabilityStudy:
    """Complete Figure 11 data: both strategies over every array size."""

    model_name: str
    array_sizes: tuple[int, ...]
    single_accelerator_seconds: float
    hypar: ScalabilityCurve
    data_parallelism: ScalabilityCurve

    def as_rows(self) -> list[dict]:
        """Flat rows (one per array size) convenient for printing/CSV."""
        hypar_gains = self.hypar.performance_gains(self.single_accelerator_seconds)
        dp_gains = self.data_parallelism.performance_gains(self.single_accelerator_seconds)
        rows = []
        for index, size in enumerate(self.array_sizes):
            rows.append(
                {
                    "num_accelerators": size,
                    "hypar_gain": hypar_gains[index],
                    "dp_gain": dp_gains[index],
                    "hypar_comm_gb": self.hypar.points[index].communication_gb,
                    "dp_comm_gb": self.data_parallelism.points[index].communication_gb,
                }
            )
        return rows


@dataclasses.dataclass(frozen=True)
class _ScalabilityContext:
    """Shared, picklable state of one Figure 11 sweep."""

    base_array: ArrayConfig
    batch_size: int
    scaling_mode: ScalingMode
    strategies: str | None
    model: DNNModel


def _size_simulator(context: _ScalabilityContext, size: int) -> TrainingSimulator:
    def build() -> TrainingSimulator:
        array = context.base_array.with_num_accelerators(size)
        topology = (
            HTreeTopology(size, array.link_bandwidth_bytes) if size > 1 else None
        )
        return TrainingSimulator(
            array,
            topology,
            scaling_mode=context.scaling_mode,
            strategies=context.strategies,
            table_cache=shared_table_cache(),
        )

    key = (
        "scalability-simulator",
        context.base_array,
        size,
        context.scaling_mode,
        context.strategies,
    )
    return runtime_cached(key, build)


def _scalability_task(
    task: tuple[_ScalabilityContext, int]
) -> tuple[TrainingStepReport, TrainingStepReport]:
    """Sweep-engine task: HyPar and Data Parallelism reports at one size."""
    context, size = task
    model = context.model
    simulator = _size_simulator(context, size)
    if size == 1:
        report = simulator.simulate(
            model, None, context.batch_size, strategy_name="single"
        )
        return report, report

    array = simulator.array
    partitioner = runtime_cached(
        ("scalability-partitioner", size, context.scaling_mode, context.strategies),
        lambda: HierarchicalPartitioner(
            num_levels=array.num_levels,
            scaling_mode=context.scaling_mode,
            strategies=simulator.strategies,
        ),
    )
    # Share one compiled cost table between the search and both
    # strategies' simulations at this array size.
    table = simulator.cost_table(model, context.batch_size)
    hypar_assignment = partitioner.partition(
        model, context.batch_size, table=table
    ).assignment
    dp_assignment = data_parallelism(model, array.num_levels)

    hypar_report = simulator.simulate(
        model, hypar_assignment, context.batch_size, "HyPar", cost_table=table
    )
    dp_report = simulator.simulate(
        model, dp_assignment, context.batch_size, "Data Parallelism", cost_table=table
    )
    return hypar_report, dp_report


def run_scalability_study(
    model: DNNModel | None = None,
    array_sizes: Sequence[int] = DEFAULT_ARRAY_SIZES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    base_array: ArrayConfig | None = None,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    strategies=None,
    engine: "SweepEngine | int | None" = None,
) -> ScalabilityStudy:
    """Sweep the array size for HyPar and Data Parallelism (Figure 11).

    ``model`` defaults to VGG-A, the network the paper uses for this study.
    One sweep task per array size maps through ``engine`` (serial by
    default, byte-identical for any worker count).
    """
    model = model or vgg_a()
    base_array = base_array or ArrayConfig()
    sizes = tuple(sorted(set(array_sizes)))
    if sizes[0] < 1:
        raise ValueError("array sizes must be at least 1")

    context = _ScalabilityContext(
        base_array=base_array,
        batch_size=batch_size,
        scaling_mode=ScalingMode.parse(scaling_mode),
        strategies=StrategySpace.parse(strategies).describe(),
        model=model,
    )
    with owned_engine(engine) as resolved:
        reports = resolved.map(_scalability_task, [(context, size) for size in sizes])

    hypar_points: list[ScalabilityPoint] = []
    dp_points: list[ScalabilityPoint] = []
    single_seconds: float | None = None
    for size, (hypar_report, dp_report) in zip(sizes, reports):
        if size == 1:
            single_seconds = hypar_report.step_seconds
            hypar_points.append(ScalabilityPoint(size, "HyPar", hypar_report))
            dp_points.append(ScalabilityPoint(size, "Data Parallelism", dp_report))
            continue
        hypar_points.append(ScalabilityPoint(size, "HyPar", hypar_report))
        dp_points.append(ScalabilityPoint(size, "Data Parallelism", dp_report))

    if single_seconds is None:
        # The sweep did not include a single-accelerator point; normalise to
        # the smallest size instead.
        single_seconds = hypar_points[0].step_seconds

    return ScalabilityStudy(
        model_name=model.name,
        array_sizes=sizes,
        single_accelerator_seconds=single_seconds,
        hypar=ScalabilityCurve("HyPar", tuple(hypar_points)),
        data_parallelism=ScalabilityCurve("Data Parallelism", tuple(dp_points)),
    )
