"""Parallelism-space exploration (Figures 9 and 10).

The paper validates HyPar's search by exhaustively sweeping restricted
slices of the parallelism space and checking where the searched assignment
lands relative to the true performance peak:

* **Figure 9 (Lenet-c)** -- the parallelisms of all four layers at levels
  H2 and H3 are fixed to HyPar's choices while all four layers at H1 and H4
  sweep through every dp/mp combination (2^8 = 256 points).
* **Figure 10 (VGG-A)** -- every layer is fixed to HyPar's choice except
  ``conv5_2`` and ``fc1``, whose parallelism sweeps across all four levels
  (again 2^8 = 256 points).

Both sweeps report simulated performance normalised to the default Data
Parallelism, so the peak can be compared with the HyPar point directly.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.experiments import DATA_PARALLELISM, HYPAR, ExperimentRunner
from repro.core.exhaustive import (
    DEFAULT_MAX_CANDIDATES,
    check_free_positions,
    restricted_assignment,
)
from repro.core.hierarchical import DEFAULT_BATCH_SIZE
from repro.core.parallelism import HierarchicalAssignment, Parallelism
from repro.core.tensors import ScalingMode
from repro.nn.model import DNNModel
from repro.nn.model_zoo import lenet_c, vgg_a
from repro.sim.metrics import TrainingStepReport
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine


@dataclasses.dataclass(frozen=True)
class ExplorationPoint:
    """One point of a restricted sweep."""

    assignment: HierarchicalAssignment
    #: Bit pattern over the swept positions (the x/y coordinates of the
    #: paper's surface plots), least-significant position first.
    bits: int
    normalized_performance: float


@dataclasses.dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one restricted parallelism-space sweep."""

    model_name: str
    free_positions: tuple[tuple[int, int], ...]
    points: tuple[ExplorationPoint, ...]
    hypar_assignment: HierarchicalAssignment
    hypar_performance: float

    @property
    def peak(self) -> ExplorationPoint:
        """The best point found by the sweep."""
        return max(self.points, key=lambda point: point.normalized_performance)

    @property
    def hypar_is_peak(self) -> bool:
        """Whether HyPar's assignment achieves the sweep's peak performance."""
        return self.hypar_performance >= self.peak.normalized_performance * (1 - 1e-9)

    @property
    def hypar_gap(self) -> float:
        """Relative shortfall of HyPar versus the sweep peak (0 when optimal)."""
        return max(0.0, 1.0 - self.hypar_performance / self.peak.normalized_performance)


@dataclasses.dataclass(frozen=True)
class _SweepContext:
    """Shared, picklable state of one restricted sweep.

    Every task of the sweep carries a reference to the same context;
    pickling memoizes it, so a chunk shipped to a worker serializes the
    model and base assignment once, not once per point.
    """

    array: ArrayConfig
    batch_size: int
    scaling_mode: ScalingMode
    strategies: str
    model: DNNModel
    base_assignment: HierarchicalAssignment
    free_positions: tuple[tuple[int, int], ...]
    baseline_report: TrainingStepReport


def _sweep_simulator(context: _SweepContext) -> TrainingSimulator:
    key = (
        "exploration-simulator",
        context.array,
        context.scaling_mode,
        context.strategies,
    )
    return runtime_cached(
        key,
        lambda: TrainingSimulator(
            context.array,
            scaling_mode=context.scaling_mode,
            strategies=context.strategies,
            table_cache=shared_table_cache(),
        ),
    )


def _sweep_point_task(task: tuple[_SweepContext, int]) -> float:
    """Sweep-engine task: simulate one restricted-sweep candidate.

    Returns the candidate's performance normalised to the context's Data
    Parallelism baseline -- the z axis of the Figures 9/10 surfaces.
    """
    context, codes = task
    simulator = _sweep_simulator(context)
    cost_table = simulator.cost_table(context.model, context.batch_size)
    assignment = restricted_assignment(
        context.base_assignment,
        context.free_positions,
        codes,
        simulator.strategies,
    )
    report = simulator.simulate(
        context.model,
        assignment,
        context.batch_size,
        strategy_name="sweep",
        cost_table=cost_table,
    )
    return report.speedup_over(context.baseline_report)


class ParallelismExplorer:
    """Sweeps restricted slices of the hierarchical parallelism space.

    ``engine`` (a :class:`~repro.sweep.engine.SweepEngine`, a worker count,
    or ``None`` for serial) controls how the sweep's independent simulation
    points are mapped; results are byte-identical for every engine.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
        strategies=None,
        engine: "SweepEngine | int | None" = None,
    ) -> None:
        self.runner = ExperimentRunner(
            array=array,
            batch_size=batch_size,
            scaling_mode=scaling_mode,
            strategies=strategies,
        )
        self.batch_size = batch_size
        #: Raw engine spec; resolved (and, for worker counts, closed)
        #: per explore() call by ``owned_engine``.
        self.engine = engine

    # ------------------------------------------------------------------
    # Generic restricted sweep.
    # ------------------------------------------------------------------

    def explore(
        self,
        model: DNNModel,
        free_positions: Sequence[tuple[int, int]],
    ) -> ExplorationResult:
        """Sweep every dp/mp combination of ``free_positions``.

        ``free_positions`` is a list of ``(level, layer)`` indices; every
        other position keeps HyPar's searched choice.  Performance of every
        point is simulated and normalised to the default Data Parallelism.
        The points map through the sweep engine, one task per candidate;
        each worker compiles the shared cost table once and gathers the
        scale-descent tensor amounts from it for all its points.
        """
        hypar_result = self.runner.optimized_parallelism(model)
        base_assignment = hypar_result.assignment

        comparison = self.runner.compare(model)
        baseline_report = comparison.reports[DATA_PARALLELISM]
        hypar_performance = comparison.reports[HYPAR].speedup_over(baseline_report)

        space = self.runner.strategies
        free = list(free_positions)
        check_free_positions(model, base_assignment, free, DEFAULT_MAX_CANDIDATES, space)
        context = _SweepContext(
            array=self.runner.array,
            batch_size=self.batch_size,
            scaling_mode=self.runner.scaling_mode,
            strategies=space.describe(),
            model=model,
            base_assignment=base_assignment,
            free_positions=tuple(free),
            baseline_report=baseline_report,
        )
        num_candidates = space.size ** len(free)
        with owned_engine(self.engine) as engine:
            performances = engine.map(
                _sweep_point_task, [(context, codes) for codes in range(num_candidates)]
            )
        points = tuple(
            ExplorationPoint(
                assignment=restricted_assignment(base_assignment, free, bits, space),
                bits=bits,
                normalized_performance=performance,
            )
            for bits, performance in enumerate(performances)
        )
        return ExplorationResult(
            model_name=model.name,
            free_positions=tuple(free),
            points=points,
            hypar_assignment=base_assignment,
            hypar_performance=hypar_performance,
        )

    # ------------------------------------------------------------------
    # The paper's two sweeps.
    # ------------------------------------------------------------------

    def explore_lenet(self) -> ExplorationResult:
        """Figure 9: sweep all Lenet-c layers at levels H1 and H4."""
        model = lenet_c()
        num_layers = len(model)
        levels = self.runner.array.num_levels
        first_level = 0
        last_level = levels - 1
        free = [(first_level, layer) for layer in range(num_layers)]
        free += [(last_level, layer) for layer in range(num_layers)]
        return self.explore(model, free)

    def explore_vgg_a(self) -> ExplorationResult:
        """Figure 10: sweep conv5_2 and fc1 of VGG-A across every level."""
        model = vgg_a()
        conv5_2 = model.layer_by_name("conv5_2").index
        fc1 = model.layer_by_name("fc1").index
        levels = self.runner.array.num_levels
        free = [(level, conv5_2) for level in range(levels)]
        free += [(level, fc1) for level in range(levels)]
        return self.explore(model, free)


def describe_point(point: ExplorationPoint, free_positions: Sequence[tuple[int, int]]) -> str:
    """Readable encoding of a sweep point: the dp/mp bits of the swept positions."""
    bits = []
    for position, (level, layer) in enumerate(free_positions):
        choice = point.assignment.choice(level, layer)
        bits.append(f"H{level + 1}/layer{layer}={choice.short}")
    return ", ".join(bits)


def bit_string(point: ExplorationPoint, num_positions: int) -> str:
    """The sweep point's bit pattern as a string (0 = dp, 1 = mp)."""
    return format(point.bits, f"0{num_positions}b")[::-1]


def _choices_for_positions(
    assignment: HierarchicalAssignment, positions: Sequence[tuple[int, int]]
) -> list[Parallelism]:
    return [assignment.choice(level, layer) for level, layer in positions]
