"""Comparison against "one weird trick" (Figure 13 and Section 6.5.2).

Krizhevsky's trick assigns data parallelism to convolutional layers and
model parallelism to fully-connected layers by rule.  The paper shows the
rule breaks once batch size and hierarchy depth vary, using two layers of
VGG-E as the focal points:

* ``conv5`` (a late 512-channel 3x3 convolution whose output map is only
  14x14): at a small batch (32) the gradient tensor is *larger* than the
  output feature map, so the layer should use model parallelism -- the
  trick still picks data parallelism;
* ``fc3`` (the 4096 → 1000 classifier): at a large batch (4096) the
  gradient and output tensors are the same size, and the inter-layer term
  favours data parallelism -- the trick still picks model parallelism.

Each configuration of the figure is ``<focus layer>-b<batch>-h<levels>``:
the focus layer together with its predecessor (so the inter-layer term is
exercised) is evaluated at the given batch size on an array with the given
number of hierarchy levels, under both HyPar's searched assignment and the
trick's rule, and the figure reports HyPar's performance and energy
efficiency relative to the trick.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.report import geometric_mean
from repro.core.baselines import one_weird_trick
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import StrategySpace
from repro.core.tensors import ScalingMode
from repro.interconnect import HTreeTopology
from repro.nn.model import DNNModel, build_model
from repro.nn.model_zoo import vgg_e
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine, owned_engine

#: The six configurations shown in Figure 13.
DEFAULT_CONFIGS = (
    ("conv5", 32, 2),
    ("conv5", 32, 3),
    ("conv5", 32, 4),
    ("fc3", 4096, 2),
    ("fc3", 4096, 3),
    ("fc3", 4096, 4),
)

#: Concrete VGG-E layer used for each focus label: the last conv of the
#: fifth block, and the final classifier layer.
FOCUS_LAYERS = {
    "conv5": "conv5_4",
    "fc3": "fc3",
}


@dataclasses.dataclass(frozen=True)
class TrickComparison:
    """HyPar versus the trick for one Figure 13 configuration."""

    label: str
    focus_layer: str
    batch_size: int
    num_levels: int
    performance_ratio: float
    energy_ratio: float


@dataclasses.dataclass(frozen=True)
class TrickStudy:
    """Figure 13 data: all configurations plus geometric means."""

    comparisons: tuple[TrickComparison, ...]

    def gmean_performance(self) -> float:
        return geometric_mean(c.performance_ratio for c in self.comparisons)

    def gmean_energy(self) -> float:
        return geometric_mean(c.energy_ratio for c in self.comparisons)

    def max_performance(self) -> float:
        return max(c.performance_ratio for c in self.comparisons)

    def as_rows(self) -> list[dict]:
        return [
            {
                "config": c.label,
                "performance": c.performance_ratio,
                "energy_efficiency": c.energy_ratio,
            }
            for c in self.comparisons
        ]


def focus_subnetwork(model: DNNModel, focus_layer_name: str) -> DNNModel:
    """The focus layer of ``model`` together with its predecessor.

    The two-layer slice keeps the inter-layer communication term in play
    while isolating the per-layer decision the trick gets wrong.
    """
    focus = model.layer_by_name(focus_layer_name)
    if focus.index == 0:
        raise ValueError(f"focus layer {focus_layer_name!r} has no predecessor")
    predecessor = model[focus.index - 1]
    return build_model(
        f"{model.name}:{predecessor.name}+{focus.name}",
        predecessor.input_shape,
        [predecessor.spec, focus.spec],
    )


@dataclasses.dataclass(frozen=True)
class _TrickContext:
    """Shared, picklable state of one Figure 13 sweep."""

    base_array: ArrayConfig
    scaling_mode: ScalingMode
    strategies: str | None
    model: DNNModel


def _trick_task(task: tuple[_TrickContext, tuple[str, int, int]]) -> TrickComparison:
    """Sweep-engine task: one ``<focus layer>-b<batch>-h<levels>`` configuration."""
    context, (focus, batch_size, num_levels) = task
    subnetwork = focus_subnetwork(context.model, FOCUS_LAYERS[focus])
    array = context.base_array.with_num_accelerators(1 << num_levels)

    def build() -> tuple[TrainingSimulator, HierarchicalPartitioner]:
        topology = HTreeTopology(array.num_accelerators, array.link_bandwidth_bytes)
        simulator = TrainingSimulator(
            array,
            topology,
            scaling_mode=context.scaling_mode,
            strategies=context.strategies,
            table_cache=shared_table_cache(),
        )
        partitioner = HierarchicalPartitioner(
            num_levels=num_levels,
            scaling_mode=context.scaling_mode,
            strategies=simulator.strategies,
        )
        return simulator, partitioner

    simulator, partitioner = runtime_cached(
        ("trick-study", array, context.scaling_mode, context.strategies), build
    )

    table = simulator.cost_table(subnetwork, batch_size)
    hypar_assignment = partitioner.partition(subnetwork, batch_size, table=table).assignment
    trick_assignment = one_weird_trick(subnetwork, num_levels)

    hypar_report = simulator.simulate(
        subnetwork, hypar_assignment, batch_size, "HyPar", cost_table=table
    )
    trick_report = simulator.simulate(
        subnetwork, trick_assignment, batch_size, "One Weird Trick", cost_table=table
    )

    return TrickComparison(
        label=f"{focus}-b{batch_size}-h{num_levels}",
        focus_layer=FOCUS_LAYERS[focus],
        batch_size=batch_size,
        num_levels=num_levels,
        performance_ratio=hypar_report.speedup_over(trick_report),
        energy_ratio=hypar_report.energy_efficiency_over(trick_report),
    )


def run_trick_study(
    configs: Sequence[tuple[str, int, int]] = DEFAULT_CONFIGS,
    base_array: ArrayConfig | None = None,
    scaling_mode: ScalingMode | str = ScalingMode.PARALLELISM_AWARE,
    strategies=None,
    engine: "SweepEngine | int | None" = None,
) -> TrickStudy:
    """Compare HyPar with "one weird trick" over the Figure 13 configurations.

    One sweep task per configuration maps through ``engine`` (serial by
    default, byte-identical for any worker count).
    """
    for focus, _, _ in configs:
        if focus not in FOCUS_LAYERS:
            known = ", ".join(sorted(FOCUS_LAYERS))
            raise KeyError(f"unknown focus layer {focus!r}; known: {known}")
    context = _TrickContext(
        base_array=base_array or ArrayConfig(),
        scaling_mode=ScalingMode.parse(scaling_mode),
        strategies=StrategySpace.parse(strategies).describe(),
        model=vgg_e(),
    )
    with owned_engine(engine) as resolved:
        comparisons = resolved.map(
            _trick_task, [(context, tuple(config)) for config in configs]
        )
    return TrickStudy(tuple(comparisons))
