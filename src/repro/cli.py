"""Command-line interface for the HyPar reproduction.

Installed as the ``hypar`` console script (also runnable with
``python -m repro``).  Sub-commands:

``hypar partition <model>``
    Run the hierarchical partition search for one network and print the
    per-level parallelism lists (the content of Figure 5).

``hypar compare [<model> ...]``
    Simulate Model Parallelism, Data Parallelism and HyPar and print the
    normalised performance / energy-efficiency / communication tables
    (Figures 6-8).

``hypar scalability``
    Sweep the array size (Figure 11).

``hypar topology``
    Compare the H-tree and torus interconnects (Figure 12).

``hypar trick``
    Compare HyPar with "one weird trick" (Figure 13).

``hypar placement <model>``
    Show which slice of every tensor each accelerator holds under HyPar's
    searched assignment, plus per-accelerator memory footprints.

``hypar trace <model>``
    Summarise the point-to-point communication trace of one training step
    (per phase, per hierarchy level, per layer).

``hypar simulate <model> [--sim-engine analytic|network]``
    Simulate one training step through the unified ``repro.sim.simulate``
    entry point: search HyPar's assignment (or simulate a uniform
    baseline via ``--strategy``), then report the step time, energy and
    per-phase breakdown.  ``--sim-engine network`` routes the step
    through the contention-aware discrete-event network simulator
    (per-physical-link occupancy and queueing) instead of the analytic
    engine (see the "Network simulator" section of DESIGN.md).

``hypar models [<model> ...] [--format table|json]``
    List the available networks.  With model names given, print the
    per-layer shape/weight/MACs table plus the layer-graph edge list;
    ``--format json`` emits the same information as JSON.

``hypar strategies``
    List the registered per-layer parallelism strategies.

``hypar sweep <spec.json|preset>``
    Run a declarative sweep grid (models x strategy spaces x topologies x
    scaling modes x batch sizes x array sizes x sim engines) through the
    shared sweep engine.  ``--workers N`` fans the points out over N
    worker processes (byte-identical to the serial run); ``--out DIR``
    writes the JSON/CSV artifacts; ``--sim-engine network`` runs the
    whole grid under the network simulator.  ``hypar sweep --list`` names
    the built-in presets.

``hypar replan [<model>] [--trace t.jsonl | --preset spot] [--policy P]``
    Replay an availability trace (node churn) against the partitioner:
    at every membership change, re-partition the surviving sub-array
    (warm-started DP), cost the re-shard migration traffic, and report
    utilization over time under the chosen re-planning policy
    (``every-event`` or ``hysteresis``).  See the "Resilience layer"
    section of DESIGN.md.

``hypar serve [--port P] [--workers N] [--cache-size M]``
    Run the long-lived partition service: an HTTP daemon answering
    ``POST /partition``, ``POST /simulate``, ``POST /sweep``,
    ``POST /replan``, ``GET /models``, ``GET /strategies`` and
    ``GET /healthz`` from a warm LRU response cache over the shared
    compiled-table cache, with a persistent ``--workers N`` pool behind
    ``/sweep``.  ``--request-timeout S`` bounds each request server-side
    (504 on overrun).  The one-shot commands above remain the batch path;
    the daemon serves repeated traffic at steady-state latencies (see the
    "Service layer" section of DESIGN.md).  Stops cleanly on
    SIGTERM/SIGINT.

Most sub-commands accept ``--strategies dp,mp,pp`` to widen the per-layer
search axis beyond the paper's binary dp/mp choice (the default, which
reproduces the paper exactly).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.accelerator.array import ArrayConfig
from repro.analysis.experiments import ExperimentRunner
from repro.analysis.report import format_series, format_table
from repro.analysis.scalability import run_scalability_study
from repro.analysis.topology_study import run_topology_study
from repro.analysis.trick_study import run_trick_study
from repro.core import kernels
from repro.core.hierarchical import DEFAULT_BATCH_SIZE
from repro.core.parallelism import DEFAULT_SPACE, StrategySpace
from repro.core.strategies import registered_strategies
from repro.core.tensors import ScalingMode
from repro.nn.model_zoo import all_model_builders, get_model
from repro.sim.backend import DEFAULT_SIM_ENGINE, SIM_ENGINES


def _add_platform_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="training batch size (default: %(default)s, the paper's setting)",
    )
    parser.add_argument(
        "--accelerators",
        type=int,
        default=16,
        help="number of accelerators in the array; must be a power of two "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--scaling-mode",
        choices=[mode.value for mode in ScalingMode],
        default=ScalingMode.PARALLELISM_AWARE.value,
        help="how tensor amounts shrink at deeper hierarchy levels "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--strategies",
        type=StrategySpace.parse,
        default=DEFAULT_SPACE,
        metavar="LIST",
        help="comma-separated per-layer strategy space searched at every "
        "level, e.g. dp,mp,pp (default: dp,mp, the paper's axis; see "
        "'hypar strategies')",
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    _add_platform_options(parser)
    _add_backend_option(parser)
    _add_cost_model_option(parser)


def _add_cost_model_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cost-model",
        default="analytic",
        metavar="SPEC",
        help="where the Table-1/2 cost numbers come from: 'analytic' (the "
        "paper's formulas) or 'profiled:<pack>' with a shipped profile "
        "pack name or a path to a hypar-profile/v1 JSON (see "
        "repro.core.costmodel; default: %(default)s)",
    )


def _add_sim_engine_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sim-engine",
        choices=SIM_ENGINES,
        default=DEFAULT_SIM_ENGINE,
        help="step-time engine: 'analytic' (the paper's closed-form link "
        "model) or 'network' (contention-aware discrete-event simulation "
        "of the physical links; see repro.sim.network; "
        "default: %(default)s)",
    )


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=kernels.VALID_BACKENDS,
        default=None,
        help="cost-table kernel backend; 'compiled' uses the optional numba "
        "kernels (chain DP, DAG cut-vertex DP and batched scorers) when "
        "installed and silently falls back to the bit-identical NumPy path "
        "otherwise; 'compiled-parallel' additionally scores candidates "
        "across threads with numba prange (default: the process default, "
        "numpy)",
    )


def _build_runner(args: argparse.Namespace, include_trick: bool = False) -> ExperimentRunner:
    array = ArrayConfig(num_accelerators=args.accelerators)
    return ExperimentRunner(
        array=array,
        batch_size=args.batch_size,
        scaling_mode=args.scaling_mode,
        include_trick=include_trick,
        strategies=getattr(args, "strategies", None),
        cost_model=getattr(args, "cost_model", "analytic"),
    )


def _model_as_dict(model) -> dict:
    """JSON-ready description of one model: per-layer table plus edge list."""
    return {
        "name": model.name,
        "input_shape": [
            model.input_shape.height,
            model.input_shape.width,
            model.input_shape.channels,
        ],
        "is_chain": model.is_chain,
        "layers": [
            {
                "index": layer.index,
                "name": layer.name,
                "type": str(layer.layer_type),
                "input_shape": str(layer.input_shape),
                "output_shape": str(layer.output_shape),
                "weights": layer.weight_count,
                "macs_per_sample": layer.macs_per_sample,
                "inputs": list(layer.inputs),
                "merge": str(layer.merge) if layer.is_merge else None,
            }
            for layer in model
        ],
        "edges": [[source, destination] for source, destination in model.edges],
        "total_weights": model.total_weights,
    }


def _format_model_edges(model) -> str:
    if model.is_chain:
        return "edges: chain"
    pairs = " ".join(f"{source}->{destination}" for source, destination in model.edges)
    return f"edges: {pairs}"


def _print_model_table(model) -> None:
    print(model.summary())
    print(f"  {_format_model_edges(model)}")


def _cmd_models(args: argparse.Namespace) -> int:
    if args.layers is not None and not args.models:
        print(
            "error: --layers requires model names (e.g. hypar models gpt_s --layers 96)",
            file=sys.stderr,
        )
        return 2
    if args.models:
        try:
            models = [get_model(name, layers=args.layers) for name in args.models]
        except (KeyError, ValueError) as error:
            # KeyError reprs with quotes around the message; unwrap it.
            message = error.args[0] if error.args else str(error)
            print(f"error: {message}", file=sys.stderr)
            return 2
    else:
        models = [builder() for builder in all_model_builders().values()]

    if args.format == "json":
        import json

        print(json.dumps([_model_as_dict(model) for model in models], indent=2))
        return 0

    if args.models:
        # Detailed per-layer shape/weight/MACs table plus the edge list.
        for model in models:
            _print_model_table(model)
        return 0
    for model in models:
        graph_note = "" if model.is_chain else f", {model.num_edges} edges (DAG)"
        print(
            f"{model.name:<10s} {model.num_weighted_layers:>3d} weighted layers "
            f"({model.num_conv_layers} conv, {model.num_fc_layers} fc), "
            f"{model.total_weights:,d} weights{graph_note}"
        )
    return 0


def _cmd_strategies(_: argparse.Namespace) -> int:
    print("registered per-layer parallelism strategies:")
    for spec in registered_strategies():
        descent = {
            "batch": "halves the batch fraction",
            "weight": "halves the weight fraction",
            "none": "stage-local (halves neither)",
        }[spec.halves]
        print(f"  {spec.short}  {spec.parallelism.name.lower():<9s} {descent}")
        print(f"      {spec.description}")
    print(
        "\npass a comma-separated subset via --strategies (e.g. "
        "--strategies dp,mp,pp) to widen the search space"
    )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    runner = _build_runner(args)
    result = runner.optimized_parallelism(model)
    print(result.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runner = _build_runner(args, include_trick=args.include_trick)
    models = [get_model(name) for name in args.models] if args.models else None
    table = runner.run(models)
    print(table.format())
    return 0


def _write_study_rows(args: argparse.Namespace, name: str, rows) -> None:
    """Honour a study command's ``--out DIR`` via the shared writers."""
    if getattr(args, "out", None):
        from repro.analysis.report import write_study_artifacts

        paths = write_study_artifacts(name, rows, args.out)
        print(f"artifacts: {paths['json']} {paths['csv']}")


def _cmd_scalability(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    sizes = [int(size) for size in args.sizes.split(",")]
    study = run_scalability_study(
        model=model,
        array_sizes=sizes,
        batch_size=args.batch_size,
        scaling_mode=args.scaling_mode,
        strategies=args.strategies,
    )
    rows = study.as_rows()
    print(
        format_series(
            f"Figure 11: performance gain of HyPar on {model.name} (vs 1 accelerator)",
            [row["num_accelerators"] for row in rows],
            [row["hypar_gain"] for row in rows],
        )
    )
    print(
        format_series(
            "Figure 11: performance gain of Data Parallelism (vs 1 accelerator)",
            [row["num_accelerators"] for row in rows],
            [row["dp_gain"] for row in rows],
        )
    )
    print(
        format_series(
            "Figure 11: total communication of HyPar (GB/step)",
            [row["num_accelerators"] for row in rows],
            [row["hypar_comm_gb"] for row in rows],
        )
    )
    print(
        format_series(
            "Figure 11: total communication of Data Parallelism (GB/step)",
            [row["num_accelerators"] for row in rows],
            [row["dp_comm_gb"] for row in rows],
        )
    )
    _write_study_rows(args, "scalability", rows)
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    models = [get_model(name) for name in args.models] if args.models else None
    study = run_topology_study(
        models=models,
        array=ArrayConfig(num_accelerators=args.accelerators),
        batch_size=args.batch_size,
        scaling_mode=args.scaling_mode,
        strategies=args.strategies,
    )
    rows = {
        row["model"]: {"Torus": row["torus"], "H Tree": row["h_tree"]}
        for row in study.as_rows()
    }
    print(
        format_table(
            "Figure 12: normalized performance of torus and H-tree topology",
            rows,
            ["Torus", "H Tree"],
        )
    )
    _write_study_rows(args, "topology", study.as_rows())
    return 0


def _cmd_trick(args: argparse.Namespace) -> int:
    study = run_trick_study(
        scaling_mode=args.scaling_mode, strategies=args.strategies
    )
    rows = {
        row["config"]: {
            "Performance": row["performance"],
            "Energy Efficiency": row["energy_efficiency"],
        }
        for row in study.as_rows()
    }
    print(
        format_table(
            'Figure 13: HyPar versus "one weird trick"',
            rows,
            ["Performance", "Energy Efficiency"],
        )
    )
    _write_study_rows(args, "trick", study.as_rows())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import HYPAR, PRESETS, SweepEngine, load_spec, run_sweep

    if args.list:
        print("sweep presets:")
        for name in sorted(PRESETS):
            print(f"  {name:<8s} {PRESETS[name].describe()}")
        return 0
    if not args.spec:
        print("error: a spec (preset name or .json path) is required", file=sys.stderr)
        return 2

    spec = load_spec(args.spec)
    if args.cost_model != "analytic":
        # The flag overrides the spec's cost-model axis wholesale: the
        # whole grid runs under the named provider.
        import dataclasses

        spec = dataclasses.replace(spec, cost_models=(args.cost_model,))
    if args.sim_engine != "analytic":
        # Likewise for the engine axis: the whole grid runs through the
        # network simulator.
        import dataclasses

        spec = dataclasses.replace(spec, sim_engines=(args.sim_engine,))
    print(spec.describe())
    # The backend is passed explicitly (not just set as the process
    # default) so spawn-started workers adopt it too.
    with SweepEngine(workers=args.workers, backend=args.backend) as engine:
        result = run_sweep(spec, engine=engine)

    header = f"{'point':<52s} {'speedup':>9s} {'energy':>9s} {'comm GB':>9s}"
    print(header)
    for record in result.records:
        if len(record.metrics) > 1:
            speedup = f"{record.speedup():9.3f}"
            energy = f"{record.energy_efficiency():9.3f}"
            comm = f"{record.metrics[HYPAR].communication_gb:9.3f}"
        else:
            metrics = next(iter(record.metrics.values()))
            speedup = f"{'-':>9s}"
            energy = f"{'-':>9s}"
            comm = f"{metrics.communication_gb:9.3f}"
        print(f"{record.point.label():<52s} {speedup} {energy} {comm}")

    if args.out:
        paths = result.write_artifacts(args.out)
        print(f"artifacts: {paths['json']} {paths['csv']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    fault_plan = None
    if args.fault_preset:
        from repro.resilience.faults import FaultPlan

        fault_plan = FaultPlan.preset(args.fault_preset, seed=args.fault_seed)
    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        log_requests=args.log_requests,
        request_timeout=args.request_timeout,
        fault_plan=fault_plan,
        cost_model=args.cost_model,
    )


def _cmd_replan(args: argparse.Namespace) -> int:
    from repro.resilience.replan import ReplanConfig, run_replan
    from repro.resilience.traces import AvailabilityTrace, synthesize_trace

    if args.trace:
        trace = AvailabilityTrace.load(args.trace, num_nodes=args.nodes)
    else:
        trace = synthesize_trace(
            args.preset, num_nodes=args.nodes, seed=args.seed, num_events=args.events
        )
    if args.emit_trace:
        trace.save(args.emit_trace)
        print(f"trace: {args.emit_trace}")
    config = ReplanConfig(
        model=args.model,
        batch_size=args.batch_size,
        policy=args.policy,
        scaling_mode=args.scaling_mode,
        horizon_steps=args.horizon_steps,
        cost_model=args.cost_model,
    )
    report = run_replan(trace, config)
    print(report.describe())
    if args.out:
        paths = report.write_artifacts(args.out)
        print(f"artifacts: {paths['json']} {paths['csv']}")
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    from repro.core.placement import TensorPlacement, placement_summary

    model = get_model(args.model)
    runner = _build_runner(args)
    result = runner.optimized_parallelism(model)
    placement = TensorPlacement(model, result.assignment)
    placement.validate()
    print(placement_summary(placement, args.batch_size))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import TraceBuilder

    model = get_model(args.model)
    runner = _build_runner(args)
    result = runner.optimized_parallelism(model)
    trace = TraceBuilder(scaling_mode=ScalingMode.parse(args.scaling_mode)).build(
        model, result.assignment, args.batch_size
    )
    print(
        f"{model.name}: {len(trace.transfers)} transfers, "
        f"{trace.total_bytes / 1e9:.3f} GB per training step"
    )
    print("by phase:")
    for phase, volume in trace.bytes_by_phase().items():
        print(f"  {phase:<10s} {volume / 1e9:10.3f} GB")
    print("by hierarchy level:")
    for level, volume in sorted(trace.bytes_by_level().items()):
        print(f"  H{level + 1:<9d} {volume / 1e9:10.3f} GB")
    print("by layer:")
    for layer, volume in trace.bytes_by_layer().items():
        print(f"  {layer:<10s} {volume / 1e9:10.3f} GB")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.baselines import data_parallelism, model_parallelism
    from repro.interconnect import HTreeTopology, TorusTopology
    from repro.sim.api import SimulationSpec
    from repro.sim.api import simulate as run_simulation
    from repro.sim.training import PHASES

    model = get_model(args.model)
    array = ArrayConfig(num_accelerators=args.accelerators)
    topology = None
    if args.accelerators > 1:
        topology_type = {"htree": HTreeTopology, "torus": TorusTopology}[args.topology]
        topology = topology_type(args.accelerators, array.link_bandwidth_bytes)

    assignment = None
    strategy_name = None
    if args.strategy == "dp":
        assignment = data_parallelism(model, array.num_levels)
        strategy_name = "Data Parallelism"
    elif args.strategy == "mp":
        assignment = model_parallelism(model, array.num_levels)
        strategy_name = "Model Parallelism"

    spec = SimulationSpec(
        batch_size=args.batch_size,
        array=array,
        topology=topology,
        scaling_mode=args.scaling_mode,
        strategies=args.strategies,
        sim_engine=args.sim_engine,
    )
    result = run_simulation(model, assignment, spec, strategy_name=strategy_name)
    report = result.report
    print(
        f"{report.model_name} / {report.strategy_name} on {report.topology_name} "
        f"({report.num_accelerators} accelerators, batch {report.batch_size}, "
        f"{result.sim_engine} engine)"
    )
    if result.assignment is not None:
        levels = " | ".join(str(level) for level in result.assignment.levels)
        print(f"  levels:        {levels}")
    print(f"  step time:     {report.step_seconds * 1e3:.3f} ms")
    print(f"  energy:        {report.energy_joules:.3f} J")
    print(f"  communication: {report.communication_gb:.3f} GB")
    for phase in PHASES:
        breakdown = report.phase_seconds[phase]
        print(
            f"  {phase + ':':<10s}     compute {breakdown.compute_seconds * 1e3:.3f} ms, "
            f"link busy {breakdown.communication_seconds * 1e3:.3f} ms"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="hypar",
        description="HyPar: hybrid parallelism for a DNN accelerator array "
        "(HPCA 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    models_parser = subparsers.add_parser(
        "models",
        help="list the evaluation networks (pass names for the per-layer "
        "shape/weight/MACs table plus the edge list)",
    )
    models_parser.add_argument(
        "models",
        nargs="*",
        help="network names; with none given, summarise the whole zoo",
    )
    models_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: %(default)s)",
    )
    models_parser.add_argument(
        "--layers",
        type=int,
        default=None,
        metavar="N",
        help="block depth for parameterized models (gpt_s, bert_s); "
        "e.g. 'hypar models gpt_s --layers 96'",
    )
    models_parser.set_defaults(handler=_cmd_models)

    strategies_parser = subparsers.add_parser(
        "strategies", help="list the registered per-layer parallelism strategies"
    )
    strategies_parser.set_defaults(handler=_cmd_strategies)

    partition_parser = subparsers.add_parser(
        "partition", help="search the hybrid parallelism for one network (Figure 5)"
    )
    partition_parser.add_argument("model", help="network name, e.g. AlexNet or VGG-A")
    _add_common_options(partition_parser)
    partition_parser.set_defaults(handler=_cmd_partition)

    compare_parser = subparsers.add_parser(
        "compare", help="simulate MP / DP / HyPar for a set of networks (Figures 6-8)"
    )
    compare_parser.add_argument(
        "models", nargs="*", help="network names (default: all ten evaluation networks)"
    )
    compare_parser.add_argument(
        "--include-trick",
        action="store_true",
        help='also simulate "one weird trick"',
    )
    _add_common_options(compare_parser)
    compare_parser.set_defaults(handler=_cmd_compare)

    scalability_parser = subparsers.add_parser(
        "scalability", help="sweep the array size (Figure 11)"
    )
    scalability_parser.add_argument("--model", default="VGG-A")
    scalability_parser.add_argument(
        "--sizes", default="1,2,4,8,16,32,64", help="comma-separated accelerator counts"
    )
    scalability_parser.add_argument(
        "--out", metavar="DIR", help="write the study rows as JSON/CSV artifacts"
    )
    _add_common_options(scalability_parser)
    scalability_parser.set_defaults(handler=_cmd_scalability)

    topology_parser = subparsers.add_parser(
        "topology", help="compare H-tree and torus interconnects (Figure 12)"
    )
    topology_parser.add_argument("models", nargs="*")
    topology_parser.add_argument(
        "--out", metavar="DIR", help="write the study rows as JSON/CSV artifacts"
    )
    _add_common_options(topology_parser)
    topology_parser.set_defaults(handler=_cmd_topology)

    trick_parser = subparsers.add_parser(
        "trick", help='compare HyPar with "one weird trick" (Figure 13)'
    )
    trick_parser.add_argument(
        "--out", metavar="DIR", help="write the study rows as JSON/CSV artifacts"
    )
    _add_common_options(trick_parser)
    trick_parser.set_defaults(handler=_cmd_trick)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a declarative sweep grid (spec JSON or preset) through the "
        "cached, optionally process-parallel engine",
    )
    sweep_parser.add_argument(
        "spec",
        nargs="?",
        help="preset name (see --list) or path to a sweep spec .json",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default: %(default)s, i.e. serial; results "
        "are byte-identical for any worker count)",
    )
    sweep_parser.add_argument(
        "--out",
        metavar="DIR",
        help="directory to write the <spec>.json / <spec>.csv artifacts to",
    )
    sweep_parser.add_argument(
        "--list", action="store_true", help="list the built-in sweep presets"
    )
    _add_backend_option(sweep_parser)
    _add_cost_model_option(sweep_parser)
    _add_sim_engine_option(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived partition service (HTTP daemon with a warm "
        "cache; the other commands remain the one-shot batch path)",
    )
    # Literal defaults mirror repro.service (asserted equal by the CLI
    # tests) so the service package only imports when `serve` runs.
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: %(default)s, loopback only)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8100,
        help="TCP port (default: %(default)s; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent worker processes behind POST /sweep "
        "(default: %(default)s, i.e. in-process serial)",
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="LRU response-cache capacity (default: %(default)s entries)",
    )
    serve_parser.add_argument(
        "--log-requests",
        action="store_true",
        help="log every request line to stderr",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-request server-side deadline in seconds; overruns answer "
        "504 and close the connection (default: unbounded)",
    )
    serve_parser.add_argument(
        "--fault-preset",
        choices=("worker-kill", "connection-drop", "connection-delay", "cache-poison", "all"),
        default=None,
        help="install a deterministic fault-injection plan (chaos testing; "
        "see repro.resilience.faults)",
    )
    serve_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for --fault-preset schedules (default: %(default)s)",
    )
    _add_backend_option(serve_parser)
    _add_cost_model_option(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    replan_parser = subparsers.add_parser(
        "replan",
        help="replay an availability trace: elastic re-partitioning under "
        "node churn with migration costing (see DESIGN.md)",
    )
    replan_parser.add_argument(
        "model",
        nargs="?",
        default="Lenet-c",
        help="network name (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="availability trace JSONL to replay (default: synthesize --preset)",
    )
    replan_parser.add_argument(
        "--preset",
        choices=("spot", "rack", "diurnal"),
        default="spot",
        help="synthetic trace generator when no --trace is given "
        "(default: %(default)s)",
    )
    replan_parser.add_argument(
        "--seed", type=int, default=7,
        help="trace generator seed (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--events", type=int, default=10,
        help="synthesized membership events (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--nodes", type=int, default=16,
        help="fleet size the trace runs against (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--policy",
        choices=("every-event", "hysteresis"),
        default="every-event",
        help="re-planning policy (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--horizon-steps",
        type=int,
        default=500,
        help="training steps the hysteresis policy amortizes a voluntary "
        "migration over (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="training batch size (default: %(default)s)",
    )
    replan_parser.add_argument(
        "--scaling-mode",
        choices=[mode.value for mode in ScalingMode],
        default=ScalingMode.PARALLELISM_AWARE.value,
        help="tensor scaling at deeper hierarchy levels (default: %(default)s)",
    )
    _add_cost_model_option(replan_parser)
    replan_parser.add_argument(
        "--out", metavar="DIR", help="write the replan.json / replan.csv artifacts"
    )
    replan_parser.add_argument(
        "--emit-trace",
        metavar="PATH",
        help="also save the (synthesized or loaded) trace as JSONL",
    )
    replan_parser.set_defaults(handler=_cmd_replan)

    placement_parser = subparsers.add_parser(
        "placement", help="show per-accelerator tensor shards and memory footprints"
    )
    placement_parser.add_argument("model", help="network name, e.g. AlexNet or VGG-A")
    _add_common_options(placement_parser)
    placement_parser.set_defaults(handler=_cmd_placement)

    trace_parser = subparsers.add_parser(
        "trace", help="summarise the communication trace of one training step"
    )
    trace_parser.add_argument("model", help="network name, e.g. AlexNet or VGG-A")
    _add_common_options(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="simulate one training step through the unified entry point "
        "(--sim-engine network runs the contention-aware discrete-event "
        "simulator)",
    )
    simulate_parser.add_argument("model", help="network name, e.g. AlexNet or VGG-A")
    simulate_parser.add_argument(
        "--strategy",
        choices=("hypar", "dp", "mp"),
        default="hypar",
        help="what to simulate: HyPar's searched assignment or a uniform "
        "baseline (default: %(default)s)",
    )
    simulate_parser.add_argument(
        "--topology",
        choices=("htree", "torus"),
        default="htree",
        help="interconnect joining the accelerators (default: %(default)s)",
    )
    _add_platform_options(simulate_parser)
    _add_sim_engine_option(simulate_parser)
    _add_backend_option(simulate_parser)
    simulate_parser.set_defaults(handler=_cmd_simulate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``hypar`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None) is not None:
        # The process-wide default: every table compiled without an
        # explicit backend= follows it, and SweepEngine ships it to its
        # workers through the pool initializer (so spawn-started workers
        # match fork-started ones).  Explicit per-request backends win.
        kernels.set_default_backend(args.backend)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
