"""Resilience layer: availability traces, elastic re-planning, fault injection.

The paper assumes a fixed, fully available ``2**H`` array; this package
replays node churn against it (:mod:`~repro.resilience.traces`,
:mod:`~repro.resilience.replan`) and injects deterministic faults into the
sweep/service stack (:mod:`~repro.resilience.faults`) to exercise the
degradation paths.  See the "Resilience layer" section of DESIGN.md.
"""

from repro.resilience.faults import (
    PRESET_NAMES as FAULT_PRESET_NAMES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    faulty_map,
    faulty_sweep_task,
)
from repro.resilience.replan import (
    POLICIES,
    ElasticReplanner,
    MigrationCost,
    ReplanConfig,
    ReplanReport,
    run_replan,
)
from repro.resilience.traces import (
    EVENT_KINDS,
    PRESET_NAMES as TRACE_PRESET_NAMES,
    AvailabilityTrace,
    TraceEvent,
    synthesize_trace,
)

__all__ = [
    "AvailabilityTrace",
    "ElasticReplanner",
    "EVENT_KINDS",
    "FAULT_PRESET_NAMES",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "MigrationCost",
    "POLICIES",
    "ReplanConfig",
    "ReplanReport",
    "TRACE_PRESET_NAMES",
    "TraceEvent",
    "faulty_map",
    "faulty_sweep_task",
    "run_replan",
    "synthesize_trace",
]
