"""Deterministic fault injection for the sweep engine and the service.

A :class:`FaultPlan` is a frozen, seeded description of *which* faults fire
*when* -- task indices whose pool worker dies mid-map, request ordinals
whose connection is severed or delayed, cache-store ordinals whose entry
is corrupted, compute ordinals that stall or raise.  Plans are plain data:
the same plan against the same workload produces the same fault sequence,
so chaos tests are as reproducible as the golden tests.

A :class:`FaultInjector` is the stateful (thread-safe) counterpart one
server or test installs; the service and HTTP layers consult it at their
seams (see ``repro.service.app`` / ``repro.service.server``) and the
wrapped sweep task functions below kill their own worker process when
scheduled to.  The kill only happens inside a *pool worker*
(``multiprocessing.parent_process() is not None``); when the engine's
serial fallback reruns the same wrapped function in the parent process it
completes normally -- which is exactly what makes the degraded results
byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
import signal
import threading
from typing import Sequence

#: Named plans ``FaultPlan.preset`` understands (plus ``all`` = union).
PRESET_NAMES = ("worker-kill", "connection-drop", "connection-delay", "cache-poison", "all")


class FaultInjected(RuntimeError):
    """Raised by an injected compute fault (never by real code paths)."""


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults to inject.

    All schedules are zero-based ordinals counted by the injector:
    ``kill_tasks`` against sweep task indices, ``drop_requests`` /
    ``delay_requests`` against HTTP requests in arrival order,
    ``poison_stores`` against result-cache stores, ``compute_errors`` /
    ``compute_delays`` against cache-miss computations.
    """

    seed: int = 0
    kill_tasks: tuple[int, ...] = ()
    drop_requests: tuple[int, ...] = ()
    delay_requests: tuple[int, ...] = ()
    delay_seconds: float = 0.05
    poison_stores: tuple[int, ...] = ()
    compute_errors: tuple[int, ...] = ()
    compute_delays: tuple[int, ...] = ()
    compute_delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        for field in (
            "kill_tasks",
            "drop_requests",
            "delay_requests",
            "poison_stores",
            "compute_errors",
            "compute_delays",
        ):
            values = tuple(getattr(self, field))
            for value in values:
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    raise ValueError(
                        f"{field} entries must be integers >= 0, got {value!r}"
                    )
            object.__setattr__(self, field, tuple(sorted(set(values))))
        if self.delay_seconds < 0 or self.compute_delay_seconds < 0:
            raise ValueError("fault delays must be >= 0")

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultPlan":
        """One of the named chaos scenarios (deterministic given ``seed``)."""
        if name == "worker-kill":
            return cls(seed=seed, kill_tasks=(seed % 2,))
        if name == "connection-drop":
            return cls(seed=seed, drop_requests=(0,))
        if name == "connection-delay":
            return cls(seed=seed, delay_requests=(0,), delay_seconds=0.05)
        if name == "cache-poison":
            return cls(seed=seed, poison_stores=(0,))
        if name == "all":
            return cls(
                seed=seed,
                kill_tasks=(seed % 2,),
                drop_requests=(0,),
                delay_requests=(1,),
                delay_seconds=0.05,
                poison_stores=(0,),
            )
        raise ValueError(
            f"unknown fault preset {name!r}; known: {', '.join(PRESET_NAMES)}"
        )

    def describe(self) -> str:
        parts = []
        if self.kill_tasks:
            parts.append(f"kill tasks {list(self.kill_tasks)}")
        if self.drop_requests:
            parts.append(f"drop requests {list(self.drop_requests)}")
        if self.delay_requests:
            parts.append(
                f"delay requests {list(self.delay_requests)} by {self.delay_seconds}s"
            )
        if self.poison_stores:
            parts.append(f"poison stores {list(self.poison_stores)}")
        if self.compute_errors:
            parts.append(f"fail computes {list(self.compute_errors)}")
        if self.compute_delays:
            parts.append(
                f"stall computes {list(self.compute_delays)} by {self.compute_delay_seconds}s"
            )
        return "; ".join(parts) if parts else "no faults"


class FaultInjector:
    """Thread-safe runtime counterpart of a :class:`FaultPlan`.

    The service and server consult it at their fault seams; it keeps both
    the ordinal counters and the tally of faults actually fired (surfaced
    under ``/healthz`` as ``faults``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._requests = 0
        self._computes = 0
        self._stores = 0
        self.dropped = 0
        self.delayed = 0
        self.poisoned = 0
        self.compute_errors = 0
        self.compute_delays = 0

    # -- HTTP connection seam ------------------------------------------

    def connection_action(self) -> str | None:
        """``"drop"``, ``"delay"`` or ``None`` for the next request."""
        with self._lock:
            ordinal = self._requests
            self._requests += 1
            if ordinal in self.plan.drop_requests:
                self.dropped += 1
                return "drop"
            if ordinal in self.plan.delay_requests:
                self.delayed += 1
                return "delay"
        return None

    # -- compute seam (service cache misses) ---------------------------

    def on_compute(self) -> float:
        """Delay (seconds) to apply; raises :class:`FaultInjected` when scheduled.

        Called by the service at the start of every cache-miss computation.
        """
        with self._lock:
            ordinal = self._computes
            self._computes += 1
            delay = 0.0
            if ordinal in self.plan.compute_delays:
                self.compute_delays += 1
                delay = self.plan.compute_delay_seconds
            if ordinal in self.plan.compute_errors:
                self.compute_errors += 1
                raise FaultInjected(
                    f"injected compute failure (ordinal {ordinal})"
                )
        return delay

    # -- cache seam -----------------------------------------------------

    def note_store(self, cache, key: str) -> None:
        """Corrupt the freshly stored entry when the schedule says so."""
        with self._lock:
            ordinal = self._stores
            self._stores += 1
            scheduled = ordinal in self.plan.poison_stores
        if scheduled and cache.poison(key):
            with self._lock:
                self.poisoned += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "plan": self.plan.describe(),
                "dropped": self.dropped,
                "delayed": self.delayed,
                "poisoned": self.poisoned,
                "compute_errors": self.compute_errors,
                "compute_delays": self.compute_delays,
            }


# ----------------------------------------------------------------------
# Worker-kill wrappers for the sweep engine.
# ----------------------------------------------------------------------


def _kill_current_worker() -> None:
    # SIGKILL, not an exception: the point is an abrupt worker death the
    # executor can only observe as a broken pool.
    os.kill(os.getpid(), signal.SIGKILL)


def _faulty_task(item, fn, kill: frozenset):
    """Enumerated task wrapper: dies in a pool worker when scheduled."""
    index, task = item
    if index in kill and multiprocessing.parent_process() is not None:
        _kill_current_worker()
    return fn(task)


def faulty_map(engine, fn, tasks: Sequence, plan: FaultPlan) -> list:
    """``engine.map(fn, tasks)`` with the plan's worker kills injected.

    Scheduled task indices SIGKILL their pool worker; the engine's serial
    fallback then reruns every task in the parent process (where the
    wrapper never kills), so the returned results are byte-identical to a
    fault-free serial map.
    """
    wrapped = functools.partial(_faulty_task, fn=fn, kill=frozenset(plan.kill_tasks))
    return engine.map(wrapped, list(enumerate(tasks)))


def _faulty_evaluate_point(point, kill: frozenset):
    """Sweep task wrapper keyed by the point's own grid index."""
    if point.index in kill and multiprocessing.parent_process() is not None:
        _kill_current_worker()
    from repro.sweep.runner import evaluate_point

    return evaluate_point(point)


def faulty_sweep_task(plan: FaultPlan):
    """A drop-in replacement for ``evaluate_point`` honoring ``plan``."""
    return functools.partial(
        _faulty_evaluate_point, kill=frozenset(plan.kill_tasks)
    )
