"""Elastic re-planning of the hierarchical partition under node churn.

The paper's array is fixed at ``2**H`` accelerators; this module replays a
node-availability trace against it.  At every membership event the
replanner decides whether to keep the current plan, *remap* (refill holes
left by departed nodes without changing the assignment), or *re-plan*
(re-run the hierarchical search on the largest power-of-two sub-array the
survivors support).  Re-sharding is not free: the bytes each node must
fetch to take over its new shard -- weights plus optimizer state for the
weight interval it did not already hold, resident activations for the
batch interval it did not already hold -- are valued through the existing
Table-2 transfer machinery (:class:`~repro.core.communication
.CommunicationModel.bytes_per_element`) and divided by the array's link
bandwidth to get a migration stall.

Two policies are compared:

* ``every-event`` re-plans at every membership change (the Varuna-style
  "always reconfigure" baseline);
* ``hysteresis`` re-plans when *forced* (a used node left) but adopts a
  voluntary grow-replan only when the projected step-time gain over
  ``horizon_steps`` steps exceeds the migration stall.

The timeline is summarized as utilization-over-time segments plus one
decision record per event; :meth:`ReplanReport.to_payload` renders it all
deterministically (see :func:`repro.sweep.artifacts.payload_to_json`), so
serial and process-parallel churn studies and the ``/replan`` endpoint are
byte-identical and golden-pinnable.  Every hierarchical solve of a run
shares one :class:`~repro.core.hierarchical.HierarchicalWarmStart`, so
shrinking and regrowing the array reuses DP prefix state instead of
re-solving from scratch.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.accelerator.array import ArrayConfig
from repro.core.hierarchical import (
    DEFAULT_BATCH_SIZE,
    HierarchicalPartitioner,
    HierarchicalWarmStart,
)
from repro.core.placement import Interval, TensorPlacement
from repro.core.tensors import ScalingMode
from repro.core.parallelism import StrategySpace
from repro.core.costmodel import ANALYTIC_SPEC, canonical_cost_model
from repro.nn.model_zoo import canonical_model_name
from repro.sweep import artifacts
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.spec import TOPOLOGY_NAMES, SweepPoint
from repro.resilience.traces import AvailabilityTrace

#: Re-planning policies ``hypar replan --policy`` accepts.
POLICIES = ("every-event", "hysteresis")

#: Decision labels recorded per trace event.
ACTIONS = ("replan", "remap", "none", "down")


@dataclasses.dataclass(frozen=True)
class ReplanConfig:
    """One elastic re-planning scenario (canonicalized on construction)."""

    model: str = "Lenet-c"
    batch_size: int = DEFAULT_BATCH_SIZE
    policy: str = "every-event"
    topology: str = "htree"
    scaling_mode: str = ScalingMode.PARALLELISM_AWARE.value
    strategies: str = "dp,mp"
    #: Steps the hysteresis policy amortizes a migration stall over.
    horizon_steps: int = 500
    #: Cost-model spec (``"analytic"`` / ``"profiled:<pack>"``) every
    #: per-depth solve and migration pricing evaluates under.
    cost_model: str = ANALYTIC_SPEC

    def __post_init__(self) -> None:
        object.__setattr__(self, "model", canonical_model_name(self.model))
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown replan policy {self.policy!r}; known: {', '.join(POLICIES)}"
            )
        if self.topology not in TOPOLOGY_NAMES:
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {', '.join(TOPOLOGY_NAMES)}"
            )
        object.__setattr__(
            self, "scaling_mode", ScalingMode.parse(self.scaling_mode).value
        )
        object.__setattr__(
            self, "strategies", StrategySpace.parse(self.strategies).describe()
        )
        if self.horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {self.horizon_steps}")
        object.__setattr__(self, "cost_model", canonical_cost_model(self.cost_model))

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        # The analytic default serializes exactly as it always has (the
        # replan golden pins the historical seven-key config payload);
        # only calibrated scenarios carry the extra field.
        if payload["cost_model"] == ANALYTIC_SPEC:
            del payload["cost_model"]
        return payload


@dataclasses.dataclass(frozen=True)
class MigrationCost:
    """Bytes a plan transition must move, split by tensor class."""

    weight_bytes: float
    feature_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.feature_bytes

    def seconds(self, bandwidth_bytes: float) -> float:
        """Stall time when every target node restores over its own link."""
        if self.total_bytes == 0.0:
            return 0.0
        return self.total_bytes / bandwidth_bytes


@dataclasses.dataclass(frozen=True)
class _Plan:
    """The running configuration between two trace events."""

    num_levels: int | None  # None when the fleet is fully down
    used: tuple[int, ...]  # node ids in slot order (len == 2**num_levels)
    assignment_levels: tuple[str, ...]
    step_seconds: float | None
    communication_gb: float | None
    placement: "TensorPlacement | None"

    @property
    def is_down(self) -> bool:
        return self.num_levels is None


def _capacity_levels(alive_count: int) -> int | None:
    """Hierarchy depth of the largest power-of-two sub-array available."""
    if alive_count < 1:
        return None
    return alive_count.bit_length() - 1


def _select_nodes(
    levels: int, alive: tuple[int, ...], old_used: tuple[int, ...]
) -> tuple[int, ...]:
    """Deterministic node-to-slot mapping for the next plan.

    Same capacity: survivors keep their exact slots and departed slots are
    refilled from the spare pool in id order (so unaffected shards move
    zero bytes).  Different capacity: survivors keep their relative slot
    order, then spares fill the remainder in id order.
    """
    count = 1 << levels
    alive_set = set(alive)
    if old_used and len(old_used) == count:
        spares = iter(node for node in alive if node not in set(old_used))
        return tuple(
            node if node in alive_set else next(spares) for node in old_used
        )
    keep = [node for node in old_used if node in alive_set][:count]
    spares = [node for node in alive if node not in set(keep)]
    return tuple((keep + spares)[:count])


class ElasticReplanner:
    """Replays an :class:`AvailabilityTrace` and emits a :class:`ReplanReport`."""

    def __init__(self, config: ReplanConfig) -> None:
        self.config = config
        self._array = ArrayConfig()
        # Per-run state, reset by :meth:`run`.
        self._warm: HierarchicalWarmStart | None = None
        self._solves: dict = {}

    # ------------------------------------------------------------------
    # Per-depth solves (shared within one run, warm-started across depths).
    # ------------------------------------------------------------------

    def _point(self, num_levels: int) -> SweepPoint:
        return SweepPoint.single(
            model=self.config.model,
            batch_size=self.config.batch_size,
            num_accelerators=1 << num_levels,
            topology=self.config.topology,
            scaling_mode=self.config.scaling_mode,
            strategies=self.config.strategies,
            cost_model=self.config.cost_model,
        )

    def _solve(self, num_levels: int) -> tuple[tuple[str, ...], float, float, "TensorPlacement | None"]:
        """(assignment levels, step seconds, communication GB, placement)."""
        cached = self._solves.get(num_levels)
        if cached is not None:
            return cached
        from repro.sweep.runner import HYPAR, _model_for, _simulator_for

        model = _model_for(self.config.model)
        if num_levels == 0:
            simulator = _simulator_for(self._point(0))
            report = simulator.simulate(
                model, None, self.config.batch_size, strategy_name="single"
            )
            solved = ((), report.step_seconds, report.communication_gb, None)
        else:
            point = self._point(num_levels)
            simulator = _simulator_for(point)
            partitioner = runtime_cached(
                (
                    "replan-partitioner",
                    point.num_accelerators,
                    point.scaling_mode,
                    point.strategies,
                    point.cost_model,
                ),
                lambda: HierarchicalPartitioner(
                    num_levels=num_levels,
                    communication_model=simulator.communication_model,
                    scaling_mode=point.scaling_mode,
                    strategies=simulator.strategies,
                ),
            )
            table = simulator.cost_table(model, self.config.batch_size)
            result = partitioner.partition(
                model, self.config.batch_size, table=table, warm=self._warm
            )
            report = simulator.simulate(
                model, result.assignment, self.config.batch_size, HYPAR, cost_table=table
            )
            placement = TensorPlacement(model, result.assignment)
            solved = (
                tuple(str(level) for level in result.assignment.levels),
                report.step_seconds,
                report.communication_gb,
                placement,
            )
        self._solves[num_levels] = solved
        return solved

    def _make_plan(
        self, num_levels: int | None, alive: tuple[int, ...], old_used: tuple[int, ...]
    ) -> _Plan:
        if num_levels is None:
            return _Plan(None, (), (), None, None, None)
        levels, step_seconds, communication_gb, placement = self._solve(num_levels)
        used = _select_nodes(num_levels, alive, old_used)
        return _Plan(num_levels, used, levels, step_seconds, communication_gb, placement)

    # ------------------------------------------------------------------
    # Migration costing through the Table-2 transfer machinery.
    # ------------------------------------------------------------------

    def _shard_intervals(
        self, plan: _Plan, slot: int, layer_index: int
    ) -> tuple[bool, Interval, Interval]:
        """(owned, batch interval, weight interval) of one slot and layer."""
        if plan.num_levels == 0:
            return True, Interval(), Interval()
        shard = plan.placement.shard(slot, layer_index)
        return shard.owned, shard.batch_interval, shard.weight_interval

    @staticmethod
    def _moved_fraction(new: Interval, old: "Interval | None") -> float:
        """Length of ``new`` not covered by ``old`` (dyadic intervals)."""
        if old is None:
            return new.length
        lower = max(new.start, old.start)
        upper = min(new.stop, old.stop)
        return new.length - max(0.0, upper - lower)

    def _migration(self, old: "_Plan | None", new: _Plan) -> MigrationCost:
        """Bytes every node of ``new`` must fetch that it did not hold.

        Weight shards count kernel plus optimizer (gradient-shaped) state
        -- twice the weight elements of the uncovered weight interval.
        Feature shards count the resident activations of the uncovered
        batch interval (batch rows x output elements), the same one-copy
        accounting as :meth:`TensorPlacement.memory_footprint`.  Elements
        convert to bytes through the communication model's Table-2 word
        size.  Nodes whose shard is unchanged contribute zero.
        """
        if new.is_down:
            return MigrationCost(0.0, 0.0)
        from repro.sweep.runner import _model_for, _simulator_for

        model = _model_for(self.config.model)
        bytes_per_element = _simulator_for(
            self._point(new.num_levels)
        ).communication_model.bytes_per_element
        old_slot_of: dict[int, int] = (
            {} if old is None or old.is_down else {node: slot for slot, node in enumerate(old.used)}
        )
        weight_elements = 0.0
        feature_elements = 0.0
        for slot, node in enumerate(new.used):
            old_slot = old_slot_of.get(node)
            for layer_index, layer in enumerate(model.layers):
                owned, batch_new, weight_new = self._shard_intervals(new, slot, layer_index)
                if not owned:
                    continue
                if old_slot is None:
                    batch_old: Interval | None = None
                    weight_old: Interval | None = None
                else:
                    old_owned, batch_old, weight_old = self._shard_intervals(
                        old, old_slot, layer_index
                    )
                    if not old_owned:
                        batch_old = weight_old = None
                moved_weight = self._moved_fraction(weight_new, weight_old)
                moved_batch = self._moved_fraction(batch_new, batch_old)
                weight_elements += 2.0 * layer.weight_count * moved_weight
                feature_elements += (
                    self.config.batch_size * layer.output_shape.elements * moved_batch
                )
        return MigrationCost(
            weight_bytes=weight_elements * bytes_per_element,
            feature_bytes=feature_elements * bytes_per_element,
        )

    def _migration_bandwidth(self, new: _Plan) -> float:
        """Aggregate restore bandwidth: one link per participating node."""
        return self._array.link_bandwidth_bytes * max(1, len(new.used))

    # ------------------------------------------------------------------
    # The timeline.
    # ------------------------------------------------------------------

    def run(self, trace: AvailabilityTrace) -> "ReplanReport":
        """Replay ``trace`` under the configured policy."""
        self._warm = HierarchicalWarmStart()
        self._solves = {}
        fleet = trace.num_nodes
        alive = tuple(range(fleet))
        plan = self._make_plan(_capacity_levels(fleet), alive, ())
        segments: list[dict] = []
        events: list[dict] = []
        t_previous = 0.0
        for event, alive in trace.replay():
            if event.t > t_previous:
                segments.append(self._segment(t_previous, event.t, fleet, plan))
            t_previous = event.t
            plan, record = self._decide(event, alive, plan)
            events.append(record)
        end = trace.end_time
        if end > t_previous or not segments:
            segments.append(self._segment(t_previous, max(end, t_previous), fleet, plan))
        return ReplanReport(
            config=self.config,
            trace_meta={
                "num_nodes": trace.num_nodes,
                "num_events": len(trace.events),
                "horizon": trace.end_time,
                "preset": trace.preset,
                "seed": trace.seed,
            },
            segments=tuple(segments),
            events=tuple(events),
            warm_stats=self._warm.stats(),
        )

    def _segment(self, t_start: float, t_end: float, fleet: int, plan: _Plan) -> dict:
        return {
            "t_start": t_start,
            "t_end": t_end,
            "used": len(plan.used),
            "num_levels": plan.num_levels,
            "assignment": list(plan.assignment_levels),
            "step_seconds": plan.step_seconds,
            "communication_gb": plan.communication_gb,
            "utilization": len(plan.used) / fleet,
        }

    def _decide(
        self, event, alive: tuple[int, ...], plan: _Plan
    ) -> tuple[_Plan, dict]:
        capacity = _capacity_levels(len(alive))
        policy = self.config.policy
        lost_used = sorted(set(plan.used) - set(alive))
        action = "none"
        migration = MigrationCost(0.0, 0.0)
        migration_seconds = 0.0
        projected_gain_seconds = None
        new_plan = plan

        if capacity is None:
            new_plan = self._make_plan(None, alive, plan.used)
            action = "down"
        elif plan.is_down:
            new_plan = self._make_plan(capacity, alive, ())
            action = "replan"
            migration = self._migration(None, new_plan)
            migration_seconds = migration.seconds(self._migration_bandwidth(new_plan))
        elif lost_used:
            if policy == "hysteresis" and capacity == plan.num_levels:
                # Keep the assignment; only the refilled slots restore state.
                used = _select_nodes(plan.num_levels, alive, plan.used)
                new_plan = dataclasses.replace(plan, used=used)
                action = "remap"
            else:
                new_plan = self._make_plan(capacity, alive, plan.used)
                action = "replan"
            migration = self._migration(plan, new_plan)
            migration_seconds = migration.seconds(self._migration_bandwidth(new_plan))
        elif capacity != plan.num_levels and capacity > (plan.num_levels or 0):
            candidate = self._make_plan(capacity, alive, plan.used)
            gain = (plan.step_seconds or 0.0) - (candidate.step_seconds or 0.0)
            candidate_migration = self._migration(plan, candidate)
            candidate_seconds = candidate_migration.seconds(
                self._migration_bandwidth(candidate)
            )
            projected_gain_seconds = gain * self.config.horizon_steps
            if policy == "every-event" or projected_gain_seconds > candidate_seconds:
                new_plan = candidate
                action = "replan"
                migration = candidate_migration
                migration_seconds = candidate_seconds
            else:
                action = "none"
        elif policy == "every-event":
            # Re-running the search reproduces the same plan; record the
            # no-op replan so the policies' decision counts are comparable.
            new_plan = self._make_plan(capacity, alive, plan.used)
            action = "replan"
            migration = self._migration(plan, new_plan)
            migration_seconds = migration.seconds(self._migration_bandwidth(new_plan))

        record = {
            "t": event.t,
            "event": event.event,
            "nodes": list(event.nodes),
            "alive": len(alive),
            "action": action,
            "num_levels": new_plan.num_levels,
            "used": len(new_plan.used),
            "migration_weight_gb": migration.weight_bytes / 1e9,
            "migration_feature_gb": migration.feature_bytes / 1e9,
            "migration_seconds": migration_seconds,
            "projected_gain_seconds": projected_gain_seconds,
        }
        return new_plan, record


@dataclasses.dataclass(frozen=True)
class ReplanReport:
    """The utilization-over-time outcome of one trace replay."""

    config: ReplanConfig
    trace_meta: Mapping
    segments: tuple[dict, ...]
    events: tuple[dict, ...]
    warm_stats: Mapping

    def totals(self) -> dict:
        duration = 0.0
        weighted_utilization = 0.0
        weighted_throughput = 0.0
        for segment in self.segments:
            dt = segment["t_end"] - segment["t_start"]
            duration += dt
            weighted_utilization += dt * segment["utilization"]
            if segment["step_seconds"]:
                weighted_throughput += dt * (
                    self.config.batch_size / segment["step_seconds"]
                )
        actions = {action: 0 for action in ACTIONS}
        migration_weight_gb = 0.0
        migration_feature_gb = 0.0
        migration_seconds = 0.0
        for event in self.events:
            actions[event["action"]] += 1
            migration_weight_gb += event["migration_weight_gb"]
            migration_feature_gb += event["migration_feature_gb"]
            migration_seconds += event["migration_seconds"]
        return {
            "duration_seconds": duration,
            "mean_utilization": weighted_utilization / duration if duration else 0.0,
            "effective_samples_per_second": (
                weighted_throughput / duration if duration else 0.0
            ),
            "replans": actions["replan"],
            "remaps": actions["remap"],
            "deferred": actions["none"],
            "downtime_events": actions["down"],
            "migration_weight_gb": migration_weight_gb,
            "migration_feature_gb": migration_feature_gb,
            "migration_gb": migration_weight_gb + migration_feature_gb,
            "migration_seconds": migration_seconds,
            "warm_start": dict(self.warm_stats),
        }

    def to_payload(self) -> dict:
        return {
            "config": self.config.to_payload(),
            "trace": dict(self.trace_meta),
            "segments": [dict(segment) for segment in self.segments],
            "events": [dict(event) for event in self.events],
            "totals": self.totals(),
        }

    def to_rows(self) -> list[dict]:
        """Flat per-segment rows (the CSV artifact)."""
        rows = []
        for segment in self.segments:
            row = {
                "model": self.config.model,
                "policy": self.config.policy,
                **{
                    key: segment[key]
                    for key in (
                        "t_start",
                        "t_end",
                        "used",
                        "num_levels",
                        "step_seconds",
                        "communication_gb",
                        "utilization",
                    )
                },
            }
            row["assignment"] = " | ".join(segment["assignment"])
            rows.append(row)
        return rows

    def write_artifacts(self, directory: str, name: str = "replan") -> dict[str, str]:
        """Write ``<name>.json`` and ``<name>.csv`` under ``directory``."""
        import os

        json_path = os.path.join(directory, f"{name}.json")
        csv_path = os.path.join(directory, f"{name}.csv")
        artifacts.write_json(json_path, self.to_payload())
        artifacts.write_csv(csv_path, self.to_rows())
        return {"json": json_path, "csv": csv_path}

    def describe(self) -> str:
        totals = self.totals()
        lines = [
            f"{self.config.model}: {self.config.policy} policy over "
            f"{self.trace_meta['num_events']} events on "
            f"{self.trace_meta['num_nodes']} nodes",
        ]
        for event in self.events:
            lines.append(
                f"  t={event['t']:10.3f} {event['event']:<5} "
                f"{str(event['nodes']):<14} alive={event['alive']:<3} "
                f"{event['action']:<6} used={event['used']:<3} "
                f"migration {event['migration_weight_gb'] + event['migration_feature_gb']:.4f} GB "
                f"({event['migration_seconds']:.3f} s)"
            )
        lines.append(
            f"  mean utilization {totals['mean_utilization']:.3f}, "
            f"effective {totals['effective_samples_per_second']:.1f} samples/s"
        )
        lines.append(
            f"  {totals['replans']} replans / {totals['remaps']} remaps / "
            f"{totals['deferred']} deferred; migration "
            f"{totals['migration_gb']:.4f} GB ({totals['migration_seconds']:.3f} s)"
        )
        warm = totals["warm_start"]
        lines.append(
            f"  warm-start DP: {warm['full_hits']} full hits, "
            f"{warm['reused_layers']} layers reused / {warm['solved_layers']} solved"
        )
        return "\n".join(lines)


def run_replan(trace: AvailabilityTrace, config: ReplanConfig) -> ReplanReport:
    """Convenience wrapper: one replanner, one run."""
    return ElasticReplanner(config).run(trace)
