"""Node-availability traces: the churn input of elastic re-planning.

A trace describes a fleet of ``num_nodes`` accelerator nodes and a time
series of membership events.  The on-disk format is JSONL, one object per
line:

* an optional *header* line (no ``"event"`` key) carrying fleet metadata::

      {"num_nodes": 16, "horizon": 3600.0, "preset": "spot", "seed": 7}

* one *event* object per subsequent line::

      {"t": 120.5, "event": "leave", "nodes": [3, 7]}
      {"t": 340.0, "event": "join", "nodes": [3]}

Events are validated on construction: timestamps non-negative and
non-decreasing, node ids inside the fleet, and the membership replay
consistent (only live nodes leave, only dead nodes join).  The synthetic
generator :func:`synthesize_trace` produces deterministic traces from a
seed for three churn archetypes -- independent spot preemption, correlated
whole-rack failure, and a periodic diurnal drain -- so goldens and the
churn study are byte-reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from typing import Iterator, Mapping, Sequence

#: Membership event kinds, in the order the format documents them.
EVENT_KINDS = ("leave", "join")

#: Synthetic churn archetypes :func:`synthesize_trace` understands.
PRESET_NAMES = ("spot", "rack", "diurnal")

#: Header keys accepted on the optional first JSONL line.
_HEADER_KEYS = ("num_nodes", "horizon", "preset", "seed")

#: Event keys; anything else on an event line is an error.
_EVENT_KEYS = ("t", "event", "nodes")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One membership change: ``nodes`` leave or join at time ``t``."""

    t: float
    event: str
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.event not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event {self.event!r}; known: {', '.join(EVENT_KINDS)}"
            )
        if not isinstance(self.t, (int, float)) or isinstance(self.t, bool):
            raise ValueError(f"event time must be a number, got {self.t!r}")
        if not math.isfinite(self.t) or self.t < 0:
            raise ValueError(f"event time must be finite and >= 0, got {self.t!r}")
        object.__setattr__(self, "t", float(self.t))
        nodes = tuple(self.nodes)
        if not nodes:
            raise ValueError("a trace event needs at least one node")
        for node in nodes:
            if not isinstance(node, int) or isinstance(node, bool) or node < 0:
                raise ValueError(f"node ids must be integers >= 0, got {node!r}")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node ids in event: {sorted(nodes)}")
        object.__setattr__(self, "nodes", tuple(sorted(nodes)))

    def to_json(self) -> dict:
        return {"t": self.t, "event": self.event, "nodes": list(self.nodes)}

    @classmethod
    def from_json(cls, payload: Mapping) -> "TraceEvent":
        unknown = sorted(set(payload) - set(_EVENT_KEYS))
        if unknown:
            raise ValueError(
                f"unknown trace event keys: {', '.join(unknown)}; "
                f"known: {', '.join(_EVENT_KEYS)}"
            )
        missing = sorted(set(_EVENT_KEYS) - set(payload))
        if missing:
            raise ValueError(f"trace event missing keys: {', '.join(missing)}")
        nodes = payload["nodes"]
        if isinstance(nodes, (str, bytes)) or not isinstance(nodes, Sequence):
            raise ValueError(f"event 'nodes' must be a list, got {nodes!r}")
        return cls(t=payload["t"], event=payload["event"], nodes=tuple(nodes))


@dataclasses.dataclass(frozen=True)
class AvailabilityTrace:
    """A validated churn timeline over a fleet of ``num_nodes`` nodes.

    ``horizon`` closes the final timeline segment (defaults to the last
    event time when ``None``); ``preset``/``seed`` are provenance
    annotations written back into the JSONL header when present.
    """

    num_nodes: int
    events: tuple[TraceEvent, ...]
    horizon: float | None = None
    preset: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.num_nodes, int) or self.num_nodes < 1:
            raise ValueError(f"num_nodes must be an integer >= 1, got {self.num_nodes!r}")
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        if self.horizon is not None:
            horizon = float(self.horizon)
            if not math.isfinite(horizon) or horizon < 0:
                raise ValueError(f"horizon must be finite and >= 0, got {self.horizon!r}")
            object.__setattr__(self, "horizon", horizon)
        previous = 0.0
        alive = set(range(self.num_nodes))
        for index, event in enumerate(events):
            if event.t < previous:
                raise ValueError(
                    f"event {index} at t={event.t} precedes t={previous}; "
                    "trace times must be non-decreasing"
                )
            previous = event.t
            out_of_range = [node for node in event.nodes if node >= self.num_nodes]
            if out_of_range:
                raise ValueError(
                    f"event {index} references nodes {out_of_range} outside "
                    f"the fleet of {self.num_nodes}"
                )
            members = set(event.nodes)
            if event.event == "leave":
                dead = sorted(members - alive)
                if dead:
                    raise ValueError(
                        f"event {index} at t={event.t}: nodes {dead} leave "
                        "but are not alive"
                    )
                alive -= members
            else:
                live = sorted(members & alive)
                if live:
                    raise ValueError(
                        f"event {index} at t={event.t}: nodes {live} join "
                        "but are already alive"
                    )
                alive |= members
        if self.horizon is not None and events and self.horizon < events[-1].t:
            raise ValueError(
                f"horizon {self.horizon} precedes the last event at t={events[-1].t}"
            )

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------

    @property
    def end_time(self) -> float:
        """The closing time of the timeline (horizon, else the last event)."""
        if self.horizon is not None:
            return self.horizon
        return self.events[-1].t if self.events else 0.0

    def replay(self) -> Iterator[tuple[TraceEvent, tuple[int, ...]]]:
        """Yield ``(event, alive_after)`` pairs in time order."""
        alive = set(range(self.num_nodes))
        for event in self.events:
            if event.event == "leave":
                alive -= set(event.nodes)
            else:
                alive |= set(event.nodes)
            yield event, tuple(sorted(alive))

    # ------------------------------------------------------------------
    # JSONL round trip.
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Render the trace as JSONL (header line + one line per event)."""
        header: dict = {"num_nodes": self.num_nodes}
        if self.horizon is not None:
            header["horizon"] = self.horizon
        if self.preset is not None:
            header["preset"] = self.preset
        if self.seed is not None:
            header["seed"] = self.seed
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(event.to_json(), sort_keys=True) for event in self.events
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str, num_nodes: int | None = None) -> "AvailabilityTrace":
        """Parse JSONL text; ``num_nodes`` is required if no header line."""
        header: dict = {}
        events: list[TraceEvent] = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"trace line {line_number} is not JSON: {error}") from None
            if not isinstance(payload, dict):
                raise ValueError(
                    f"trace line {line_number} must be a JSON object, got {payload!r}"
                )
            if "event" in payload:
                events.append(TraceEvent.from_json(payload))
                continue
            if events or header:
                raise ValueError(
                    f"trace line {line_number}: header must be the first line"
                )
            unknown = sorted(set(payload) - set(_HEADER_KEYS))
            if unknown:
                raise ValueError(
                    f"unknown trace header keys: {', '.join(unknown)}; "
                    f"known: {', '.join(_HEADER_KEYS)}"
                )
            header = payload
        if "num_nodes" not in header and num_nodes is None:
            raise ValueError(
                "trace has no header line; pass num_nodes= explicitly"
            )
        return cls(
            num_nodes=header.get("num_nodes", num_nodes),
            events=tuple(events),
            horizon=header.get("horizon"),
            preset=header.get("preset"),
            seed=header.get("seed"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str, num_nodes: int | None = None) -> "AvailabilityTrace":
        with open(path) as handle:
            return cls.from_jsonl(handle.read(), num_nodes=num_nodes)

    def describe(self) -> str:
        leaves = sum(1 for event in self.events if event.event == "leave")
        return (
            f"{self.num_nodes} nodes, {len(self.events)} events "
            f"({leaves} leave / {len(self.events) - leaves} join) "
            f"over {self.end_time:.3f}s"
            + (f" [{self.preset} seed={self.seed}]" if self.preset else "")
        )


# ----------------------------------------------------------------------
# Synthetic generators.
# ----------------------------------------------------------------------


def synthesize_trace(
    preset: str,
    num_nodes: int = 16,
    seed: int = 0,
    num_events: int = 12,
    horizon: float | None = None,
) -> AvailabilityTrace:
    """A deterministic synthetic churn trace for one of the presets.

    * ``spot`` -- independent spot-instance preemption: one or two nodes
      leave at random intervals, dead nodes rejoin with moderate
      probability.  At least one node always stays alive.
    * ``rack`` -- correlated failure: the fleet splits into contiguous
      racks and whole racks drop and return together; at least one rack
      always stays up.
    * ``diurnal`` -- a periodic drain: the upper half of the fleet leaves
      every "night" and rejoins every "morning", with small jitter on the
      transition times.

    All randomness comes from ``random.Random(seed)`` (an integer seed, so
    the stream is stable across processes and Python versions) and every
    timestamp is rounded to milliseconds; the same arguments always yield
    a byte-identical trace.
    """
    if preset not in PRESET_NAMES:
        raise ValueError(
            f"unknown trace preset {preset!r}; known: {', '.join(PRESET_NAMES)}"
        )
    if num_nodes < 2:
        raise ValueError(f"synthetic traces need at least 2 nodes, got {num_nodes}")
    if num_events < 1:
        raise ValueError(f"num_events must be >= 1, got {num_events}")
    rng = random.Random(seed)
    if preset == "spot":
        events = _spot_events(rng, num_nodes, num_events)
    elif preset == "rack":
        events = _rack_events(rng, num_nodes, num_events)
    else:
        events = _diurnal_events(rng, num_nodes, num_events)
    if horizon is None:
        horizon = round((events[-1].t if events else 0.0) + 300.0, 3)
    return AvailabilityTrace(
        num_nodes=num_nodes,
        events=tuple(events),
        horizon=horizon,
        preset=preset,
        seed=seed,
    )


def _spot_events(rng: random.Random, num_nodes: int, num_events: int) -> list[TraceEvent]:
    t = 0.0
    alive = set(range(num_nodes))
    events: list[TraceEvent] = []
    while len(events) < num_events:
        t = round(t + 30.0 + rng.random() * 300.0, 3)
        dead = sorted(set(range(num_nodes)) - alive)
        rejoin = bool(dead) and (rng.random() < 0.45 or len(alive) <= 1)
        if rejoin:
            count = 1 + rng.randrange(min(2, len(dead)))
            nodes = sorted(rng.sample(dead, count))
            events.append(TraceEvent(t, "join", tuple(nodes)))
            alive |= set(nodes)
        else:
            candidates = sorted(alive)
            count = 1 + rng.randrange(min(2, max(1, len(candidates) - 1)))
            count = min(count, len(candidates) - 1)
            if count < 1:
                continue
            nodes = sorted(rng.sample(candidates, count))
            events.append(TraceEvent(t, "leave", tuple(nodes)))
            alive -= set(nodes)
    return events


def _rack_events(rng: random.Random, num_nodes: int, num_events: int) -> list[TraceEvent]:
    num_racks = 4 if num_nodes >= 8 else 2
    bounds = [num_nodes * rack // num_racks for rack in range(num_racks + 1)]
    racks = {
        rack: tuple(range(bounds[rack], bounds[rack + 1]))
        for rack in range(num_racks)
        if bounds[rack] < bounds[rack + 1]
    }
    t = 0.0
    down: dict[int, tuple[int, ...]] = {}
    events: list[TraceEvent] = []
    while len(events) < num_events:
        t = round(t + 60.0 + rng.random() * 600.0, 3)
        up = [rack for rack in sorted(racks) if rack not in down]
        recover = bool(down) and (rng.random() < 0.5 or len(up) <= 1)
        if recover:
            rack = sorted(down)[rng.randrange(len(down))]
            events.append(TraceEvent(t, "join", down.pop(rack)))
        else:
            rack = up[rng.randrange(len(up))]
            down[rack] = racks[rack]
            events.append(TraceEvent(t, "leave", racks[rack]))
    return events


def _diurnal_events(
    rng: random.Random, num_nodes: int, num_events: int
) -> list[TraceEvent]:
    period = 720.0
    drained = tuple(range(num_nodes // 2, num_nodes))
    events: list[TraceEvent] = []
    cycle = 0
    while len(events) < num_events:
        night = round(cycle * period + period / 2 + rng.random() * 30.0, 3)
        events.append(TraceEvent(night, "leave", drained))
        if len(events) >= num_events:
            break
        morning = round((cycle + 1) * period + rng.random() * 30.0, 3)
        events.append(TraceEvent(morning, "join", drained))
        cycle += 1
    return events
