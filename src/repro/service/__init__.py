"""Partition-as-a-service: the long-running ``hypar serve`` daemon.

After four PRs of engine work every entry point was still a one-shot CLI
process that pays interpreter startup, model construction and cost-table
compilation per invocation.  This package reframes the same engines as a
zero-dependency stdlib HTTP service whose warm state -- the process-wide
compiled-table cache, a single-flighted LRU response cache, a persistent
sweep worker pool -- survives across requests:

* :mod:`repro.service.schemas` -- request validation + canonicalization
  and the deterministic cache-key hash;
* :mod:`repro.service.cache` -- the LRU response cache (single flight);
* :mod:`repro.service.app` -- endpoint logic, HTTP-agnostic;
* :mod:`repro.service.server` -- ``ThreadingHTTPServer`` layer and the
  signal-driven ``serve`` loop behind ``hypar serve``;
* :mod:`repro.service.client` -- a thin stdlib client for tests, benches
  and scripts.

See the "Service layer" section of DESIGN.md for the endpoint table,
cache-key recipe and threading model.  The CLI remains the batch path;
the service is the low-latency path for repeated traffic.
"""

from repro.service.app import ENDPOINTS, HyParService, RequestError
from repro.service.cache import DEFAULT_CACHE_SIZE, ResultCache
from repro.service.client import ServiceClient, ServiceClientError, ServiceResponse
from repro.service.schemas import (
    PartitionRequest,
    ReplanRequest,
    SchemaError,
    SimulateRequest,
    SweepRequest,
)
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceHTTPServer,
    build_server,
    serve,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENDPOINTS",
    "HyParService",
    "PartitionRequest",
    "ReplanRequest",
    "RequestError",
    "ResultCache",
    "SchemaError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceHTTPServer",
    "ServiceResponse",
    "SimulateRequest",
    "SweepRequest",
    "build_server",
    "serve",
]
