"""Request schemas and canonicalization for the ``hypar serve`` daemon.

Every POST endpoint validates its JSON body against a small frozen
dataclass here.  Validation is strict (unknown fields are rejected with a
message naming the known ones) and canonicalizing: model names resolve to
their canonical zoo spelling, scaling modes and strategy spaces to their
canonical short forms, and missing fields fill with the paper's defaults.
Two payloads describing the same work -- fields reordered, aliases used,
defaults spelled out or omitted -- therefore canonicalize to *equal*
requests and hash to the same cache key.

The cache key itself is :meth:`ServiceRequest.cache_key`: the SHA-256 of
the endpoint kind plus the canonical payload serialized with sorted keys
and fixed separators, so it is deterministic across processes and
restarts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Mapping

from repro.core import kernels
from repro.core.costmodel import ANALYTIC_SPEC, canonical_cost_model, shipped_profiles
from repro.core.hierarchical import DEFAULT_BATCH_SIZE
from repro.core.parallelism import StrategySpace
from repro.core.tensors import ScalingMode
from repro.nn.model_zoo import canonical_model_name
from repro.sim.backend import DEFAULT_SIM_ENGINE, validate_sim_engine
from repro.sweep.spec import PRESETS, TOPOLOGY_NAMES, SweepSpec

#: Default array size (the paper's sixteen-accelerator platform).
DEFAULT_NUM_ACCELERATORS = 16


class SchemaError(ValueError):
    """A request payload failed validation; the message is user-facing."""


def _require_mapping(payload, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(payload: Mapping, known: tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise SchemaError(
            f"unknown {what} field(s): {', '.join(unknown)}; "
            f"known fields: {', '.join(known)}"
        )


def _int_field(payload: Mapping, name: str, default: int) -> int:
    value = payload.get(name, default)
    # bool is an int subclass; "batch_size": true must not pass as 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"field {name!r} must be an integer, got {value!r}")
    return value


def _str_field(payload: Mapping, name: str, default: str) -> str:
    value = payload.get(name, default)
    if not isinstance(value, str):
        raise SchemaError(f"field {name!r} must be a string, got {value!r}")
    return value


def _canonical_model(payload: Mapping) -> str:
    if "model" not in payload:
        raise SchemaError("field 'model' is required (e.g. \"VGG-A\")")
    name = payload["model"]
    if not isinstance(name, str):
        raise SchemaError(f"field 'model' must be a string, got {name!r}")
    try:
        return canonical_model_name(name)
    except KeyError as error:
        raise SchemaError(str(error.args[0])) from None


def _canonical_batch(payload: Mapping) -> int:
    batch = _int_field(payload, "batch_size", DEFAULT_BATCH_SIZE)
    if batch <= 0:
        raise SchemaError(f"field 'batch_size' must be positive, got {batch}")
    return batch


def _canonical_accelerators(payload: Mapping, minimum: int) -> int:
    count = _int_field(payload, "num_accelerators", DEFAULT_NUM_ACCELERATORS)
    if count < minimum or count & (count - 1):
        raise SchemaError(
            f"field 'num_accelerators' must be a power of two >= {minimum}, "
            f"got {count}"
        )
    return count


def _canonical_scaling(payload: Mapping) -> str:
    text = _str_field(payload, "scaling_mode", ScalingMode.PARALLELISM_AWARE.value)
    try:
        return ScalingMode.parse(text).value
    except ValueError as error:
        raise SchemaError(str(error)) from None


def _canonical_strategies(payload: Mapping) -> str:
    text = _str_field(payload, "strategies", "dp,mp")
    try:
        return StrategySpace.parse(text).describe()
    except ValueError as error:
        raise SchemaError(str(error)) from None


def _canonical_backend(payload: Mapping) -> str:
    # The daemon's canonical default is the concrete "numpy", not the
    # process default, so request hashes cannot drift with server flags.
    text = _str_field(payload, "backend", "numpy")
    try:
        kernels.validate_backend(text)
    except ValueError as error:
        raise SchemaError(str(error)) from None
    return text


def _canonical_cost_model_spec(text: str) -> str:
    """Canonicalize one cost-model spec string, shipped packs only.

    The daemon never opens caller-named files: a profiled spec must name a
    pack shipped under ``repro/core/profiles`` (the CLI may pass paths,
    the service may not).
    """
    try:
        spec = canonical_cost_model(text)
    except ValueError as error:
        raise SchemaError(str(error)) from None
    if spec != ANALYTIC_SPEC:
        pack = spec.split(":", 1)[1]
        shipped = shipped_profiles()
        if pack not in shipped:
            raise SchemaError(
                f"unknown profile pack {pack!r}; shipped packs: "
                f"{', '.join(sorted(shipped))}"
            )
    return spec


def _canonical_cost_model(payload: Mapping) -> str:
    return _canonical_cost_model_spec(
        _str_field(payload, "cost_model", ANALYTIC_SPEC)
    )


def _canonical_sim_engine(payload: Mapping) -> str:
    text = _str_field(payload, "sim_engine", DEFAULT_SIM_ENGINE)
    try:
        return validate_sim_engine(text.strip().lower())
    except ValueError as error:
        raise SchemaError(str(error)) from None


def _canonical_topology(payload: Mapping) -> str:
    name = _str_field(payload, "topology", "htree").strip().lower()
    if name not in TOPOLOGY_NAMES:
        raise SchemaError(
            f"unknown topology {name!r}; known: {', '.join(TOPOLOGY_NAMES)}"
        )
    return name


class ServiceRequest:
    """Canonical-payload and cache-key behaviour shared by every schema."""

    #: Endpoint kind mixed into the cache key ("partition", ...).
    kind = ""

    def canonical_payload(self) -> dict:
        """The canonicalized request as a JSON-ready dict."""
        return dataclasses.asdict(self)  # type: ignore[call-overload]

    def cache_key(self) -> str:
        """Deterministic hash identifying this request across processes."""
        rendered = json.dumps(
            {"kind": self.kind, **self.canonical_payload()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(rendered.encode()).hexdigest()

    def coalesce_key(self) -> tuple:
        """The key *different* requests sharing heavy state serialize on.

        ``/partition`` and ``/simulate`` requests for the same
        (model, batch, array, scaling, strategies) configuration need the
        same compiled cost table; computing them concurrently would
        compile it twice (the response cache only single-flights
        byte-identical requests).  The default is per-request (no
        cross-request coalescing).
        """
        return (self.kind, self.cache_key())


@dataclasses.dataclass(frozen=True)
class PartitionRequest(ServiceRequest):
    """``POST /partition``: search HyPar's assignment for one network."""

    model: str
    batch_size: int = DEFAULT_BATCH_SIZE
    num_accelerators: int = DEFAULT_NUM_ACCELERATORS
    scaling_mode: str = ScalingMode.PARALLELISM_AWARE.value
    strategies: str = "dp,mp"
    backend: str = "numpy"
    cost_model: str = ANALYTIC_SPEC

    kind = "partition"
    _FIELDS = (
        "model",
        "batch_size",
        "num_accelerators",
        "scaling_mode",
        "strategies",
        "backend",
        "cost_model",
    )

    def coalesce_key(self) -> tuple:
        # Shared with /simulate: same table-relevant configuration.  The
        # backend is part of the table cache key, so it serializes too.
        return (
            "table",
            self.model,
            self.batch_size,
            self.num_accelerators,
            self.scaling_mode,
            self.strategies,
            self.backend,
            self.cost_model,
        )

    @classmethod
    def from_payload(cls, payload) -> "PartitionRequest":
        payload = _require_mapping(payload, "a /partition request")
        _reject_unknown(payload, cls._FIELDS, "/partition")
        return cls(
            model=_canonical_model(payload),
            batch_size=_canonical_batch(payload),
            num_accelerators=_canonical_accelerators(payload, minimum=2),
            scaling_mode=_canonical_scaling(payload),
            strategies=_canonical_strategies(payload),
            backend=_canonical_backend(payload),
            cost_model=_canonical_cost_model(payload),
        )


@dataclasses.dataclass(frozen=True)
class SimulateRequest(ServiceRequest):
    """``POST /simulate``: search + simulate one grid point (MP/DP/HyPar)."""

    model: str
    batch_size: int = DEFAULT_BATCH_SIZE
    num_accelerators: int = DEFAULT_NUM_ACCELERATORS
    topology: str = "htree"
    scaling_mode: str = ScalingMode.PARALLELISM_AWARE.value
    strategies: str = "dp,mp"
    cost_model: str = ANALYTIC_SPEC
    sim_engine: str = DEFAULT_SIM_ENGINE

    kind = "simulate"
    _FIELDS = (
        "model",
        "batch_size",
        "num_accelerators",
        "topology",
        "scaling_mode",
        "strategies",
        "cost_model",
        "sim_engine",
    )

    def canonical_payload(self) -> dict:
        # The canonical "analytic" default is *omitted* so every request
        # hash minted before the field existed stays valid; only network
        # requests carry (and hash) the engine.
        payload = dataclasses.asdict(self)
        if payload["sim_engine"] == DEFAULT_SIM_ENGINE:
            del payload["sim_engine"]
        return payload

    def coalesce_key(self) -> tuple:
        # Topology affects the simulated schedule but not the compiled
        # table, so it is deliberately absent: a /partition and /simulate
        # pair (or two /simulate topologies) serialize their compile.
        return (
            "table",
            self.model,
            self.batch_size,
            self.num_accelerators,
            self.scaling_mode,
            self.strategies,
            self.cost_model,
        )

    @classmethod
    def from_payload(cls, payload) -> "SimulateRequest":
        payload = _require_mapping(payload, "a /simulate request")
        _reject_unknown(payload, cls._FIELDS, "/simulate")
        return cls(
            model=_canonical_model(payload),
            batch_size=_canonical_batch(payload),
            # 1 is allowed: the single-accelerator baseline point.
            num_accelerators=_canonical_accelerators(payload, minimum=1),
            topology=_canonical_topology(payload),
            scaling_mode=_canonical_scaling(payload),
            strategies=_canonical_strategies(payload),
            cost_model=_canonical_cost_model(payload),
            sim_engine=_canonical_sim_engine(payload),
        )


@dataclasses.dataclass(frozen=True)
class SweepRequest(ServiceRequest):
    """``POST /sweep``: run a whole grid through the warm engine.

    The body carries either ``{"preset": "smoke"}`` or ``{"spec": {...}}``
    (the :class:`~repro.sweep.spec.SweepSpec` JSON format).  Axis values
    canonicalize exactly like the single-point endpoints, so a spec naming
    ``vgg_a`` and one naming ``VGG-A`` share a cache entry -- and the
    response bytes match a ``hypar sweep`` CLI run of the canonical spec.
    """

    spec: dict

    kind = "sweep"
    _FIELDS = ("preset", "spec")

    @classmethod
    def from_payload(cls, payload) -> "SweepRequest":
        payload = _require_mapping(payload, "a /sweep request")
        _reject_unknown(payload, cls._FIELDS, "/sweep")
        has_preset = "preset" in payload
        has_spec = "spec" in payload
        if has_preset == has_spec:
            raise SchemaError(
                "a /sweep request needs exactly one of 'preset' "
                f"(one of: {', '.join(sorted(PRESETS))}) or 'spec' "
                "(a sweep-spec JSON object)"
            )
        if has_preset:
            name = payload["preset"]
            if not isinstance(name, str) or name not in PRESETS:
                raise SchemaError(
                    f"unknown sweep preset {name!r}; "
                    f"presets: {', '.join(sorted(PRESETS))}"
                )
            spec = PRESETS[name]
        else:
            spec_payload = _require_mapping(payload["spec"], "the 'spec' field")
            try:
                spec = SweepSpec.from_json(spec_payload)
            except (ValueError, TypeError) as error:
                raise SchemaError(f"invalid sweep spec: {error}") from None
        return cls(spec=_canonical_spec(spec).to_json())

    def to_spec(self) -> SweepSpec:
        return SweepSpec.from_json(self.spec)


@dataclasses.dataclass(frozen=True)
class ReplanRequest(ServiceRequest):
    """``POST /replan``: elastic re-planning over an availability trace.

    The body names a model/policy configuration plus the trace to replay,
    either inline (``"trace": [{"t": ..., "event": ..., "nodes": [...]}]``)
    or as a named generator (``"preset": "spot"`` with optional ``seed`` /
    ``num_events``).  Presets are synthesized *server-side during
    canonicalization* and the canonical payload stores only the
    materialized events -- a preset request and the equivalent inline
    trace therefore hash to the same cache key, and the trace's
    provenance metadata (preset name, seed) never leaks into the
    deterministic response bytes.
    """

    model: str
    trace: tuple
    num_nodes: int
    horizon: float | None
    batch_size: int = DEFAULT_BATCH_SIZE
    policy: str = "every-event"
    topology: str = "htree"
    scaling_mode: str = ScalingMode.PARALLELISM_AWARE.value
    strategies: str = "dp,mp"
    horizon_steps: int = 500
    cost_model: str = ANALYTIC_SPEC

    kind = "replan"
    _FIELDS = (
        "model",
        "batch_size",
        "num_nodes",
        "policy",
        "topology",
        "scaling_mode",
        "strategies",
        "horizon_steps",
        "horizon",
        "trace",
        "preset",
        "seed",
        "num_events",
        "cost_model",
    )

    @classmethod
    def from_payload(cls, payload) -> "ReplanRequest":
        from repro.resilience.replan import POLICIES
        from repro.resilience.traces import (
            PRESET_NAMES,
            AvailabilityTrace,
            TraceEvent,
            synthesize_trace,
        )

        payload = _require_mapping(payload, "a /replan request")
        _reject_unknown(payload, cls._FIELDS, "/replan")
        has_trace = "trace" in payload
        has_preset = "preset" in payload
        if has_trace == has_preset:
            raise SchemaError(
                "a /replan request needs exactly one of 'trace' (a list of "
                "availability events) or 'preset' "
                f"(one of: {', '.join(PRESET_NAMES)})"
            )
        if has_trace:
            for field in ("seed", "num_events"):
                if field in payload:
                    raise SchemaError(
                        f"field {field!r} only applies to preset traces; "
                        "drop it when providing 'trace' inline"
                    )

        num_nodes = _int_field(payload, "num_nodes", DEFAULT_NUM_ACCELERATORS)
        if num_nodes < 2:
            raise SchemaError(
                f"field 'num_nodes' must be >= 2, got {num_nodes}"
            )
        policy = _str_field(payload, "policy", "every-event")
        if policy not in POLICIES:
            raise SchemaError(
                f"unknown policy {policy!r}; known: {', '.join(POLICIES)}"
            )
        horizon_steps = _int_field(payload, "horizon_steps", 500)
        if horizon_steps <= 0:
            raise SchemaError(
                f"field 'horizon_steps' must be positive, got {horizon_steps}"
            )
        horizon = payload.get("horizon")
        if horizon is not None:
            if isinstance(horizon, bool) or not isinstance(horizon, (int, float)):
                raise SchemaError(
                    f"field 'horizon' must be a number, got {horizon!r}"
                )
            horizon = float(horizon)

        if has_preset:
            preset = payload["preset"]
            if not isinstance(preset, str) or preset not in PRESET_NAMES:
                raise SchemaError(
                    f"unknown trace preset {preset!r}; "
                    f"presets: {', '.join(PRESET_NAMES)}"
                )
            seed = _int_field(payload, "seed", 0)
            num_events = _int_field(payload, "num_events", 12)
            try:
                trace = synthesize_trace(
                    preset,
                    num_nodes=num_nodes,
                    seed=seed,
                    num_events=num_events,
                    horizon=horizon,
                )
            except ValueError as error:
                raise SchemaError(str(error)) from None
        else:
            entries = payload["trace"]
            if not isinstance(entries, (list, tuple)):
                raise SchemaError(
                    f"field 'trace' must be a list of events, got {entries!r}"
                )
            try:
                events = tuple(TraceEvent.from_json(entry) for entry in entries)
                trace = AvailabilityTrace(
                    num_nodes=num_nodes, events=events, horizon=horizon
                )
            except (ValueError, TypeError) as error:
                raise SchemaError(str(error)) from None

        return cls(
            model=_canonical_model(payload),
            trace=tuple(
                (event.t, event.event, tuple(event.nodes))
                for event in trace.events
            ),
            num_nodes=num_nodes,
            horizon=trace.horizon,
            batch_size=_canonical_batch(payload),
            policy=policy,
            topology=_canonical_topology(payload),
            scaling_mode=_canonical_scaling(payload),
            strategies=_canonical_strategies(payload),
            horizon_steps=horizon_steps,
            cost_model=_canonical_cost_model(payload),
        )

    def to_trace(self):
        """The canonical :class:`~repro.resilience.traces.AvailabilityTrace`."""
        from repro.resilience.traces import AvailabilityTrace, TraceEvent

        return AvailabilityTrace(
            num_nodes=self.num_nodes,
            events=tuple(
                TraceEvent(t=t, event=kind, nodes=tuple(nodes))
                for t, kind, nodes in self.trace
            ),
            horizon=self.horizon,
        )

    def to_config(self):
        """The matching :class:`~repro.resilience.replan.ReplanConfig`."""
        from repro.resilience.replan import ReplanConfig

        return ReplanConfig(
            model=self.model,
            batch_size=self.batch_size,
            policy=self.policy,
            topology=self.topology,
            scaling_mode=self.scaling_mode,
            strategies=self.strategies,
            horizon_steps=self.horizon_steps,
            cost_model=self.cost_model,
        )


def _canonical_spec(spec: SweepSpec) -> SweepSpec:
    """The spec with every axis value in canonical spelling.

    ``SweepSpec`` validates but preserves the caller's spellings; the
    service normalizes them so equivalent specs share one cache entry and
    one deterministic artifact.
    """
    try:
        models = tuple(canonical_model_name(name) for name in spec.models)
    except KeyError as error:
        raise SchemaError(str(error.args[0])) from None
    return dataclasses.replace(
        spec,
        models=models,
        scaling_modes=tuple(
            ScalingMode.parse(mode).value for mode in spec.scaling_modes
        ),
        strategy_spaces=tuple(
            StrategySpace.parse(space).describe() for space in spec.strategy_spaces
        ),
        cost_models=tuple(
            _canonical_cost_model_spec(model) for model in spec.cost_models
        ),
    )
