"""The HTTP layer of ``hypar serve``: stdlib threading server + lifecycle.

Zero new dependencies: :class:`http.server.ThreadingHTTPServer` gives one
thread per in-flight request (``daemon_threads``, so stragglers cannot
block shutdown), and every request funnels into
:meth:`repro.service.app.HyParService.handle`.  The threading model is

* request threads share the process-wide caches -- the LRU response cache
  (single-flighted, see :mod:`repro.service.cache`) and the compiled-table
  cache of :func:`repro.sweep.cache.shared_table_cache`;
* ``POST /sweep`` bodies fan their grid points into the service's one
  persistent :class:`~repro.sweep.engine.SweepEngine` (safe to share:
  ``ProcessPoolExecutor.map`` is thread-safe, and identical sweeps
  coalesce in the response cache before reaching it).

:func:`serve` is the CLI entry point: it runs the accept loop in a
background thread and parks the main thread on an event that SIGTERM /
SIGINT set, so a signalled daemon drains through the same teardown path as
a normal exit -- server socket closed, worker pool released (the
engine's idempotent, signal-safe ``close``), exit code 0.
"""

from __future__ import annotations

import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.app import JSON_CONTENT_TYPE, HyParService, _render
from repro.service.cache import DEFAULT_CACHE_SIZE

#: Default bind address; loopback-only, this is an internal service.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8100

#: Largest accepted request body; a sweep spec is a few hundred bytes, so
#: one megabyte is generous and bounds memory per request thread.
MAX_BODY_BYTES = 1 << 20


class _BodyError(Exception):
    """A request body that must not (or cannot) be read off the socket."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from the HTTP request to ``HyParService.handle``."""

    # Keep-alive: warm clients reuse one connection for a request burst.
    protocol_version = "HTTP/1.1"
    server_version = "hypar-serve"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # Nagle / delayed-ACK interaction adds ~40 ms to every exchange, two
    # orders of magnitude above a warm cache hit.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._respond("POST")

    def _respond(self, method: str) -> None:
        injector = getattr(self.server, "fault_injector", None)
        if injector is not None:
            action = injector.connection_action()
            if action == "drop":
                # Sever the connection without any response bytes: the
                # client observes a reset/empty reply mid-exchange, the
                # retryable failure class its backoff loop handles.
                self.close_connection = True
                try:
                    self.connection.shutdown(socket.SHUT_RDWR)
                except OSError:  # pragma: no cover - already dead
                    pass
                return
            if action == "delay":
                time.sleep(injector.plan.delay_seconds)
        try:
            body = self._read_body()
        except _BodyError as error:
            # The body was left unread, so the connection's byte stream is
            # no longer aligned with request boundaries -- a keep-alive
            # client's next request would be parsed out of the stale body.
            self.close_connection = True
            self._send(error.status, _render({"error": error.message}))
            return
        status, response = self._handle_with_deadline(method, body)
        self._send(status, response)

    def _handle_with_deadline(self, method: str, body: bytes | None) -> tuple[int, bytes]:
        """``service.handle`` bounded by the server's per-request deadline.

        The handler thread cannot abort a stuck computation, so the work
        runs on a helper daemon thread; on deadline the request answers
        504 and closes the connection while the abandoned computation
        finishes (or dies) harmlessly in the background -- its result
        still lands in the single-flight response cache, and the engine
        pool/caches are untouched by the timeout itself.
        """
        service = self.server.service
        timeout = getattr(self.server, "request_timeout", None)
        if timeout is None:
            return service.handle(method, self.path, body)
        done = threading.Event()
        outcome: dict = {}

        def _work() -> None:
            try:
                outcome["result"] = service.handle(method, self.path, body)
            finally:
                done.set()

        threading.Thread(
            target=_work, name="hypar-serve-compute", daemon=True
        ).start()
        if not done.wait(timeout):
            service.note_timeout()
            # The reply stream is now out of step with the still-running
            # computation; drop the keep-alive connection after the 504.
            self.close_connection = True
            return 504, _render(
                {"error": f"request exceeded the {timeout}s deadline"}
            )
        return outcome.get(
            "result", (500, _render({"error": "internal error: request worker died"}))
        )

    def _read_body(self) -> bytes | None:
        raw = self.headers.get("Content-Length")
        if raw is None or not raw.strip():
            return None
        try:
            length = int(raw)
        except ValueError:
            raise _BodyError(400, f"invalid Content-Length header {raw!r}")
        if length < 0:
            # rfile.read(-1) would block until the peer closes, pinning
            # this request thread forever.
            raise _BodyError(400, f"invalid Content-Length header {raw!r}")
        if length > MAX_BODY_BYTES:
            raise _BodyError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length) if length else None

    def _send(self, status: int, response: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(response)))
        if self.close_connection:
            # Advertise the close we are about to perform (body-error
            # paths desynchronize the keep-alive stream).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(response)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "log_requests", False):
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning one :class:`HyParService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: HyParService,
        log_requests: bool = False,
        request_timeout: float | None = None,
        fault_injector=None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.log_requests = log_requests
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self.request_timeout = request_timeout
        self.fault_injector = fault_injector

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        return self.server_address[1]

    def close(self) -> None:
        """Stop accepting, close the socket, release the worker pool."""
        self.shutdown()
        self.server_close()
        self.service.close()


def build_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    log_requests: bool = False,
    request_timeout: float | None = None,
    fault_plan=None,
    cost_model: str = "analytic",
) -> ServiceHTTPServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port.

    Callers (tests, benchmarks) run ``serve_forever`` on their own thread
    and tear down with :meth:`ServiceHTTPServer.close`.

    ``request_timeout`` bounds each request server-side (504 +
    ``Connection: close`` on overrun); ``fault_plan`` installs a
    :class:`~repro.resilience.faults.FaultInjector` for that plan across
    both the HTTP connection seam and the service compute/store seams;
    ``cost_model`` sets the provider applied to requests that omit the
    ``cost_model`` field (``"analytic"`` or ``"profiled:<pack>"``).
    """
    injector = None
    if fault_plan is not None:
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(fault_plan)
    service = HyParService(
        workers=workers,
        cache_size=cache_size,
        fault_injector=injector,
        default_cost_model=cost_model,
    )
    try:
        return ServiceHTTPServer(
            (host, port),
            service,
            log_requests=log_requests,
            request_timeout=request_timeout,
            fault_injector=injector,
        )
    except BaseException:
        service.close()
        raise


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    log_requests: bool = False,
    request_timeout: float | None = None,
    fault_plan=None,
    cost_model: str = "analytic",
    ready: "threading.Event | None" = None,
    stop: "threading.Event | None" = None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the daemon until SIGTERM/SIGINT (the ``hypar serve`` command).

    ``ready`` (set once the socket is bound and serving) and ``stop`` (an
    externally settable shutdown trigger) exist for embedding and tests;
    the CLI passes neither.  Returns 0 on a clean signal-driven exit.
    """
    stop = stop or threading.Event()
    server = build_server(
        host=host, port=port, workers=workers, cache_size=cache_size,
        log_requests=log_requests, request_timeout=request_timeout,
        fault_plan=fault_plan, cost_model=cost_model,
    )

    previous: dict[int, object] = {}
    if install_signal_handlers:
        def _request_stop(signum, frame):  # noqa: ARG001 - signal API
            stop.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_stop)

    acceptor = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="hypar-serve-accept",
        daemon=True,
    )
    acceptor.start()
    print(
        f"hypar serve: listening on http://{host}:{server.port} "
        f"(workers={server.service.engine.workers}, "
        f"cache_size={server.service.result_cache.limit})",
        file=sys.stderr,
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        # Park until a signal (or an embedder) requests shutdown; wait()
        # rather than join() so KeyboardInterrupt still breaks through on
        # platforms where the handler did not install.
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        acceptor.join(timeout=5.0)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("hypar serve: shut down cleanly", file=sys.stderr, flush=True)
    return 0
