"""A thin stdlib client for the ``hypar serve`` daemon.

Used by the service tests, the throughput benchmark and scripts; it is
also a reference for talking to the daemon from anywhere else (the README
shows the equivalent ``curl`` invocations).  One persistent keep-alive
connection per client, transparently re-opened when the server side closes
it between requests.

Transient transport failures (connection refused/reset, socket timeouts,
a keep-alive connection the server dropped) are retried with exponential
backoff plus jitter, up to ``retries`` attempts.  Two things are *never*
retried:

* any response actually received -- a 4xx/5xx is an answer, not a
  transport failure (retrying a 400 would just repeat it);
* a request marked ``idempotent=False`` once bytes may have reached the
  wire -- the daemon's endpoints are all deterministic reads, so the
  default is idempotent, but the flag exists for callers that are not.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import random
import socket
import time


class ServiceClientError(RuntimeError):
    """A non-2xx response, carrying the status and the error body."""

    def __init__(self, status: int, body: bytes) -> None:
        try:
            detail = json.loads(body).get("error", body.decode(errors="replace"))
        except (ValueError, AttributeError):
            detail = body.decode(errors="replace")
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


@dataclasses.dataclass(frozen=True)
class ServiceResponse:
    """Raw status and body of one exchange (bytes kept for parity tests)."""

    status: int
    body: bytes

    def json(self):
        return json.loads(self.body)


class ServiceClient:
    """Talks JSON to a running daemon at ``host:port``.

    Parameters
    ----------
    retries:
        Total attempts per request (default 3); ``1`` disables retrying.
    backoff, max_backoff:
        Exponential backoff base and cap in seconds: attempt ``n`` sleeps
        ``min(max_backoff, backoff * 2**(n-1))`` before retrying.
    jitter:
        Fractional jitter added on top of the backoff (``0.25`` means up
        to +25%), decorrelating retry storms from many clients.
    rng:
        Jitter randomness source; seeded by default so tests are
        deterministic (jitter only shapes sleep times, never payloads).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        jitter: float = 0.25,
        rng: random.Random | None = None,
    ) -> None:
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        if backoff < 0 or max_backoff < 0 or jitter < 0:
            raise ValueError("backoff, max_backoff and jitter must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random(0)
        self.retried = 0
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            connection.connect()
            # Mirror the server's TCP_NODELAY: headers and body are
            # written separately, and Nagle + delayed ACK would otherwise
            # cost ~40 ms per request on loopback.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connection = connection
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.max_backoff, self.backoff * (2 ** (attempt - 1)))
        delay *= 1.0 + self.jitter * self._rng.random()
        if delay > 0:
            time.sleep(delay)

    def request(
        self, method: str, path: str, payload=None, idempotent: bool = True
    ) -> ServiceResponse:
        """One exchange; returns the raw response, whatever the status.

        Transport failures retry up to ``self.retries`` attempts with
        exponential backoff.  A received response is returned as-is (a
        4xx is never retried), and with ``idempotent=False`` a failure
        after bytes may have been sent propagates instead of retrying.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        last_error: Exception | None = None
        for attempt in range(self.retries):
            if attempt:
                self.retried += 1
                self._sleep_backoff(attempt)
            try:
                connection = self._connect()
            except OSError as error:
                # Connect failures (refused/reset/timeout): nothing was
                # sent, so retrying is always safe.
                self.close()
                last_error = error
                continue
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                return ServiceResponse(response.status, response.read())
            except (http.client.HTTPException, OSError) as error:
                # Dropped mid-exchange (stale keep-alive, injected drop,
                # server restart).  Bytes may have reached the wire, so
                # only idempotent requests retry from here.
                self.close()
                last_error = error
                if not idempotent:
                    raise
        assert last_error is not None
        raise last_error

    def _checked(self, method: str, path: str, payload=None) -> dict:
        response = self.request(method, path, payload)
        if response.status != 200:
            raise ServiceClientError(response.status, response.body)
        return response.json()

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def models(self) -> dict:
        return self._checked("GET", "/models")

    def strategies(self) -> dict:
        return self._checked("GET", "/strategies")

    def partition(self, **fields) -> dict:
        return self._checked("POST", "/partition", fields)

    def simulate(self, **fields) -> dict:
        return self._checked("POST", "/simulate", fields)

    def sweep(self, preset: str | None = None, spec: dict | None = None) -> dict:
        payload = {}
        if preset is not None:
            payload["preset"] = preset
        if spec is not None:
            payload["spec"] = spec
        return self._checked("POST", "/sweep", payload)

    def replan(self, **fields) -> dict:
        return self._checked("POST", "/replan", fields)

    # ------------------------------------------------------------------
    # Readiness.
    # ------------------------------------------------------------------

    def wait_until_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until it answers 200 or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, ServiceClientError, ValueError) as error:
                last_error = error
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not healthy after {timeout}s "
            f"(last error: {last_error})"
        )
