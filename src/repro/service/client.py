"""A thin stdlib client for the ``hypar serve`` daemon.

Used by the service tests, the throughput benchmark and scripts; it is
also a reference for talking to the daemon from anywhere else (the README
shows the equivalent ``curl`` invocations).  One persistent keep-alive
connection per client, transparently re-opened when the server side closes
it between requests.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import socket
import time


class ServiceClientError(RuntimeError):
    """A non-2xx response, carrying the status and the error body."""

    def __init__(self, status: int, body: bytes) -> None:
        try:
            detail = json.loads(body).get("error", body.decode(errors="replace"))
        except (ValueError, AttributeError):
            detail = body.decode(errors="replace")
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


@dataclasses.dataclass(frozen=True)
class ServiceResponse:
    """Raw status and body of one exchange (bytes kept for parity tests)."""

    status: int
    body: bytes

    def json(self):
        return json.loads(self.body)


class ServiceClient:
    """Talks JSON to a running daemon at ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            connection.connect()
            # Mirror the server's TCP_NODELAY: headers and body are
            # written separately, and Nagle + delayed ACK would otherwise
            # cost ~40 ms per request on loopback.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connection = connection
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, payload=None) -> ServiceResponse:
        """One exchange; returns the raw response, whatever the status."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                return ServiceResponse(response.status, response.read())
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # Stale keep-alive connection: reconnect once.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _checked(self, method: str, path: str, payload=None) -> dict:
        response = self.request(method, path, payload)
        if response.status != 200:
            raise ServiceClientError(response.status, response.body)
        return response.json()

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def models(self) -> dict:
        return self._checked("GET", "/models")

    def strategies(self) -> dict:
        return self._checked("GET", "/strategies")

    def partition(self, **fields) -> dict:
        return self._checked("POST", "/partition", fields)

    def simulate(self, **fields) -> dict:
        return self._checked("POST", "/simulate", fields)

    def sweep(self, preset: str | None = None, spec: dict | None = None) -> dict:
        payload = {}
        if preset is not None:
            payload["preset"] = preset
        if spec is not None:
            payload["spec"] = spec
        return self._checked("POST", "/sweep", payload)

    # ------------------------------------------------------------------
    # Readiness.
    # ------------------------------------------------------------------

    def wait_until_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until it answers 200 or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, ServiceClientError, ValueError) as error:
                last_error = error
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not healthy after {timeout}s "
            f"(last error: {last_error})"
        )
