"""Endpoint logic of the ``hypar serve`` daemon (HTTP-agnostic).

:class:`HyParService` maps ``(method, path, body)`` to
``(status, response bytes)`` without touching sockets, so the whole
request surface is unit-testable in-process; the thin HTTP layer lives in
:mod:`repro.service.server`.

Endpoints
---------
``POST /partition``
    HyPar's hierarchical partition search for one network.
``POST /simulate``
    One sweep grid point: search HyPar, simulate it next to the Model/Data
    Parallelism baselines (via :func:`repro.sweep.runner.evaluate_point`).
``POST /sweep``
    A whole grid (``{"preset": ...}`` or ``{"spec": {...}}``) through the
    service's persistent :class:`~repro.sweep.engine.SweepEngine`.  The
    response bytes equal the ``<name>.json`` artifact a ``hypar sweep``
    CLI run of the same canonical spec writes.
``POST /replan``
    Elastic re-planning over an availability trace (inline events or a
    named preset; see :mod:`repro.resilience`).  The response bytes equal
    the ``replan.json`` artifact of the matching ``hypar replan`` run.
``GET /models`` / ``GET /strategies``
    The model zoo and the strategy registry.
``GET /healthz``
    Liveness plus observability: result-cache and compiled-table-cache
    counters, request totals, worker-pool state.

POST responses are cached as rendered bytes in a
:class:`~repro.service.cache.ResultCache` keyed by the canonical request
hash; misses compile cost tables through the process-wide
:func:`~repro.sweep.cache.shared_table_cache`, so a warm daemon answers
repeated traffic without recompiling anything.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Mapping

from repro.core import kernels
from repro.core.costmodel import ANALYTIC_SPEC, resolve_cost_model, shipped_profiles
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.result import HierarchicalResult
from repro.core.strategies import registered_strategies
from repro.nn.model_zoo import all_model_builders, get_model
from repro.resilience.replan import run_replan
from repro.service.cache import DEFAULT_CACHE_SIZE, KeyedLocks, ResultCache
from repro.sim.backend import DEFAULT_SIM_ENGINE, SIM_ENGINES
from repro.service.schemas import (
    PartitionRequest,
    ReplanRequest,
    SchemaError,
    ServiceRequest,
    SimulateRequest,
    SweepRequest,
    _canonical_cost_model_spec,
)
from repro.sweep.artifacts import payload_to_json
from repro.sweep.cache import runtime_cached, shared_table_cache
from repro.sweep.engine import SweepEngine
from repro.sweep.runner import evaluate_point, run_sweep
from repro.sweep.spec import SweepPoint

#: Method and one-line summary per path, also served on 404s.
ENDPOINTS: Mapping[str, tuple[str, str]] = {
    "/partition": ("POST", "hierarchical partition search for one network"),
    "/simulate": ("POST", "search + simulate one grid point (MP/DP/HyPar)"),
    "/sweep": ("POST", "run a sweep grid (preset name or inline spec)"),
    "/replan": ("POST", "elastic re-planning over an availability trace"),
    "/models": ("GET", "the evaluation-network zoo"),
    "/strategies": ("GET", "the registered per-layer parallelism strategies"),
    "/healthz": ("GET", "liveness and cache/request counters"),
}

JSON_CONTENT_TYPE = "application/json"


class RequestError(Exception):
    """An error with a definite HTTP status and a user-facing message."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra = dict(extra)


def _render(payload) -> bytes:
    """Deterministic response bytes (the sweep artifact serialization)."""
    return payload_to_json(payload).encode()


class HyParService:
    """The daemon's endpoint logic and long-lived warm state.

    Parameters
    ----------
    workers:
        Worker processes of the persistent sweep engine ``POST /sweep``
        fans grid points into (``1`` = in-process serial).
    cache_size:
        Capacity of the LRU response cache (``--cache-size``).
    engine:
        Optional externally owned engine (tests); by default the service
        creates one and :meth:`close` shuts it down.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` whose
        compute/store faults fire inside the request path (chaos tests
        and ``hypar serve --fault-preset``); ``None`` disables the seams.
    default_cost_model:
        Cost-model spec applied to ``/partition``, ``/simulate`` and
        ``/replan`` requests that omit the ``cost_model`` field
        (``hypar serve --cost-model``).  Must be ``"analytic"`` or a
        shipped profile pack; the effective default is surfaced in
        ``/healthz``.  Requests naming their own provider are untouched.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        engine: SweepEngine | None = None,
        fault_injector=None,
        default_cost_model: str = ANALYTIC_SPEC,
    ) -> None:
        # Canonicalize (and reject unknown packs) at startup, not per
        # request; raises the same SchemaError a bad request field would.
        self.default_cost_model = _canonical_cost_model_spec(default_cost_model)
        self.result_cache = ResultCache(cache_size)
        # Coalesces compiles across *different* requests sharing one cost
        # table (e.g. /partition + /simulate of the same configuration).
        self._config_locks = KeyedLocks()
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else SweepEngine(workers=workers)
        self.fault_injector = fault_injector
        self._started = time.monotonic()
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.request_errors = 0
        self.timeouts = 0
        self.stale_served = 0
        self._static: dict[str, bytes] = {}

    def note_timeout(self) -> None:
        """Called by the HTTP layer when a request overran its deadline."""
        with self._counter_lock:
            self.timeouts += 1

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (idempotent; see SweepEngine.close)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "HyParService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes | None) -> tuple[int, bytes]:
        """One request in, ``(status, response bytes)`` out."""
        try:
            status, response = self._dispatch(method, path.split("?", 1)[0], body)
        except RequestError as error:
            with self._counter_lock:
                self.request_errors += 1
            return error.status, _render({"error": error.message, **error.extra})
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            with self._counter_lock:
                self.request_errors += 1
            return 500, _render(
                {"error": f"internal error: {type(error).__name__}: {error}"}
            )
        with self._counter_lock:
            self.requests_served += 1
        return status, response

    def _dispatch(self, method: str, path: str, body: bytes | None) -> tuple[int, bytes]:
        if path not in ENDPOINTS:
            raise RequestError(
                404,
                f"unknown path {path!r}",
                endpoints={p: f"{m} - {summary}" for p, (m, summary) in ENDPOINTS.items()},
            )
        expected, _ = ENDPOINTS[path]
        if method != expected:
            raise RequestError(
                405, f"{path} expects {expected}, got {method}", allow=expected
            )
        if method == "GET":
            handlers: dict[str, Callable[[], bytes]] = {
                "/models": self._models_body,
                "/strategies": self._strategies_body,
                "/healthz": self._healthz_body,
            }
            return 200, handlers[path]()
        payload = self._parse_body(path, body)
        request = self._parse_request(path, payload)
        computes: dict[str, Callable[[ServiceRequest], bytes]] = {
            "/partition": self._partition_body,
            "/simulate": self._simulate_body,
            "/sweep": self._sweep_body,
            "/replan": self._replan_body,
        }
        compute = computes[path]
        injector = self.fault_injector

        def guarded() -> bytes:
            if injector is not None:
                # May raise FaultInjected (scheduled compute failure) --
                # which then exercises the stale-serving path below.
                delay = injector.on_compute()
                if delay:
                    time.sleep(delay)
            with self._config_locks.holding(request.coalesce_key()):
                return compute(request)

        key = request.cache_key()
        try:
            response, hit = self.result_cache.get_or_compute(key, guarded)
        except RequestError:
            raise
        except Exception:
            # Graceful degradation: prefer a previously served (possibly
            # since-evicted) response for this exact canonical request
            # over a 500 while the stack is unhealthy.
            stale = self.result_cache.get_stale(key)
            if stale is None:
                raise
            with self._counter_lock:
                self.stale_served += 1
            return 200, stale
        if not hit and injector is not None:
            injector.note_store(self.result_cache, key)
        return 200, response

    @staticmethod
    def _parse_body(path: str, body: bytes | None):
        if not body:
            raise RequestError(
                400, f"{path} requires a JSON request body (got an empty body)"
            )
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise RequestError(
                400, f"request body is not valid JSON: {error}"
            ) from None

    def _parse_request(self, path: str, payload) -> ServiceRequest:
        schemas: dict[str, Callable] = {
            "/partition": PartitionRequest.from_payload,
            "/simulate": SimulateRequest.from_payload,
            "/sweep": SweepRequest.from_payload,
            "/replan": ReplanRequest.from_payload,
        }
        if (
            self.default_cost_model != ANALYTIC_SPEC
            and path in ("/partition", "/simulate", "/replan")
            and isinstance(payload, Mapping)
            and "cost_model" not in payload
        ):
            # The server-wide default fills the omitted field *before*
            # canonicalization, so the cache hash reflects the provider
            # actually used and can never cross-serve an analytic result.
            payload = {**payload, "cost_model": self.default_cost_model}
        try:
            return schemas[path](payload)
        except SchemaError as error:
            raise RequestError(400, str(error)) from None

    # ------------------------------------------------------------------
    # POST endpoints (computed once per canonical request, then cached).
    # ------------------------------------------------------------------

    def _partition_body(self, request: PartitionRequest) -> bytes:
        model = runtime_cached(("model", request.model), lambda: get_model(request.model))
        num_levels = request.num_accelerators.bit_length() - 1
        communication_model = resolve_cost_model(
            request.cost_model
        ).communication_model()
        partitioner = runtime_cached(
            (
                "service-partitioner",
                num_levels,
                request.scaling_mode,
                request.strategies,
                request.backend,
                request.cost_model,
            ),
            lambda: HierarchicalPartitioner(
                num_levels=num_levels,
                communication_model=communication_model,
                scaling_mode=request.scaling_mode,
                strategies=request.strategies,
                backend=request.backend,
            ),
        )
        table = shared_table_cache().get_or_compile(
            model,
            request.batch_size,
            num_levels,
            scaling_mode=request.scaling_mode,
            communication_model=communication_model,
            strategies=request.strategies,
            backend=request.backend,
        )
        result = partitioner.partition(model, request.batch_size, table=table)
        return _render(self._partition_payload(request, model, result))

    @staticmethod
    def _partition_payload(
        request: PartitionRequest, model, result: HierarchicalResult
    ) -> dict:
        return {
            "request": request.canonical_payload(),
            "model": result.model_name,
            "batch_size": result.batch_size,
            "num_accelerators": result.num_accelerators,
            "layers": [layer.name for layer in model],
            "levels": [
                {
                    "level": level.level + 1,
                    "assignment": [choice.short for choice in level.assignment],
                    "pair_communication_bytes": level.communication_bytes,
                    "num_pairs": level.num_pairs,
                    "total_bytes": level.total_bytes,
                }
                for level in result.levels
            ],
            "total_communication_bytes": result.total_communication_bytes,
            "total_communication_gb": result.total_communication_bytes / 1e9,
        }

    def _simulate_body(self, request: SimulateRequest) -> bytes:
        point = SweepPoint.single(
            model=request.model,
            batch_size=request.batch_size,
            num_accelerators=request.num_accelerators,
            topology=request.topology,
            scaling_mode=request.scaling_mode,
            strategies=request.strategies,
            cost_model=request.cost_model,
            sim_engine=request.sim_engine,
        )
        record = evaluate_point(point)
        return _render(
            {
                "request": request.canonical_payload(),
                "label": point.label(),
                "row": record.to_row(),
            }
        )

    def _sweep_body(self, request: SweepRequest) -> bytes:
        result = run_sweep(request.to_spec(), engine=self.engine)
        # Byte-for-byte the artifact `hypar sweep <spec> --out DIR` writes.
        return payload_to_json(result.to_payload()).encode()

    def _replan_body(self, request: ReplanRequest) -> bytes:
        report = run_replan(request.to_trace(), request.to_config())
        # Byte-for-byte the `replan.json` artifact `hypar replan` writes
        # for the same canonical trace and configuration.
        return payload_to_json(report.to_payload()).encode()

    # ------------------------------------------------------------------
    # GET endpoints.
    # ------------------------------------------------------------------

    def _models_body(self) -> bytes:
        body = self._static.get("/models")
        if body is None:
            models = [builder() for builder in all_model_builders().values()]
            body = _render(
                {
                    "models": [
                        {
                            "name": model.name,
                            "num_weighted_layers": model.num_weighted_layers,
                            "num_conv_layers": model.num_conv_layers,
                            "num_fc_layers": model.num_fc_layers,
                            "total_weights": model.total_weights,
                            "is_chain": model.is_chain,
                            "num_edges": model.num_edges,
                        }
                        for model in models
                    ]
                }
            )
            self._static["/models"] = body
        return body

    def _strategies_body(self) -> bytes:
        body = self._static.get("/strategies")
        if body is None:
            body = _render(
                {
                    "strategies": [
                        {
                            "short": spec.short,
                            "parallelism": spec.parallelism.name.lower(),
                            "halves": spec.halves,
                            "stage_local": spec.stage_local,
                            "description": spec.description,
                        }
                        for spec in registered_strategies()
                    ]
                }
            )
            self._static["/strategies"] = body
        return body

    def _healthz_body(self) -> bytes:
        with self._counter_lock:
            served = self.requests_served
            errors = self.request_errors
            timeouts = self.timeouts
            stale_served = self.stale_served
        payload = {
            "status": "ok",
            "service": "hypar-serve",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "workers": self.engine.workers,
            "pool_active": self.engine.pool_active,
            # True once the sweep engine fell back to serial (pool lost
            # or never came up); results stay correct, throughput drops.
            "degraded": self.engine.pool_degraded,
            "endpoints": {
                path: f"{method} - {summary}"
                for path, (method, summary) in ENDPOINTS.items()
            },
            "result_cache": self.result_cache.stats(),
            "table_cache": shared_table_cache().stats(),
            # Which kernel backends actually compile here: "compiled"
            # requests silently run the NumPy path when numba is absent.
            "backends": {
                "default": kernels.get_default_backend(),
                "numba_available": kernels.NUMBA_AVAILABLE,
                "valid": list(kernels.VALID_BACKENDS),
            },
            # Cost-model providers a request's "cost_model" field may name
            # (the server's default plus every shipped profile pack).
            "cost_models": {
                "default": self.default_cost_model,
                "profiles": sorted(shipped_profiles()),
            },
            # Simulation engines a request's "sim_engine" field may name.
            "sim_engines": {
                "default": DEFAULT_SIM_ENGINE,
                "valid": list(SIM_ENGINES),
            },
            "requests": {
                "served": served,
                "errors": errors,
                "timeouts": timeouts,
                "stale_served": stale_served,
            },
        }
        if self.fault_injector is not None:
            payload["faults"] = self.fault_injector.stats()
        return _render(payload)
