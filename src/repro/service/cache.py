"""Thread-safe LRU response cache with single-flight computation.

The daemon caches *rendered response bytes* keyed by the deterministic
request hash of :mod:`repro.service.schemas`.  Two properties matter for a
threaded server:

* **LRU bound** -- at most ``limit`` responses are retained; the least
  recently *used* entry is evicted first (``--cache-size`` on the CLI).
* **Single flight** -- when several threads miss on the same key at once,
  exactly one computes while the rest wait for its result, so a burst of
  identical cold requests compiles the underlying cost table exactly once
  (waiters count as ``coalesced`` in the stats).

Two resilience features ride on top (see DESIGN.md "Resilience layer"):

* **Integrity digests** -- ``bytes`` values are stored with their SHA-256;
  a hit whose bytes no longer match (a poisoned entry) is dropped and
  recomputed instead of served, counted as ``poisoned``.  The
  :meth:`ResultCache.poison` hook corrupts an entry in place for the
  fault-injection tests.
* **Stale store** -- a bounded side copy of every stored response that
  eviction does *not* clear; :meth:`ResultCache.get_stale` lets the
  service answer from it when a fresh computation fails (engine pool
  lost mid-request).

Hit/miss/eviction/coalesced/poisoned counters surface through
``GET /healthz``.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Iterator, TypeVar

Value = TypeVar("Value")

#: Default response-cache capacity (``hypar serve --cache-size``).
DEFAULT_CACHE_SIZE = 256


class KeyedLocks:
    """A bounded registry of per-key locks.

    The response cache single-flights *identical* requests; this
    coalesces the next tier -- *different* requests sharing expensive
    intermediate state (e.g. ``/partition`` and ``/simulate`` for the
    same model/batch configuration both needing one compiled cost table).
    Holding the key's lock around the computation serializes those
    compiles, so the second requester finds the table cache warm.

    The locks live only in request threads of the daemon process; sweep
    worker processes never acquire them, so a ``fork`` mid-hold cannot
    deadlock a worker (the reason ``TableCache`` itself stays lock-free).
    """

    def __init__(self, limit: int = 512) -> None:
        self._lock = threading.Lock()
        self._locks: dict = {}
        self._limit = limit

    @contextlib.contextmanager
    def holding(self, key) -> Iterator[None]:
        with self._lock:
            if key not in self._locks and len(self._locks) >= self._limit:
                # Drop idle locks; anything currently held stays.
                self._locks = {
                    k: lock for k, lock in self._locks.items() if lock.locked()
                }
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            yield


class _InFlight:
    """One pending computation other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ResultCache:
    """LRU mapping of request-hash -> value, with per-key single flight."""

    def __init__(self, limit: int = DEFAULT_CACHE_SIZE) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}
        self._digests: dict[str, str] = {}
        self._stale: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
        self.poisoned = 0

    @staticmethod
    def _digest(value: bytes) -> str:
        return hashlib.sha256(value).hexdigest()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_compute(
        self, key: str, compute: Callable[[], Value]
    ) -> tuple[Value, bool]:
        """The cached value for ``key``, computing it on first use.

        Returns ``(value, served_from_cache)``.  Concurrent callers with
        the same key coalesce onto one computation; if that computation
        raises, every coalesced caller sees the same exception (requests
        are deterministic, so a retry would fail identically).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                digest = self._digests.get(key)
                if digest is not None and self._digest(entry) != digest:
                    # Integrity failure: the stored bytes were corrupted
                    # after the digest was taken.  Drop the entry and fall
                    # through to a recompute (requests are deterministic,
                    # so the replacement is the original response).
                    del self._entries[key]
                    self._digests.pop(key, None)
                    self.poisoned += 1
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry, True  # type: ignore[return-value]
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                owner = True
            else:
                owner = False
                self.coalesced += 1

        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True  # type: ignore[return-value]

        try:
            value = compute()
        except BaseException as error:
            with self._lock:
                self._inflight.pop(key, None)
            flight.error = error
            flight.event.set()
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            if isinstance(value, bytes):
                self._digests[key] = self._digest(value)
                self._stale[key] = value
                self._stale.move_to_end(key)
                while len(self._stale) > self.limit:
                    self._stale.popitem(last=False)
            while len(self._entries) > self.limit:
                evicted_key, _ = self._entries.popitem(last=False)
                self._digests.pop(evicted_key, None)
                self.evictions += 1
            self._inflight.pop(key, None)
        flight.value = value
        flight.event.set()
        return value, False

    def get_stale(self, key: str) -> bytes | None:
        """A previously stored (possibly since-evicted) response, if any.

        The stale store survives LRU eviction; the service falls back to
        it when a fresh computation fails, preferring an old-but-valid
        answer over a 500 while the stack is degraded.
        """
        with self._lock:
            return self._stale.get(key)

    def poison(self, key: str) -> bool:
        """Corrupt the stored bytes of ``key`` in place (fault injection).

        The digest is deliberately left untouched, so the next hit fails
        the integrity check and recomputes.  Returns whether an entry was
        corrupted.
        """
        with self._lock:
            entry = self._entries.get(key)
            if not isinstance(entry, bytes):
                return False
            self._entries[key] = b"\x00poisoned\x00" + entry[::-1]
            return True

    def clear(self) -> None:
        """Drop every entry and reset the counters (in-flight keys remain)."""
        with self._lock:
            self._entries.clear()
            self._digests.clear()
            self._stale.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.coalesced = 0
            self.poisoned = 0

    def stats(self) -> dict:
        """Counters for ``GET /healthz`` and the tests."""
        with self._lock:
            lookups = self.hits + self.misses + self.coalesced
            served = self.hits + self.coalesced
            return {
                "size": len(self._entries),
                "limit": self.limit,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
                "poisoned": self.poisoned,
                "stale_size": len(self._stale),
                "hit_rate": served / lookups if lookups else 0.0,
            }
