"""Thread-safe LRU response cache with single-flight computation.

The daemon caches *rendered response bytes* keyed by the deterministic
request hash of :mod:`repro.service.schemas`.  Two properties matter for a
threaded server:

* **LRU bound** -- at most ``limit`` responses are retained; the least
  recently *used* entry is evicted first (``--cache-size`` on the CLI).
* **Single flight** -- when several threads miss on the same key at once,
  exactly one computes while the rest wait for its result, so a burst of
  identical cold requests compiles the underlying cost table exactly once
  (waiters count as ``coalesced`` in the stats).

Hit/miss/eviction/coalesced counters surface through ``GET /healthz``.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from typing import Callable, Iterator, TypeVar

Value = TypeVar("Value")

#: Default response-cache capacity (``hypar serve --cache-size``).
DEFAULT_CACHE_SIZE = 256


class KeyedLocks:
    """A bounded registry of per-key locks.

    The response cache single-flights *identical* requests; this
    coalesces the next tier -- *different* requests sharing expensive
    intermediate state (e.g. ``/partition`` and ``/simulate`` for the
    same model/batch configuration both needing one compiled cost table).
    Holding the key's lock around the computation serializes those
    compiles, so the second requester finds the table cache warm.

    The locks live only in request threads of the daemon process; sweep
    worker processes never acquire them, so a ``fork`` mid-hold cannot
    deadlock a worker (the reason ``TableCache`` itself stays lock-free).
    """

    def __init__(self, limit: int = 512) -> None:
        self._lock = threading.Lock()
        self._locks: dict = {}
        self._limit = limit

    @contextlib.contextmanager
    def holding(self, key) -> Iterator[None]:
        with self._lock:
            if key not in self._locks and len(self._locks) >= self._limit:
                # Drop idle locks; anything currently held stays.
                self._locks = {
                    k: lock for k, lock in self._locks.items() if lock.locked()
                }
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            yield


class _InFlight:
    """One pending computation other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ResultCache:
    """LRU mapping of request-hash -> value, with per-key single flight."""

    def __init__(self, limit: int = DEFAULT_CACHE_SIZE) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_compute(
        self, key: str, compute: Callable[[], Value]
    ) -> tuple[Value, bool]:
        """The cached value for ``key``, computing it on first use.

        Returns ``(value, served_from_cache)``.  Concurrent callers with
        the same key coalesce onto one computation; if that computation
        raises, every coalesced caller sees the same exception (requests
        are deterministic, so a retry would fail identically).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, True  # type: ignore[return-value]
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                owner = True
            else:
                owner = False
                self.coalesced += 1

        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True  # type: ignore[return-value]

        try:
            value = compute()
        except BaseException as error:
            with self._lock:
                self._inflight.pop(key, None)
            flight.error = error
            flight.event.set()
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._inflight.pop(key, None)
        flight.value = value
        flight.event.set()
        return value, False

    def clear(self) -> None:
        """Drop every entry and reset the counters (in-flight keys remain)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.coalesced = 0

    def stats(self) -> dict:
        """Counters for ``GET /healthz`` and the tests."""
        with self._lock:
            lookups = self.hits + self.misses + self.coalesced
            served = self.hits + self.coalesced
            return {
                "size": len(self._entries),
                "limit": self.limit,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
                "hit_rate": served / lookups if lookups else 0.0,
            }
