"""Configuration of the accelerator array used by the HyPar architecture.

The paper's evaluation platform is a 2-D array of sixteen HMC-based
accelerators organised in four hierarchy levels and connected by either an
H-tree (the preferred topology) or a torus (Section 5, Figure 4).  The
array object ties together the per-accelerator models, the interconnect
parameters and the hierarchy depth, and is consumed by the training-step
simulator.
"""

from __future__ import annotations

import dataclasses
import math

from repro.accelerator.accelerator import Accelerator
from repro.accelerator.energy import EnergyModel
from repro.accelerator.hmc import HMCConfig
from repro.accelerator.pe_array import RowStationaryPU

#: Per-link bandwidth quoted by the paper: 1600 Mb/s.
LINK_BANDWIDTH_BITS = 1600e6
#: Aggregate network bandwidth quoted by the paper: 25.6 Gb/s (16 links).
TOTAL_NETWORK_BANDWIDTH_BITS = 25.6e9
#: The paper's array size.
DEFAULT_NUM_ACCELERATORS = 16


@dataclasses.dataclass(frozen=True)
class ArrayConfig:
    """An array of ``num_accelerators`` HMC-based accelerators.

    Attributes
    ----------
    num_accelerators:
        Number of accelerators; must be a power of two because the
        hierarchical partition halves the array recursively.
    link_bandwidth_bits:
        Bandwidth of one inter-accelerator link, in bits per second.
    pus_per_accelerator:
        Processing units per HMC logic die (see
        :class:`~repro.accelerator.accelerator.Accelerator`).
    hmc, pu, energy_model:
        Shared per-accelerator component models.
    """

    num_accelerators: int = DEFAULT_NUM_ACCELERATORS
    link_bandwidth_bits: float = LINK_BANDWIDTH_BITS
    pus_per_accelerator: int = 4
    hmc: HMCConfig = dataclasses.field(default_factory=HMCConfig)
    pu: RowStationaryPU = dataclasses.field(default_factory=RowStationaryPU)
    energy_model: EnergyModel = dataclasses.field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.num_accelerators <= 0:
            raise ValueError("num_accelerators must be positive")
        if self.num_accelerators & (self.num_accelerators - 1):
            raise ValueError(
                f"num_accelerators must be a power of two, got {self.num_accelerators}"
            )
        if self.link_bandwidth_bits <= 0:
            raise ValueError("link_bandwidth_bits must be positive")
        if self.pus_per_accelerator <= 0:
            raise ValueError("pus_per_accelerator must be positive")

    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels (``log2`` of the array size)."""
        return int(math.log2(self.num_accelerators))

    @property
    def link_bandwidth_bytes(self) -> float:
        """Per-link bandwidth in bytes per second."""
        return self.link_bandwidth_bits / 8.0

    @property
    def total_network_bandwidth_bits(self) -> float:
        """Aggregate bandwidth across every link of the array (bits/s)."""
        return self.link_bandwidth_bits * self.num_accelerators

    @property
    def total_compute_macs_per_second(self) -> float:
        """Aggregate peak MAC throughput of the whole array."""
        return (
            self.pu.peak_macs_per_second
            * self.pus_per_accelerator
            * self.num_accelerators
        )

    def accelerators(self) -> list[Accelerator]:
        """Instantiate the individual accelerator objects of the array."""
        return [
            Accelerator(
                index=index,
                hmc=self.hmc,
                pu=self.pu,
                num_pus=self.pus_per_accelerator,
                energy_model=self.energy_model,
            )
            for index in range(self.num_accelerators)
        ]

    def with_num_accelerators(self, num_accelerators: int) -> "ArrayConfig":
        """Copy of this configuration with a different array size (scalability study)."""
        return dataclasses.replace(self, num_accelerators=num_accelerators)


#: The paper's evaluation platform: sixteen accelerators, 1600 Mb/s links.
PAPER_ARRAY = ArrayConfig()
