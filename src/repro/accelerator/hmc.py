"""Hybrid Memory Cube (HMC) configuration.

Each accelerator of the HyPar architecture is built on one HMC cube
(Section 5): stacked DRAM dies over a logic die, connected by TSVs, with
the processing units integrated on the logic die.  The simulator only needs
the cube's aggregate characteristics, which the paper takes from the HMC
2.1 specification:

* 320 GB/s of internal (vault) DRAM bandwidth,
* 8 GB of stacked DRAM capacity.
"""

from __future__ import annotations

import dataclasses

GIGA = 1e9
GIBI = float(1 << 30)

#: Internal DRAM bandwidth of one HMC cube (bytes/second).
HMC_INTERNAL_BANDWIDTH = 320 * GIGA
#: Stacked DRAM capacity of one HMC cube (bytes).
HMC_CAPACITY = 8 * GIBI
#: Number of vaults in an HMC 2.1 cube.
HMC_NUM_VAULTS = 32


@dataclasses.dataclass(frozen=True)
class HMCConfig:
    """Aggregate characteristics of one HMC cube.

    Attributes
    ----------
    internal_bandwidth:
        Peak bandwidth between the logic die and the stacked DRAM (B/s).
    capacity:
        Stacked DRAM capacity (bytes).
    num_vaults:
        Number of independent vaults; per-vault bandwidth is
        ``internal_bandwidth / num_vaults``.
    """

    internal_bandwidth: float = HMC_INTERNAL_BANDWIDTH
    capacity: float = HMC_CAPACITY
    num_vaults: int = HMC_NUM_VAULTS

    def __post_init__(self) -> None:
        if self.internal_bandwidth <= 0:
            raise ValueError("internal_bandwidth must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.num_vaults <= 0:
            raise ValueError("num_vaults must be positive")

    @property
    def vault_bandwidth(self) -> float:
        """Bandwidth of one vault (B/s)."""
        return self.internal_bandwidth / self.num_vaults

    def access_time(self, num_bytes: float) -> float:
        """Time (s) to stream ``num_bytes`` through the cube's internal bandwidth."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.internal_bandwidth

    def fits(self, num_bytes: float) -> bool:
        """Whether a working set of ``num_bytes`` fits in the cube's DRAM."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes <= self.capacity
