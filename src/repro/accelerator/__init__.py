"""HMC-based accelerator substrate: compute, memory and energy models.

The paper's evaluation platform is an array of sixteen accelerators, each
built on a Hybrid Memory Cube with an Eyeriss-like row-stationary
processing unit on the logic die.  This package models the pieces the
event-driven simulation needs:

* :class:`~repro.accelerator.hmc.HMCConfig` -- stacked-DRAM bandwidth and capacity,
* :class:`~repro.accelerator.pe_array.RowStationaryPU` -- PE-array throughput,
* :class:`~repro.accelerator.energy.EnergyModel` -- per-operation energy costs,
* :class:`~repro.accelerator.accelerator.Accelerator` -- one cube + PU,
* :class:`~repro.accelerator.array.ArrayConfig` -- the whole array.
"""

from repro.accelerator.accelerator import Accelerator, LayerExecution
from repro.accelerator.array import (
    DEFAULT_NUM_ACCELERATORS,
    LINK_BANDWIDTH_BITS,
    PAPER_ARRAY,
    TOTAL_NETWORK_BANDWIDTH_BITS,
    ArrayConfig,
)
from repro.accelerator.energy import (
    ADD_ENERGY_PJ,
    DRAM_ACCESS_PJ,
    MULT_ENERGY_PJ,
    PAPER_ENERGY_MODEL,
    SRAM_ACCESS_PJ,
    EnergyModel,
)
from repro.accelerator.hmc import HMC_CAPACITY, HMC_INTERNAL_BANDWIDTH, HMCConfig
from repro.accelerator.pe_array import (
    PE_COLS,
    PE_ROWS,
    PU_BUFFER_BYTES,
    PU_CLOCK_HZ,
    PU_GOPS,
    RowStationaryPU,
)

__all__ = [
    "Accelerator",
    "LayerExecution",
    "ArrayConfig",
    "PAPER_ARRAY",
    "DEFAULT_NUM_ACCELERATORS",
    "LINK_BANDWIDTH_BITS",
    "TOTAL_NETWORK_BANDWIDTH_BITS",
    "EnergyModel",
    "PAPER_ENERGY_MODEL",
    "ADD_ENERGY_PJ",
    "MULT_ENERGY_PJ",
    "SRAM_ACCESS_PJ",
    "DRAM_ACCESS_PJ",
    "HMCConfig",
    "HMC_CAPACITY",
    "HMC_INTERNAL_BANDWIDTH",
    "RowStationaryPU",
    "PU_GOPS",
    "PU_BUFFER_BYTES",
    "PU_CLOCK_HZ",
    "PE_ROWS",
    "PE_COLS",
]
