"""Eyeriss-like row-stationary processing-unit model.

The paper's processing units (Section 5, Figure 4(b)) implement the
row-stationary dataflow of Eyeriss: weight rows are shared horizontally
across processing engines, feature-map rows diagonally, and partial sums
are accumulated vertically.  For the purpose of the HyPar evaluation only
the aggregate throughput matters; the paper specifies

* 168 processing engines arranged 12 x 14,
* 108 KB of on-chip buffer,
* 84.0 GOPS of compute density,
* a 250 MHz clock.

This module models the PU as a throughput/efficiency abstraction: a layer's
multiply-accumulate count is converted to cycles at a utilisation that
depends on how well the layer shape maps onto the 2-D array (small output
feature maps or few channels strand engines, exactly as in the real
row-stationary mapping).
"""

from __future__ import annotations

import dataclasses

from repro.nn.model import WeightedLayer

#: Operations per second quoted by the paper for one processing unit.  A MAC
#: counts as two operations (one multiply, one add).
PU_GOPS = 84.0e9
#: Processing-engine grid dimensions (rows of the systolic array x columns).
PE_ROWS = 12
PE_COLS = 14
#: On-chip buffer capacity (bytes).
PU_BUFFER_BYTES = 108 * 1024
#: Clock frequency (Hz).
PU_CLOCK_HZ = 250e6


@dataclasses.dataclass(frozen=True)
class RowStationaryPU:
    """Throughput model of one row-stationary processing unit.

    Attributes
    ----------
    gops:
        Peak throughput in operations per second (a MAC is two operations).
    pe_rows, pe_cols:
        Dimensions of the processing-engine grid.
    buffer_bytes:
        On-chip SRAM buffer size.
    clock_hz:
        Clock frequency, used to convert times to cycle counts.
    """

    gops: float = PU_GOPS
    pe_rows: int = PE_ROWS
    pe_cols: int = PE_COLS
    buffer_bytes: int = PU_BUFFER_BYTES
    clock_hz: float = PU_CLOCK_HZ

    def __post_init__(self) -> None:
        if self.gops <= 0:
            raise ValueError("gops must be positive")
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ValueError("PE grid dimensions must be positive")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    @property
    def num_pes(self) -> int:
        """Total number of processing engines (168 in the paper)."""
        return self.pe_rows * self.pe_cols

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput (a MAC is two operations)."""
        return self.gops / 2.0

    # ------------------------------------------------------------------
    # Mapping efficiency.
    # ------------------------------------------------------------------

    def utilization(self, layer: WeightedLayer) -> float:
        """Fraction of the PE grid kept busy by a layer's row-stationary mapping.

        In the row-stationary dataflow one logical mapping tile occupies a
        ``kernel_rows x output_rows`` region of the grid (filter rows map to
        PE rows, output-feature rows map to PE columns).  Layers whose
        dimensions do not cover the grid (for example a 1x1 convolution or a
        fully-connected layer, which has a single "row") leave engines idle
        unless multiple channels are folded in; we credit channel folding up
        to the grid size.
        """
        if layer.is_fc:
            # FC layers map as 1-row "convolutions"; channel folding over
            # the many output neurons keeps the columns busy but the row
            # dimension is recovered by interleaving input channels, which
            # Eyeriss does at roughly half efficiency.
            return 0.5
        kernel_rows = getattr(layer.spec, "kernel_size", 1)
        output_rows = layer.output_shape.height
        row_fill = min(1.0, kernel_rows / self.pe_rows * max(1, layer.output_shape.channels))
        col_fill = min(1.0, output_rows / self.pe_cols * max(1, layer.input_shape.channels))
        utilization = min(1.0, row_fill) * min(1.0, col_fill)
        # Even a poorly shaped layer keeps a meaningful fraction of the
        # array busy once folding across channels and batch is applied.
        return max(0.25, utilization)

    # ------------------------------------------------------------------
    # Timing.
    # ------------------------------------------------------------------

    def compute_time(self, macs: float, layer: WeightedLayer | None = None) -> float:
        """Time (s) to execute ``macs`` multiply-accumulates of one layer."""
        if macs < 0:
            raise ValueError(f"macs must be non-negative, got {macs}")
        if macs == 0:
            return 0.0
        utilization = self.utilization(layer) if layer is not None else 1.0
        return macs / (self.peak_macs_per_second * utilization)

    def compute_cycles(self, macs: float, layer: WeightedLayer | None = None) -> float:
        """Cycle count corresponding to :meth:`compute_time`."""
        return self.compute_time(macs, layer) * self.clock_hz
