"""Energy model with the per-operation costs used in the paper (Section 6.1).

The constants come from Horowitz, ISSCC 2014 (the paper's reference [116]):

* 32-bit floating-point ADD: 0.9 pJ
* 32-bit floating-point MULT: 3.7 pJ
* 32-bit SRAM access: 5.0 pJ
* 32-bit DRAM access: 640 pJ

All public methods return energy in **joules**.  The energy of one training
step decomposes into a *parallelism-independent* part (the arithmetic, the
on-chip buffer traffic and the local DRAM traffic, which are the same no
matter how tensors are partitioned because the total work is constant) and
a *communication* part (remote accesses between accelerators) that the
partition directly controls.  This is why the paper's energy-efficiency
gains (1.51x gmean) are smaller than its performance gains (3.39x gmean):
only the communication slice of the energy shrinks.
"""

from __future__ import annotations

import dataclasses

PICOJOULE = 1e-12

#: 32-bit float addition (pJ).
ADD_ENERGY_PJ = 0.9
#: 32-bit float multiplication (pJ).
MULT_ENERGY_PJ = 3.7
#: 32-bit SRAM (on-chip buffer) access (pJ).
SRAM_ACCESS_PJ = 5.0
#: 32-bit DRAM access (pJ).
DRAM_ACCESS_PJ = 640.0
#: Per-hop link traversal for one 32-bit word (pJ).  Board-level SerDes
#: links cost tens of picojoules per bit once both PHYs and the trace are
#: counted; 30 pJ/bit (960 pJ per 32-bit word) per hop is used here.
LINK_HOP_PJ = 960.0


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs, in picojoules per 32-bit word/operation.

    Attributes
    ----------
    add_pj, mult_pj:
        Floating-point ALU costs.
    sram_pj, dram_pj:
        Local memory-hierarchy access costs.
    link_hop_pj:
        Cost for one word to traverse one interconnect hop.
    sram_accesses_per_mac:
        Average number of on-chip buffer accesses per multiply-accumulate.
        The row-stationary dataflow (Eyeriss) reuses weights and feature
        rows inside the PE array, so this is far below the naive three
        reads + one write; one buffer access per MAC reflects the high
        reuse the dataflow achieves on the layer shapes used here.
    """

    add_pj: float = ADD_ENERGY_PJ
    mult_pj: float = MULT_ENERGY_PJ
    sram_pj: float = SRAM_ACCESS_PJ
    dram_pj: float = DRAM_ACCESS_PJ
    link_hop_pj: float = LINK_HOP_PJ
    sram_accesses_per_mac: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "add_pj",
            "mult_pj",
            "sram_pj",
            "dram_pj",
            "link_hop_pj",
            "sram_accesses_per_mac",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"EnergyModel.{name} must be non-negative")

    # ------------------------------------------------------------------
    # Arithmetic.
    # ------------------------------------------------------------------

    @property
    def mac_pj(self) -> float:
        """One multiply-accumulate = one multiplication + one addition."""
        return self.mult_pj + self.add_pj

    def compute_energy(self, macs: float) -> float:
        """Arithmetic energy (J) for ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError(f"macs must be non-negative, got {macs}")
        return macs * self.mac_pj * PICOJOULE

    def sram_energy(self, macs: float) -> float:
        """On-chip buffer energy (J) for the buffer traffic of ``macs`` MACs."""
        if macs < 0:
            raise ValueError(f"macs must be non-negative, got {macs}")
        return macs * self.sram_accesses_per_mac * self.sram_pj * PICOJOULE

    # ------------------------------------------------------------------
    # Memory and interconnect.
    # ------------------------------------------------------------------

    def dram_energy(self, words: float) -> float:
        """Local DRAM energy (J) for ``words`` 32-bit accesses."""
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        return words * self.dram_pj * PICOJOULE

    def communication_energy(self, words: float, hops: float = 1.0) -> float:
        """Energy (J) to move ``words`` 32-bit words to another accelerator.

        One remote word costs a DRAM read at the source, ``hops`` link
        traversals and a DRAM write at the destination.
        """
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        per_word = 2 * self.dram_pj + hops * self.link_hop_pj
        return words * per_word * PICOJOULE

    def communication_energy_bytes(self, num_bytes: float, hops: float = 1.0) -> float:
        """Same as :meth:`communication_energy` but taking bytes of traffic."""
        return self.communication_energy(num_bytes / 4.0, hops)


#: The default model with the paper's published constants.
PAPER_ENERGY_MODEL = EnergyModel()
