"""A single HMC-based DNN training accelerator.

One accelerator = one HMC cube (local DRAM) + one row-stationary processing
unit on its logic die + a share of the array's interconnect.  The class
exposes the per-layer compute time, local memory traffic and energy that
the training-step simulator composes into whole-network numbers.
"""

from __future__ import annotations

import dataclasses

from repro.accelerator.energy import EnergyModel
from repro.accelerator.hmc import HMCConfig
from repro.accelerator.pe_array import RowStationaryPU
from repro.nn.model import WeightedLayer


@dataclasses.dataclass(frozen=True)
class LayerExecution:
    """Cost of running one layer pass (forward, backward or gradient) locally."""

    layer_name: str
    macs: float
    compute_seconds: float
    dram_seconds: float
    dram_words: float
    compute_energy: float
    sram_energy: float
    dram_energy: float

    @property
    def seconds(self) -> float:
        """Local execution time: compute and DRAM streaming overlap imperfectly,
        so the slower of the two bounds the pass (double-buffered dataflow)."""
        return max(self.compute_seconds, self.dram_seconds)

    @property
    def energy(self) -> float:
        return self.compute_energy + self.sram_energy + self.dram_energy


@dataclasses.dataclass(frozen=True)
class Accelerator:
    """One HMC-based accelerator with an Eyeriss-like processing unit.

    Attributes
    ----------
    index:
        Position of this accelerator in the array (0-based).
    hmc:
        Local-memory configuration.
    pu:
        Processing-unit throughput model.
    num_pus:
        Number of processing units on the cube's logic die.  Neurocube-style
        HMC accelerators place one PU per vault group; the paper does not
        state the count, so it is a calibration knob (see DESIGN.md) --
        energy is unaffected, only the compute-bound latency scales.
    energy_model:
        Per-operation energy costs.
    """

    index: int = 0
    hmc: HMCConfig = dataclasses.field(default_factory=HMCConfig)
    pu: RowStationaryPU = dataclasses.field(default_factory=RowStationaryPU)
    num_pus: int = 4
    energy_model: EnergyModel = dataclasses.field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"accelerator index must be non-negative, got {self.index}")
        if self.num_pus <= 0:
            raise ValueError(f"num_pus must be positive, got {self.num_pus}")

    def execute_layer_pass(
        self,
        layer: WeightedLayer,
        macs: float,
        dram_words: float,
    ) -> LayerExecution:
        """Cost of one pass of one layer on this accelerator.

        Parameters
        ----------
        layer:
            The weighted layer being executed (used for the row-stationary
            utilisation estimate).
        macs:
            Multiply-accumulates this accelerator performs for the pass
            (its share of the partitioned work).
        dram_words:
            32-bit words streamed between the local HMC and the processing
            unit for the pass (inputs read + outputs written).
        """
        if macs < 0 or dram_words < 0:
            raise ValueError("macs and dram_words must be non-negative")
        compute_seconds = self.pu.compute_time(macs, layer) / self.num_pus
        dram_seconds = self.hmc.access_time(dram_words * 4.0)
        return LayerExecution(
            layer_name=layer.name,
            macs=macs,
            compute_seconds=compute_seconds,
            dram_seconds=dram_seconds,
            dram_words=dram_words,
            compute_energy=self.energy_model.compute_energy(macs),
            sram_energy=self.energy_model.sram_energy(macs),
            dram_energy=self.energy_model.dram_energy(dram_words),
        )
