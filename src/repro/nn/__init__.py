"""DNN model-description substrate.

HyPar's partition search and evaluation only need the *shapes* of the
tensors flowing through a network, never the tensor values.  This package
provides the layer specifications, shape-inference machinery and model
builder used to describe the ten evaluation networks of the paper, plus the
model zoo itself (:mod:`repro.nn.model_zoo`).

Public API
----------

``LayerSpec`` hierarchy
    :class:`~repro.nn.layers.ConvLayer`, :class:`~repro.nn.layers.FCLayer`,
    together with the auxiliary :class:`~repro.nn.layers.PoolSpec` and
    :class:`~repro.nn.layers.Activation` descriptors.

:class:`~repro.nn.model.DNNModel`
    An ordered collection of weighted layers with resolved shapes.

:func:`~repro.nn.model.build_model`
    Build a :class:`DNNModel` from an input shape and a list of layer
    specifications, running shape inference.

:mod:`repro.nn.model_zoo`
    ``sfc()``, ``sconv()``, ``lenet_c()``, ``cifar_c()``, ``alexnet()``,
    ``vgg_a()`` ... ``vgg_e()`` and the :func:`~repro.nn.model_zoo.get_model`
    / :func:`~repro.nn.model_zoo.all_models` helpers.
"""

from repro.nn.layers import (
    Activation,
    ConvLayer,
    FCLayer,
    LayerSpec,
    LayerType,
    PoolSpec,
)
from repro.nn.model import DNNModel, WeightedLayer, build_model
from repro.nn.model_zoo import (
    all_model_builders,
    GRAPH_MODEL_BUILDERS,
    MODEL_BUILDERS,
    alexnet,
    all_graph_models,
    all_models,
    cifar_c,
    get_model,
    inception_s,
    lenet_c,
    resnet_s,
    sconv,
    sfc,
    vgg_a,
    vgg_b,
    vgg_c,
    vgg_d,
    vgg_e,
)
from repro.nn.shapes import (
    FeatureMapShape,
    MergeOp,
    conv_output_shape,
    merge_shape,
    pool_output_shape,
)

__all__ = [
    "Activation",
    "ConvLayer",
    "FCLayer",
    "LayerSpec",
    "LayerType",
    "PoolSpec",
    "DNNModel",
    "WeightedLayer",
    "build_model",
    "FeatureMapShape",
    "MergeOp",
    "conv_output_shape",
    "merge_shape",
    "pool_output_shape",
    "MODEL_BUILDERS",
    "GRAPH_MODEL_BUILDERS",
    "all_model_builders",
    "get_model",
    "all_models",
    "all_graph_models",
    "resnet_s",
    "inception_s",
    "sfc",
    "sconv",
    "lenet_c",
    "cifar_c",
    "alexnet",
    "vgg_a",
    "vgg_b",
    "vgg_c",
    "vgg_d",
    "vgg_e",
]
