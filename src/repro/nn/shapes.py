"""Feature-map shape arithmetic.

The communication model of HyPar (Section 3 of the paper) is driven purely
by tensor sizes: the feature maps ``F_l`` of size ``B x [H_l x W_l x C_l]``,
the kernels ``W_l`` of size ``[K x K x C_l] x C_{l+1}`` (or ``[N_in x
N_out]`` for fully-connected layers), the errors ``E_l`` (same shape as
``F_l``) and the gradients ``dW_l`` (same shape as ``W_l``).  This module
provides the small amount of shape arithmetic needed to derive those sizes
layer by layer.
"""

from __future__ import annotations

import dataclasses
import enum
import math


class ShapeError(ValueError):
    """Raised when a layer specification produces an invalid shape."""


class MergeOp(enum.Enum):
    """How a multi-input layer combines its predecessors' outputs.

    ``ADD``
        Element-wise sum (the residual merge of ResNet-style skip
        connections).  Every predecessor must produce the same shape, and
        the merged shape equals it.

    ``CONCAT``
        Channel concatenation (the multi-branch merge of Inception-style
        blocks).  Predecessors must agree on the spatial dimensions; the
        merged channel count is the sum of the branch channel counts.
    """

    ADD = "add"
    CONCAT = "concat"

    @classmethod
    def parse(cls, value: "MergeOp | str") -> "MergeOp":
        if isinstance(value, MergeOp):
            return value
        normalized = value.strip().lower()
        for op in cls:
            if op.value == normalized:
                return op
        raise ValueError(f"unknown merge op {value!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class FeatureMapShape:
    """Spatial shape of one feature-map slice (one sample), ``H x W x C``.

    The batch dimension is tracked separately (it is a property of the
    training configuration, not of the network topology), so a
    ``FeatureMapShape`` describes a single sample.

    For fully-connected layers the convention used throughout the library
    is ``height = width = 1`` and ``channels = number of neurons``, which
    makes the conv and fc tensor-size formulas coincide.
    """

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for name in ("height", "width", "channels"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ShapeError(
                    f"FeatureMapShape.{name} must be a positive integer, got {value!r}"
                )

    @property
    def elements(self) -> int:
        """Number of scalar elements in one feature-map slice."""
        return self.height * self.width * self.channels

    @property
    def is_vector(self) -> bool:
        """True when the shape is a flat vector (fully-connected style)."""
        return self.height == 1 and self.width == 1

    def flattened(self) -> "FeatureMapShape":
        """Return the shape flattened into a vector of the same size."""
        return FeatureMapShape(1, 1, self.elements)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_vector:
            return f"[{self.channels}]"
        return f"[{self.height}x{self.width}x{self.channels}]"


def _conv_dim(in_dim: int, kernel: int, stride: int, padding: int) -> int:
    """Output size of one spatial dimension of a convolution."""
    out = (in_dim + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output dimension: "
            f"in={in_dim}, kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def conv_output_shape(
    in_shape: FeatureMapShape,
    kernel_size: int,
    out_channels: int,
    stride: int = 1,
    padding: int = 0,
) -> FeatureMapShape:
    """Shape of the output feature map of a convolutional layer.

    Parameters mirror the usual convolution hyper-parameters.  Square
    kernels and symmetric padding are assumed, matching every network used
    in the paper's evaluation.
    """
    if kernel_size <= 0 or stride <= 0 or padding < 0 or out_channels <= 0:
        raise ShapeError(
            "conv hyper-parameters must be positive (padding may be zero): "
            f"kernel={kernel_size}, stride={stride}, padding={padding}, "
            f"out_channels={out_channels}"
        )
    out_h = _conv_dim(in_shape.height, kernel_size, stride, padding)
    out_w = _conv_dim(in_shape.width, kernel_size, stride, padding)
    return FeatureMapShape(out_h, out_w, out_channels)


def pool_output_shape(
    in_shape: FeatureMapShape,
    pool_size: int,
    stride: int | None = None,
    ceil_mode: bool = False,
) -> FeatureMapShape:
    """Shape after a (max or average) pooling operation.

    ``stride`` defaults to ``pool_size`` (non-overlapping pooling), which is
    what Lenet, AlexNet and the VGG family use.  ``ceil_mode`` rounds the
    output size up instead of down, matching Caffe-style pooling used by the
    original AlexNet/Lenet prototxt definitions.
    """
    if pool_size <= 0:
        raise ShapeError(f"pool_size must be positive, got {pool_size}")
    stride = pool_size if stride is None else stride
    if stride <= 0:
        raise ShapeError(f"pool stride must be positive, got {stride}")

    def _dim(in_dim: int) -> int:
        raw = (in_dim - pool_size) / stride + 1
        out = math.ceil(raw) if ceil_mode else math.floor(raw)
        if out <= 0:
            raise ShapeError(
                f"pooling produces non-positive output dimension: "
                f"in={in_dim}, pool={pool_size}, stride={stride}"
            )
        return int(out)

    return FeatureMapShape(_dim(in_shape.height), _dim(in_shape.width), in_shape.channels)


def add_merge_shape(shapes: "list[FeatureMapShape] | tuple[FeatureMapShape, ...]") -> FeatureMapShape:
    """Shape of an ``ADD`` (residual) merge: all branch shapes must agree."""
    if not shapes:
        raise ShapeError("a merge needs at least one input shape")
    first = shapes[0]
    for shape in shapes[1:]:
        if shape != first:
            raise ShapeError(
                f"ADD merge requires identical branch shapes, got {first} and {shape}"
            )
    return first


def concat_merge_shape(
    shapes: "list[FeatureMapShape] | tuple[FeatureMapShape, ...]",
) -> FeatureMapShape:
    """Shape of a ``CONCAT`` (channel) merge: spatial dims agree, channels sum."""
    if not shapes:
        raise ShapeError("a merge needs at least one input shape")
    first = shapes[0]
    for shape in shapes[1:]:
        if (shape.height, shape.width) != (first.height, first.width):
            raise ShapeError(
                f"CONCAT merge requires matching spatial dimensions, "
                f"got {first} and {shape}"
            )
    return FeatureMapShape(
        first.height, first.width, sum(shape.channels for shape in shapes)
    )


def merge_shape(
    op: MergeOp, shapes: "list[FeatureMapShape] | tuple[FeatureMapShape, ...]"
) -> FeatureMapShape:
    """Shape produced by merging ``shapes`` with ``op`` (see :class:`MergeOp`)."""
    if op is MergeOp.ADD:
        return add_merge_shape(shapes)
    return concat_merge_shape(shapes)
