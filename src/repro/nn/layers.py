"""Layer specifications for the networks used in the HyPar evaluation.

A *layer specification* is a declarative description of one weighted layer:
its type (convolutional or fully-connected), kernel hyper-parameters, the
activation function applied to its output and an optional pooling stage that
follows it.  HyPar's Algorithm 1 takes exactly this information as input
("layer type: conv or fc, kernel sizes, parameter for pooling, activation
function" -- Algorithm 1, Input 3).

Pooling and activation are folded into the weighted layer that precedes them
because they carry no weights (HyPar only assigns parallelism to *weighted*
layers) and because element-wise activations never generate communication.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.nn.shapes import (
    FeatureMapShape,
    MergeOp,
    ShapeError,
    conv_output_shape,
    pool_output_shape,
)


class LayerType(enum.Enum):
    """Kind of weighted layer recognised by the partitioner."""

    CONV = "conv"
    FC = "fc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Activation(enum.Enum):
    """Element-wise activation applied after a weighted layer.

    Activations are element-wise, so they never change tensor shapes and
    never generate inter-accelerator communication; they only matter for the
    compute/energy model (each activation is counted as one ALU operation
    per output element).
    """

    NONE = "none"
    RELU = "relu"
    SIGMOID = "sigmoid"
    TANH = "tanh"
    SOFTMAX = "softmax"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class PoolSpec:
    """Non-weighted pooling stage that follows a weighted layer.

    Attributes
    ----------
    size:
        Pooling window (square).
    stride:
        Pooling stride; ``None`` means non-overlapping (stride == size).
    kind:
        ``"max"`` or ``"avg"``; only affects the compute model.
    ceil_mode:
        Round output dimensions up (Caffe-style) instead of down.
    """

    size: int
    stride: int | None = None
    kind: str = "max"
    ceil_mode: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ShapeError(f"pool size must be positive, got {self.size}")
        if self.stride is not None and self.stride <= 0:
            raise ShapeError(f"pool stride must be positive, got {self.stride}")
        if self.kind not in ("max", "avg"):
            raise ValueError(f"pool kind must be 'max' or 'avg', got {self.kind!r}")

    def apply(self, shape: FeatureMapShape) -> FeatureMapShape:
        """Shape of the feature map after this pooling stage."""
        return pool_output_shape(shape, self.size, self.stride, self.ceil_mode)


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """Base class for weighted-layer specifications.

    Sub-classes implement :meth:`output_shape`, :meth:`weight_elements` and
    :meth:`macs_per_sample`, which is everything the communication and
    compute models need.

    ``inputs`` names the predecessor layers this layer consumes.  ``None``
    (the default) means "the previous layer in the spec list" -- the
    historical chain behaviour -- so plain sequential networks need not
    mention it.  Naming more than one predecessor makes the layer a *merge
    point*: the branch outputs are combined with ``merge`` (element-wise
    ``ADD`` for residual connections, channel ``CONCAT`` for
    Inception-style blocks) before entering the layer.
    """

    name: str
    activation: Activation = Activation.RELU
    pool: PoolSpec | None = None
    inputs: tuple[str, ...] | None = None
    merge: MergeOp = MergeOp.ADD

    @property
    def layer_type(self) -> LayerType:
        raise NotImplementedError

    def output_shape(self, in_shape: FeatureMapShape) -> FeatureMapShape:
        """Shape of ``F_{l+1}`` (before pooling) given the input shape ``F_l``."""
        raise NotImplementedError

    def post_pool_shape(self, in_shape: FeatureMapShape) -> FeatureMapShape:
        """Shape handed to the next layer (output shape after optional pooling)."""
        shape = self.output_shape(in_shape)
        if self.pool is not None:
            shape = self.pool.apply(shape)
        return shape

    def weight_elements(self, in_shape: FeatureMapShape) -> int:
        """Number of scalar elements in ``W_l`` (biases are ignored, as in the paper)."""
        raise NotImplementedError

    def macs_per_sample(self, in_shape: FeatureMapShape) -> int:
        """Multiply-accumulate operations in the forward pass for one sample."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ConvLayer(LayerSpec):
    """Convolutional layer ``[K x K x C_l] x C_{l+1}``.

    Attributes
    ----------
    out_channels:
        ``C_{l+1}``, the number of output channels (filters).
    kernel_size:
        ``K``, the height/width of the (square) kernel.
    stride, padding:
        Usual convolution hyper-parameters.
    """

    out_channels: int = 0
    kernel_size: int = 3
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ShapeError(
                f"conv layer {self.name!r}: out_channels must be positive, "
                f"got {self.out_channels}"
            )
        if self.kernel_size <= 0 or self.stride <= 0 or self.padding < 0:
            raise ShapeError(
                f"conv layer {self.name!r}: invalid hyper-parameters "
                f"(kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})"
            )

    @property
    def layer_type(self) -> LayerType:
        return LayerType.CONV

    def output_shape(self, in_shape: FeatureMapShape) -> FeatureMapShape:
        return conv_output_shape(
            in_shape,
            kernel_size=self.kernel_size,
            out_channels=self.out_channels,
            stride=self.stride,
            padding=self.padding,
        )

    def weight_elements(self, in_shape: FeatureMapShape) -> int:
        return self.kernel_size * self.kernel_size * in_shape.channels * self.out_channels

    def macs_per_sample(self, in_shape: FeatureMapShape) -> int:
        out = self.output_shape(in_shape)
        per_output_element = self.kernel_size * self.kernel_size * in_shape.channels
        return out.elements * per_output_element


@dataclasses.dataclass(frozen=True)
class FCLayer(LayerSpec):
    """Fully-connected layer with ``out_features`` output neurons.

    The input is implicitly flattened: an FC layer fed a ``[H x W x C]``
    feature map sees ``H*W*C`` input neurons, which is how AlexNet/VGG
    transition from their convolutional stacks to their classifiers.
    """

    out_features: int = 0

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(
                f"fc layer {self.name!r}: out_features must be positive, "
                f"got {self.out_features}"
            )

    @property
    def layer_type(self) -> LayerType:
        return LayerType.FC

    def output_shape(self, in_shape: FeatureMapShape) -> FeatureMapShape:
        return FeatureMapShape(1, 1, self.out_features)

    def weight_elements(self, in_shape: FeatureMapShape) -> int:
        return in_shape.elements * self.out_features

    def macs_per_sample(self, in_shape: FeatureMapShape) -> int:
        return in_shape.elements * self.out_features
