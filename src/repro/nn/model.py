"""Network container with resolved shapes.

:class:`DNNModel` is the object the rest of the library operates on.  It is
built from an input shape plus a list of :class:`~repro.nn.layers.LayerSpec`
instances by :func:`build_model`, which runs shape inference once so that
every weighted layer carries its concrete input/output feature-map shapes
and weight count.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Sequence

from repro.nn.layers import LayerSpec, LayerType
from repro.nn.shapes import FeatureMapShape, ShapeError


@dataclasses.dataclass(frozen=True)
class WeightedLayer:
    """One weighted layer with its shapes resolved.

    Attributes
    ----------
    index:
        Position of this layer among the *weighted* layers (0-based).
    spec:
        The original layer specification.
    input_shape:
        Shape of one slice of ``F_l`` (the layer's input feature map).
    output_shape:
        Shape of one slice of ``F_{l+1}`` *before* any pooling; this is the
        tensor that appears in the communication model (model parallelism
        communicates partial sums of ``F_{l+1}``).
    post_pool_shape:
        Shape handed to the next layer after the optional pooling stage.
    weight_count:
        Number of scalar weights in ``W_l`` (== number of elements of
        ``dW_l``).
    macs_per_sample:
        Forward-pass multiply-accumulates for one input sample.
    """

    index: int
    spec: LayerSpec
    input_shape: FeatureMapShape
    output_shape: FeatureMapShape
    post_pool_shape: FeatureMapShape
    weight_count: int
    macs_per_sample: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def layer_type(self) -> LayerType:
        return self.spec.layer_type

    @property
    def is_conv(self) -> bool:
        return self.spec.layer_type is LayerType.CONV

    @property
    def is_fc(self) -> bool:
        return self.spec.layer_type is LayerType.FC

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}({self.layer_type}): {self.input_shape} -> "
            f"{self.output_shape}, weights={self.weight_count}"
        )


@dataclasses.dataclass(frozen=True)
class DNNModel:
    """A deep neural network described by its weighted layers.

    Instances are immutable; iterate over them to get
    :class:`WeightedLayer` objects in forward order.
    """

    name: str
    input_shape: FeatureMapShape
    layers: tuple[WeightedLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ShapeError(f"model {self.name!r} has no weighted layers")

    def __iter__(self) -> Iterator[WeightedLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> WeightedLayer:
        return self.layers[index]

    @property
    def num_weighted_layers(self) -> int:
        return len(self.layers)

    @property
    def num_conv_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.is_conv)

    @property
    def num_fc_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.is_fc)

    @property
    def total_weights(self) -> int:
        """Total number of scalar weights in the model."""
        return sum(layer.weight_count for layer in self.layers)

    def total_macs(self, batch_size: int) -> int:
        """Forward-pass multiply-accumulates for a whole batch."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return batch_size * sum(layer.macs_per_sample for layer in self.layers)

    def layer_by_name(self, name: str) -> WeightedLayer:
        """Look a weighted layer up by its name.

        Raises
        ------
        KeyError
            If no layer with that name exists.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no layer named {name!r}")

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def summary(self) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Model {self.name!r}: input {self.input_shape}"]
        for layer in self.layers:
            lines.append(
                f"  [{layer.index:2d}] {layer.name:<10s} {str(layer.layer_type):<4s} "
                f"{str(layer.input_shape):>16s} -> {str(layer.output_shape):>16s} "
                f"weights={layer.weight_count:>12,d} macs/sample={layer.macs_per_sample:>14,d}"
            )
        lines.append(
            f"  total: {self.num_weighted_layers} weighted layers "
            f"({self.num_conv_layers} conv, {self.num_fc_layers} fc), "
            f"{self.total_weights:,d} weights"
        )
        return "\n".join(lines)


def build_model(
    name: str,
    input_shape: FeatureMapShape | Sequence[int],
    specs: Iterable[LayerSpec],
) -> DNNModel:
    """Run shape inference over ``specs`` and return a :class:`DNNModel`.

    Parameters
    ----------
    name:
        Model name (used in reports and error messages).
    input_shape:
        Shape of one input sample, either a :class:`FeatureMapShape` or an
        ``(H, W, C)`` triple.
    specs:
        Weighted-layer specifications in forward order.  Layer names must be
        unique.
    """
    if not isinstance(input_shape, FeatureMapShape):
        height, width, channels = input_shape
        input_shape = FeatureMapShape(int(height), int(width), int(channels))

    resolved: list[WeightedLayer] = []
    seen_names: set[str] = set()
    current = input_shape
    for index, spec in enumerate(specs):
        if spec.name in seen_names:
            raise ValueError(f"duplicate layer name {spec.name!r} in model {name!r}")
        seen_names.add(spec.name)

        if spec.layer_type is LayerType.FC and not current.is_vector:
            # Implicit flatten when transitioning from a conv stack to the
            # fully-connected classifier.
            layer_input = current.flattened()
        else:
            layer_input = current

        output_shape = spec.output_shape(layer_input)
        post_pool = spec.post_pool_shape(layer_input)
        resolved.append(
            WeightedLayer(
                index=index,
                spec=spec,
                input_shape=layer_input,
                output_shape=output_shape,
                post_pool_shape=post_pool,
                weight_count=spec.weight_elements(layer_input),
                macs_per_sample=spec.macs_per_sample(layer_input),
            )
        )
        current = post_pool

    return DNNModel(name=name, input_shape=input_shape, layers=tuple(resolved))
