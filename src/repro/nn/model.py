"""Network container with resolved shapes.

:class:`DNNModel` is the object the rest of the library operates on.  It is
built from an input shape plus a list of :class:`~repro.nn.layers.LayerSpec`
instances by :func:`build_model`, which runs shape inference once so that
every weighted layer carries its concrete input/output feature-map shapes
and weight count.

The model IR is a **directed acyclic graph** over the weighted layers:
every layer records the indices of its predecessor layers
(:attr:`WeightedLayer.inputs`), multi-input layers merge their branch
outputs (:class:`~repro.nn.shapes.MergeOp`: residual ``ADD`` or channel
``CONCAT``) before consuming them, and :attr:`DNNModel.edges` exposes the
canonical edge list (ordered by consumer index, then input position) that
the cost tables, the simulator and the partitioned executor index their
per-boundary quantities by.  The layer tuple is always a topological
linearization -- predecessors have strictly smaller indices -- and a plain
sequential network degenerates to the historical chain
(``edges == ((0, 1), (1, 2), ...)``, :attr:`DNNModel.is_chain`).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Iterable, Iterator, Sequence

from repro.nn.layers import LayerSpec, LayerType
from repro.nn.shapes import FeatureMapShape, MergeOp, ShapeError, merge_shape


@dataclasses.dataclass(frozen=True)
class WeightedLayer:
    """One weighted layer with its shapes resolved.

    Attributes
    ----------
    index:
        Position of this layer among the *weighted* layers (0-based).
    spec:
        The original layer specification.
    input_shape:
        Shape of one slice of ``F_l`` (the layer's input feature map).  For
        a multi-input layer this is the *merged* shape of its branches.
    output_shape:
        Shape of one slice of ``F_{l+1}`` *before* any pooling; this is the
        tensor that appears in the communication model (model parallelism
        communicates partial sums of ``F_{l+1}``).
    post_pool_shape:
        Shape handed to the consumer layers after the optional pooling stage.
    weight_count:
        Number of scalar weights in ``W_l`` (== number of elements of
        ``dW_l``).
    macs_per_sample:
        Forward-pass multiply-accumulates for one input sample.
    inputs:
        Indices of the predecessor layers whose outputs feed this layer, in
        declaration order.  ``None`` (the default) resolves to the chain
        predecessor ``(index - 1,)`` -- or ``()`` for the first layer, which
        reads the training data.
    merge:
        How a multi-input layer combines its predecessors' outputs
        (irrelevant when ``len(inputs) <= 1``).
    """

    index: int
    spec: LayerSpec
    input_shape: FeatureMapShape
    output_shape: FeatureMapShape
    post_pool_shape: FeatureMapShape
    weight_count: int
    macs_per_sample: int
    inputs: tuple[int, ...] | None = None
    merge: MergeOp = MergeOp.ADD

    def __post_init__(self) -> None:
        if self.inputs is None:
            resolved = (self.index - 1,) if self.index > 0 else ()
            object.__setattr__(self, "inputs", resolved)
        else:
            object.__setattr__(self, "inputs", tuple(self.inputs))
        for source in self.inputs:
            if not 0 <= source < self.index:
                raise ShapeError(
                    f"layer {self.spec.name!r} (index {self.index}) cannot take "
                    f"input from layer index {source}; predecessors must come "
                    "earlier in the layer order"
                )
        if len(set(self.inputs)) != len(self.inputs):
            raise ShapeError(
                f"layer {self.spec.name!r} lists a duplicate predecessor: "
                f"{self.inputs}"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def layer_type(self) -> LayerType:
        return self.spec.layer_type

    @property
    def is_conv(self) -> bool:
        return self.spec.layer_type is LayerType.CONV

    @property
    def is_fc(self) -> bool:
        return self.spec.layer_type is LayerType.FC

    @property
    def is_merge(self) -> bool:
        """True when the layer combines more than one predecessor output."""
        return len(self.inputs) > 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}({self.layer_type}): {self.input_shape} -> "
            f"{self.output_shape}, weights={self.weight_count}"
        )


@dataclasses.dataclass(frozen=True)
class DNNModel:
    """A deep neural network described by its weighted layers.

    Instances are immutable; iterate over them to get
    :class:`WeightedLayer` objects in forward (topological) order.
    """

    name: str
    input_shape: FeatureMapShape
    layers: tuple[WeightedLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ShapeError(f"model {self.name!r} has no weighted layers")
        has_consumer = [False] * len(self.layers)
        for layer in self.layers:
            for source in layer.inputs:
                has_consumer[source] = True
        for layer in self.layers[:-1]:
            if not has_consumer[layer.index]:
                raise ShapeError(
                    f"model {self.name!r}: layer {layer.name!r} has no consumer; "
                    "only the final layer may be the network output"
                )

    def __iter__(self) -> Iterator[WeightedLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> WeightedLayer:
        return self.layers[index]

    @property
    def num_weighted_layers(self) -> int:
        return len(self.layers)

    @property
    def num_conv_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.is_conv)

    @property
    def num_fc_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.is_fc)

    @functools.cached_property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Canonical edge list ``(source, destination)`` of the layer DAG.

        Ordered by destination index, then by the destination's input
        position -- the order every edge-indexed table (``CostTable.inter``,
        the simulator's per-edge transfers) uses.  A sequential network
        yields the chain ``((0, 1), (1, 2), ...)``.
        """
        return tuple(
            (source, layer.index) for layer in self.layers for source in layer.inputs
        )

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @functools.cached_property
    def is_chain(self) -> bool:
        """True when the layer graph is the historical linear chain."""
        return all(
            layer.inputs == ((layer.index - 1,) if layer.index else ())
            for layer in self.layers
        )

    @functools.cached_property
    def _consumers_by_layer(self) -> tuple[tuple[int, ...], ...]:
        consumers: list[list[int]] = [[] for _ in self.layers]
        for source, destination in self.edges:
            consumers[source].append(destination)
        return tuple(tuple(destinations) for destinations in consumers)

    def consumers(self, index: int) -> tuple[int, ...]:
        """Indices of the layers consuming layer ``index``'s output, ascending."""
        return self._consumers_by_layer[index]

    @property
    def total_weights(self) -> int:
        """Total number of scalar weights in the model."""
        return sum(layer.weight_count for layer in self.layers)

    def total_macs(self, batch_size: int) -> int:
        """Forward-pass multiply-accumulates for a whole batch."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return batch_size * sum(layer.macs_per_sample for layer in self.layers)

    def layer_by_name(self, name: str) -> WeightedLayer:
        """Look a weighted layer up by its name.

        Raises
        ------
        KeyError
            If no layer with that name exists.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no layer named {name!r}")

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def summary(self) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Model {self.name!r}: input {self.input_shape}"]
        for layer in self.layers:
            lines.append(
                f"  [{layer.index:2d}] {layer.name:<10s} {str(layer.layer_type):<4s} "
                f"{str(layer.input_shape):>16s} -> {str(layer.output_shape):>16s} "
                f"weights={layer.weight_count:>12,d} macs/sample={layer.macs_per_sample:>14,d}"
            )
        lines.append(
            f"  total: {self.num_weighted_layers} weighted layers "
            f"({self.num_conv_layers} conv, {self.num_fc_layers} fc), "
            f"{self.total_weights:,d} weights"
        )
        return "\n".join(lines)


def build_model(
    name: str,
    input_shape: FeatureMapShape | Sequence[int],
    specs: Iterable[LayerSpec],
) -> DNNModel:
    """Run shape inference over ``specs`` and return a :class:`DNNModel`.

    Parameters
    ----------
    name:
        Model name (used in reports and error messages).
    input_shape:
        Shape of one input sample, either a :class:`FeatureMapShape` or an
        ``(H, W, C)`` triple.
    specs:
        Weighted-layer specifications in forward order.  Layer names must be
        unique.  A spec's ``inputs`` may name any *earlier* layers; with it
        unset the layer consumes its predecessor in the list (the chain
        default), so sequential models build exactly as before.
    """
    if not isinstance(input_shape, FeatureMapShape):
        height, width, channels = input_shape
        input_shape = FeatureMapShape(int(height), int(width), int(channels))

    resolved: list[WeightedLayer] = []
    name_to_index: dict[str, int] = {}
    for index, spec in enumerate(specs):
        if spec.name in name_to_index:
            raise ValueError(f"duplicate layer name {spec.name!r} in model {name!r}")

        merge = MergeOp.parse(spec.merge)
        if spec.inputs is None:
            pred_indices: tuple[int, ...] = (index - 1,) if index > 0 else ()
        else:
            if index == 0 and spec.inputs:
                raise ValueError(
                    f"layer {spec.name!r} is the first layer of model {name!r} "
                    "and cannot name predecessors"
                )
            pred_indices = ()
            for input_name in spec.inputs:
                if input_name not in name_to_index:
                    raise ValueError(
                        f"layer {spec.name!r} of model {name!r} references "
                        f"unknown or later layer {input_name!r}; inputs must "
                        "name earlier layers"
                    )
                pred_indices += (name_to_index[input_name],)

        if not pred_indices:
            current = input_shape
        else:
            branch_shapes = [resolved[i].post_pool_shape for i in pred_indices]
            current = merge_shape(merge, branch_shapes)

        if spec.layer_type is LayerType.FC and not current.is_vector:
            # Implicit flatten when transitioning from a conv stack to the
            # fully-connected classifier.
            layer_input = current.flattened()
        else:
            layer_input = current

        output_shape = spec.output_shape(layer_input)
        post_pool = spec.post_pool_shape(layer_input)
        resolved.append(
            WeightedLayer(
                index=index,
                spec=spec,
                input_shape=layer_input,
                output_shape=output_shape,
                post_pool_shape=post_pool,
                weight_count=spec.weight_elements(layer_input),
                macs_per_sample=spec.macs_per_sample(layer_input),
                inputs=pred_indices,
                merge=merge,
            )
        )
        name_to_index[spec.name] = index

    return DNNModel(name=name, input_shape=input_shape, layers=tuple(resolved))
