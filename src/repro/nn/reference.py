"""Numerical reference implementation of forward / backward / gradient.

The HyPar cost model never touches tensor *values* -- but the paper's whole
communication model rests on claims about where partial sums and tensor
re-layouts appear when a layer is partitioned (Figure 1, Equations 1-3).
This module provides a small, dependency-free (numpy-only) implementation
of the three training computations

* forward:   ``F_{l+1} = f(F_l (*) W_l)``            (Equation 1)
* backward:  ``E_l = (E_{l+1} (*) W_l^*) . f'(F_l)``  (Equation 2)
* gradient:  ``dW_l = F_l^* (*) E_{l+1}``             (Equation 3)

for fully-connected and convolutional layers, so that
:mod:`repro.core.execution` can execute a *partitioned* training step and
verify numerically that it produces exactly the same activations, errors
and gradients as the monolithic computation -- with communication happening
exactly where (and in exactly the amounts) the communication model says.

Layout conventions
------------------
* Fully-connected activations: ``(batch, features)``.
* Convolutional activations: ``(batch, height, width, channels)``.
* Convolution kernels: ``(k, k, in_channels, out_channels)``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.nn.layers import Activation, ConvLayer, FCLayer
from repro.nn.model import DNNModel, WeightedLayer
from repro.nn.shapes import MergeOp


class UnsupportedLayerError(ValueError):
    """Raised when a layer uses features the reference executor does not model."""


# ----------------------------------------------------------------------
# Activations.
# ----------------------------------------------------------------------


def activation_forward(z: np.ndarray, activation: Activation) -> np.ndarray:
    """Apply the element-wise activation ``f``."""
    if activation is Activation.NONE:
        return z
    if activation is Activation.RELU:
        return np.maximum(z, 0.0)
    raise UnsupportedLayerError(
        f"reference execution supports NONE and RELU activations, got {activation}"
    )


def activation_backward(z: np.ndarray, grad_output: np.ndarray, activation: Activation) -> np.ndarray:
    """Multiply by ``f'`` evaluated at the pre-activation ``z``."""
    if activation is Activation.NONE:
        return grad_output
    if activation is Activation.RELU:
        return grad_output * (z > 0.0)
    raise UnsupportedLayerError(
        f"reference execution supports NONE and RELU activations, got {activation}"
    )


# ----------------------------------------------------------------------
# Fully-connected layers.
# ----------------------------------------------------------------------


def fc_forward(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``F_l -> W_l => F_{l+1}``: a plain matrix multiplication."""
    return x @ weight


def fc_backward_input(grad_output: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``E_{l+1} -> W_l^T => E_l``."""
    return grad_output @ weight.T


def fc_backward_weight(x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
    """``F_l^T -> E_{l+1} => dW_l``."""
    return x.T @ grad_output


# ----------------------------------------------------------------------
# Convolutional layers (im2col based).
# ----------------------------------------------------------------------


def _output_dim(in_dim: int, kernel: int, stride: int, padding: int) -> int:
    return (in_dim + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold image patches into rows.

    ``x`` has shape ``(B, H, W, C)``; the result has shape
    ``(B, OH, OW, k*k*C)`` where each row is the flattened receptive field
    of one output position.
    """
    batch, height, width, channels = x.shape
    out_h = _output_dim(height, kernel, stride, padding)
    out_w = _output_dim(width, kernel, stride, padding)
    padded = np.pad(
        x, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="constant"
    )
    columns = np.empty((batch, out_h, out_w, kernel * kernel * channels), dtype=x.dtype)
    for row in range(out_h):
        for col in range(out_w):
            patch = padded[
                :,
                row * stride : row * stride + kernel,
                col * stride : col * stride + kernel,
                :,
            ]
            columns[:, row, col, :] = patch.reshape(batch, -1)
    return columns


def col2im(
    columns: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch-gradients back onto the (padded) image, summing overlaps."""
    batch, height, width, channels = input_shape
    out_h = _output_dim(height, kernel, stride, padding)
    out_w = _output_dim(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, height + 2 * padding, width + 2 * padding, channels), dtype=columns.dtype
    )
    for row in range(out_h):
        for col in range(out_w):
            patch = columns[:, row, col, :].reshape(batch, kernel, kernel, channels)
            padded[
                :,
                row * stride : row * stride + kernel,
                col * stride : col * stride + kernel,
                :,
            ] += patch
    if padding:
        return padded[:, padding:-padding, padding:-padding, :]
    return padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Convolution forward pass via im2col + matrix multiplication."""
    kernel = weight.shape[0]
    out_channels = weight.shape[3]
    columns = im2col(x, kernel, stride, padding)
    batch, out_h, out_w, _ = columns.shape
    flat = columns.reshape(batch * out_h * out_w, -1)
    result = flat @ weight.reshape(-1, out_channels)
    return result.reshape(batch, out_h, out_w, out_channels)


def conv2d_backward_input(
    grad_output: np.ndarray,
    weight: np.ndarray,
    input_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Gradient of the convolution with respect to its input."""
    kernel = weight.shape[0]
    out_channels = weight.shape[3]
    batch, out_h, out_w, _ = grad_output.shape
    flat = grad_output.reshape(batch * out_h * out_w, out_channels)
    columns = (flat @ weight.reshape(-1, out_channels).T).reshape(
        batch, out_h, out_w, -1
    )
    return col2im(columns, input_shape, kernel, stride, padding)


def conv2d_backward_weight(
    x: np.ndarray, grad_output: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Gradient of the convolution with respect to its kernel."""
    in_channels = x.shape[3]
    out_channels = grad_output.shape[3]
    columns = im2col(x, kernel, stride, padding)
    batch, out_h, out_w, _ = columns.shape
    flat_columns = columns.reshape(batch * out_h * out_w, -1)
    flat_grad = grad_output.reshape(batch * out_h * out_w, out_channels)
    grad_weight = flat_columns.T @ flat_grad
    return grad_weight.reshape(kernel, kernel, in_channels, out_channels)


# ----------------------------------------------------------------------
# Whole-network reference execution.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class LayerState:
    """Cached tensors for one layer of one training step."""

    layer: WeightedLayer
    input: np.ndarray
    pre_activation: np.ndarray
    output: np.ndarray
    grad_weight: np.ndarray | None = None
    grad_input: np.ndarray | None = None


class ReferenceNetwork:
    """A numpy network mirroring a :class:`~repro.nn.model.DNNModel`.

    Only the features needed for the partitioned-execution validation are
    supported: convolutional layers without pooling, fully-connected layers,
    and NONE / RELU activations.  The layer graph may be a DAG: layer
    inputs are the merge of their predecessors' activations (``ADD`` /
    ``CONCAT``) and backward errors join across the fan-out.  Weights are
    initialised from a seeded RNG so runs are reproducible.
    """

    def __init__(self, model: DNNModel, seed: int = 0, dtype=np.float64) -> None:
        self.model = model
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        for layer in model:
            spec = layer.spec
            if spec.pool is not None:
                raise UnsupportedLayerError(
                    f"layer {layer.name!r}: pooling is not supported by the reference executor"
                )
            if isinstance(spec, ConvLayer):
                shape = (
                    spec.kernel_size,
                    spec.kernel_size,
                    layer.input_shape.channels,
                    spec.out_channels,
                )
            elif isinstance(spec, FCLayer):
                shape = (layer.input_shape.elements, spec.out_features)
            else:  # pragma: no cover - defensive
                raise UnsupportedLayerError(f"unsupported layer spec {type(spec).__name__}")
            scale = 1.0 / np.sqrt(np.prod(shape[:-1]))
            self.weights.append(rng.standard_normal(shape).astype(dtype) * scale)

    # ------------------------------------------------------------------
    # Inputs.
    # ------------------------------------------------------------------

    def random_batch(self, batch_size: int, seed: int = 1) -> np.ndarray:
        """A reproducible random input batch with the model's input shape."""
        rng = np.random.default_rng(seed)
        shape = self.model.input_shape
        if shape.is_vector:
            return rng.standard_normal((batch_size, shape.channels)).astype(self.dtype)
        return rng.standard_normal(
            (batch_size, shape.height, shape.width, shape.channels)
        ).astype(self.dtype)

    # ------------------------------------------------------------------
    # Single-layer primitives shared with the partitioned executor.
    # ------------------------------------------------------------------

    def layer_forward(self, index: int, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """The linear part of layer ``index``'s forward pass (no activation)."""
        layer = self.model[index]
        spec = layer.spec
        if isinstance(spec, FCLayer):
            flat = x.reshape(x.shape[0], -1)
            return fc_forward(flat, weight)
        return conv2d_forward(x, weight, spec.stride, spec.padding)

    def layer_backward_input(
        self, index: int, grad_output: np.ndarray, weight: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Gradient with respect to layer ``index``'s input."""
        layer = self.model[index]
        spec = layer.spec
        if isinstance(spec, FCLayer):
            grad = fc_backward_input(grad_output, weight)
            return grad.reshape(x.shape)
        return conv2d_backward_input(
            grad_output, weight, x.shape, spec.stride, spec.padding
        )

    def layer_backward_weight(
        self, index: int, x: np.ndarray, grad_output: np.ndarray
    ) -> np.ndarray:
        """Gradient with respect to layer ``index``'s weights."""
        layer = self.model[index]
        spec = layer.spec
        if isinstance(spec, FCLayer):
            flat = x.reshape(x.shape[0], -1)
            return fc_backward_weight(flat, grad_output)
        return conv2d_backward_weight(
            x, grad_output, spec.kernel_size, spec.stride, spec.padding
        )

    # ------------------------------------------------------------------
    # DAG plumbing: merging branch outputs and splitting branch errors.
    # ------------------------------------------------------------------

    def merge_inputs(self, index: int, branch_outputs: Sequence[np.ndarray]) -> np.ndarray:
        """The merged input tensor of layer ``index`` from its branch outputs.

        ``ADD`` sums the branches (in input order, so partitioned
        executions reproduce the association exactly); ``CONCAT`` stacks
        them along the channel (last) axis.  Single-input layers pass
        through.
        """
        if len(branch_outputs) == 1:
            return branch_outputs[0]
        layer = self.model[index]
        if layer.merge is MergeOp.ADD:
            merged = branch_outputs[0]
            for branch in branch_outputs[1:]:
                merged = merged + branch
            return merged
        return np.concatenate(list(branch_outputs), axis=-1)

    def split_input_error(
        self, index: int, grad_input: np.ndarray
    ) -> List[np.ndarray]:
        """Per-branch error pieces of layer ``index``'s input gradient.

        The inverse of :meth:`merge_inputs`: an ``ADD`` merge routes the
        whole gradient to every branch, a ``CONCAT`` merge routes each
        branch its channel slice.
        """
        layer = self.model[index]
        if len(layer.inputs) == 1:
            return [grad_input]
        if layer.merge is MergeOp.ADD:
            return [grad_input] * len(layer.inputs)
        pieces: List[np.ndarray] = []
        offset = 0
        for source in layer.inputs:
            channels = self.model[source].output_shape.channels
            pieces.append(grad_input[..., offset : offset + channels])
            offset += channels
        return pieces

    # ------------------------------------------------------------------
    # Whole-step execution.
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> List[LayerState]:
        """Run the forward pass, returning the cached per-layer state.

        Layers execute in (topological) index order; a layer's input is
        the merge of its predecessors' activations, or ``x`` for the
        first layer.
        """
        states: List[LayerState] = []
        for index, layer in enumerate(self.model):
            if layer.inputs:
                current = self.merge_inputs(
                    index, [states[source].output for source in layer.inputs]
                )
            else:
                current = x
            pre_activation = self.layer_forward(index, current, self.weights[index])
            output = activation_forward(pre_activation, layer.spec.activation)
            states.append(
                LayerState(
                    layer=layer,
                    input=current,
                    pre_activation=pre_activation,
                    output=output,
                )
            )
        return states

    def backward(self, states: Sequence[LayerState], grad_output: np.ndarray) -> None:
        """Run error backward and gradient computation, filling the states in place.

        The error at a layer's output is the sum (ascending consumer
        order) of the pieces its consumers back-propagate -- the whole
        input gradient across an ``ADD`` merge, the matching channel slice
        across a ``CONCAT`` merge.  ``grad_output`` seeds the final layer
        (the network's single sink).
        """
        num_layers = len(states)
        for index in reversed(range(num_layers)):
            state = states[index]
            consumers = self.model.consumers(index)
            if not consumers:
                grad = grad_output
            else:
                pieces = []
                for destination in consumers:  # ascending; all already done
                    position = self.model[destination].inputs.index(index)
                    pieces.append(
                        self.split_input_error(
                            destination, states[destination].grad_input
                        )[position]
                    )
                grad = pieces[0]
                for piece in pieces[1:]:
                    grad = grad + piece
            grad = activation_backward(
                state.pre_activation, grad, state.layer.spec.activation
            )
            state.grad_weight = self.layer_backward_weight(index, state.input, grad)
            state.grad_input = self.layer_backward_input(
                index, grad, self.weights[index], state.input
            )

    def training_step(
        self, x: np.ndarray, grad_output: np.ndarray
    ) -> List[LayerState]:
        """Forward + backward + gradient for one step (weights are not updated)."""
        states = self.forward(x)
        if grad_output.shape != states[-1].output.shape:
            raise ValueError(
                f"grad_output shape {grad_output.shape} does not match the network "
                f"output shape {states[-1].output.shape}"
            )
        self.backward(states, grad_output)
        return states
