"""The evaluation networks: the paper's ten chains plus a branching-DAG zoo.

Section 6.1 of the paper evaluates HyPar on ten models spanning three
datasets:

* ``SFC`` and ``SCONV`` -- two purpose-built extreme cases for MNIST
  (Table 3): ``SFC`` is purely fully-connected (784-8192-8192-8192-10) and
  ``SCONV`` is purely convolutional.
* ``Lenet-c`` (MNIST) and ``Cifar-c`` (CIFAR-10) -- the classic Caffe
  reference networks.
* ``AlexNet`` and ``VGG-A`` ... ``VGG-E`` (ImageNet) -- with the
  hyper-parameters from Krizhevsky et al. (2012) and Simonyan & Zisserman
  (2015) respectively.

The number of weighted layers ranges from four (``SFC``, ``SCONV``,
``Lenet-c``) to nineteen (``VGG-E``), matching the paper's description.

Beyond the paper, the zoo carries small *branching* networks exercising the
DAG model IR (:data:`GRAPH_MODEL_BUILDERS`): ``ResNet-S`` (residual ``ADD``
merges) and ``Inception-S`` (multi-branch ``CONCAT`` merges).  They are
deliberately pooling-free with ``NONE``-activated classifiers so the whole
pipeline -- search, placement, numerically-validated partitioned execution
and simulation -- runs on them end to end.  The paper's reporting helpers
(:func:`all_models`, :data:`MODEL_BUILDERS`) keep returning exactly the ten
chains so every figure reproduction stays byte-identical.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.nn.layers import Activation, ConvLayer, FCLayer, LayerSpec, PoolSpec
from repro.nn.model import DNNModel, build_model
from repro.nn.shapes import MergeOp

MNIST_INPUT = (28, 28, 1)
CIFAR_INPUT = (32, 32, 3)
IMAGENET_INPUT = (224, 224, 3)
ALEXNET_INPUT = (227, 227, 3)


def sfc() -> DNNModel:
    """``SFC``: the all-fully-connected extreme case (Table 3).

    Architecture 784-8192-8192-8192-10; four weighted layers, no
    convolutions.  The paper reports 98.28% MNIST accuracy for this network
    and uses it to show that Model Parallelism can beat Data Parallelism
    when every layer is fully connected.
    """
    return build_model(
        "SFC",
        MNIST_INPUT,
        [
            FCLayer(name="fc1", out_features=8192),
            FCLayer(name="fc2", out_features=8192),
            FCLayer(name="fc3", out_features=8192),
            FCLayer(name="fc4", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def sconv() -> DNNModel:
    """``SCONV``: the all-convolutional extreme case (Table 3).

    ``20@5x5, 50@5x5 (2x2 max pool), 50@5x5, 10@5x5 (2x2 max pool)``; four
    weighted layers, no fully-connected layers.  The paper reports 98.71%
    MNIST accuracy and uses it to show that pure Data Parallelism is optimal
    when every layer is convolutional.
    """
    return build_model(
        "SCONV",
        MNIST_INPUT,
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv3", out_channels=50, kernel_size=5),
            ConvLayer(
                name="conv4",
                out_channels=10,
                kernel_size=5,
                pool=PoolSpec(2),
                activation=Activation.SOFTMAX,
            ),
        ],
    )


def lenet_c() -> DNNModel:
    """``Lenet-c``: the Caffe LeNet reference network for MNIST.

    Two convolutional layers followed by two fully-connected layers (four
    weighted layers), as in Figure 5 (c) of the paper.
    """
    return build_model(
        "Lenet-c",
        MNIST_INPUT,
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            FCLayer(name="fc1", out_features=500),
            FCLayer(name="fc2", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def cifar_c() -> DNNModel:
    """``Cifar-c``: the Caffe CIFAR-10 "quick" reference network.

    Three convolutional layers and two fully-connected layers (five weighted
    layers), as in Figure 5 (d).
    """
    return build_model(
        "Cifar-c",
        CIFAR_INPUT,
        [
            ConvLayer(
                name="conv1",
                out_channels=32,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, ceil_mode=True),
            ),
            ConvLayer(
                name="conv2",
                out_channels=32,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, kind="avg", ceil_mode=True),
            ),
            ConvLayer(
                name="conv3",
                out_channels=64,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, kind="avg", ceil_mode=True),
            ),
            FCLayer(name="fc1", out_features=64),
            FCLayer(name="fc2", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def alexnet() -> DNNModel:
    """``AlexNet`` (Krizhevsky et al., 2012): five conv + three fc layers."""
    return build_model(
        "AlexNet",
        ALEXNET_INPUT,
        [
            ConvLayer(
                name="conv1",
                out_channels=96,
                kernel_size=11,
                stride=4,
                pool=PoolSpec(3, stride=2),
            ),
            ConvLayer(
                name="conv2",
                out_channels=256,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2),
            ),
            ConvLayer(name="conv3", out_channels=384, kernel_size=3, padding=1),
            ConvLayer(name="conv4", out_channels=384, kernel_size=3, padding=1),
            ConvLayer(
                name="conv5",
                out_channels=256,
                kernel_size=3,
                padding=1,
                pool=PoolSpec(3, stride=2),
            ),
            FCLayer(name="fc1", out_features=4096),
            FCLayer(name="fc2", out_features=4096),
            FCLayer(name="fc3", out_features=1000, activation=Activation.SOFTMAX),
        ],
    )


def _vgg_classifier() -> List[LayerSpec]:
    """The three fully-connected layers shared by all VGG variants."""
    return [
        FCLayer(name="fc1", out_features=4096),
        FCLayer(name="fc2", out_features=4096),
        FCLayer(name="fc3", out_features=1000, activation=Activation.SOFTMAX),
    ]


def _vgg_conv(name: str, channels: int, kernel_size: int = 3, pool: bool = False) -> ConvLayer:
    """One VGG convolution: 3x3 pad 1 by default, optional trailing 2x2 max pool."""
    padding = 1 if kernel_size == 3 else 0
    return ConvLayer(
        name=name,
        out_channels=channels,
        kernel_size=kernel_size,
        padding=padding,
        pool=PoolSpec(2) if pool else None,
    )


def vgg_a() -> DNNModel:
    """``VGG-A`` (configuration A, 11 weighted layers)."""
    return build_model(
        "VGG-A",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64, pool=True),
            _vgg_conv("conv2_1", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_b() -> DNNModel:
    """``VGG-B`` (configuration B, 13 weighted layers)."""
    return build_model(
        "VGG-B",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_c() -> DNNModel:
    """``VGG-C`` (configuration C, 16 weighted layers; the extra per-block convs are 1x1)."""
    return build_model(
        "VGG-C",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256, kernel_size=1, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512, kernel_size=1, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512, kernel_size=1, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_d() -> DNNModel:
    """``VGG-D`` (configuration D, 16 weighted layers, all 3x3 -- the common "VGG-16")."""
    return build_model(
        "VGG-D",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_e() -> DNNModel:
    """``VGG-E`` (configuration E, 19 weighted layers -- the common "VGG-19")."""
    return build_model(
        "VGG-E",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256),
            _vgg_conv("conv3_4", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512),
            _vgg_conv("conv4_4", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512),
            _vgg_conv("conv5_4", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def resnet_s() -> DNNModel:
    """``ResNet-S``: a small residual network exercising ``ADD`` merges.

    CIFAR-style stem plus three basic blocks.  Each block is two 3x3
    convolutions whose output is summed with the block input by the *next*
    weighted layer (the merge is attached to the consumer, so the residual
    sum is materialised exactly where it is consumed); the two downsampling
    transitions use stride-2 convolutions instead of pooling, which keeps
    the network executable by the numerical reference executor.  Ten
    weighted layers, three ``ADD`` merge points, twelve edges (nine chain
    edges plus three skips).
    """
    return build_model(
        "ResNet-S",
        CIFAR_INPUT,
        [
            ConvLayer(name="stem", out_channels=16, kernel_size=3, padding=1),
            ConvLayer(name="res1a", out_channels=16, kernel_size=3, padding=1),
            ConvLayer(name="res1b", out_channels=16, kernel_size=3, padding=1),
            ConvLayer(
                name="down1",
                out_channels=32,
                kernel_size=3,
                stride=2,
                padding=1,
                inputs=("stem", "res1b"),
                merge=MergeOp.ADD,
            ),
            ConvLayer(name="res2a", out_channels=32, kernel_size=3, padding=1),
            ConvLayer(name="res2b", out_channels=32, kernel_size=3, padding=1),
            ConvLayer(
                name="down2",
                out_channels=64,
                kernel_size=3,
                stride=2,
                padding=1,
                inputs=("down1", "res2b"),
                merge=MergeOp.ADD,
            ),
            ConvLayer(name="res3a", out_channels=64, kernel_size=3, padding=1),
            ConvLayer(name="res3b", out_channels=64, kernel_size=3, padding=1),
            FCLayer(
                name="fc",
                out_features=10,
                activation=Activation.NONE,
                inputs=("down2", "res3b"),
                merge=MergeOp.ADD,
            ),
        ],
    )


def inception_s() -> DNNModel:
    """``Inception-S``: a small multi-branch network exercising ``CONCAT`` merges.

    A stem convolution feeds two Inception-style blocks.  Each block fans
    out into a 1x1 branch, a 3x3 branch and a 1x1→5x5 branch; the branch
    outputs are channel-concatenated by the consuming layer (a 1x1
    reduction after the first block, the classifier after the second).
    Pooling-free with same-padding branches, so every branch keeps the
    spatial dimensions and the whole network runs through the reference
    executor.  Eleven weighted layers, two ``CONCAT`` merge points.
    """
    return build_model(
        "Inception-S",
        CIFAR_INPUT,
        [
            ConvLayer(name="stem", out_channels=16, kernel_size=3, padding=1),
            ConvLayer(name="a1x1", out_channels=8, kernel_size=1, inputs=("stem",)),
            ConvLayer(
                name="a3x3", out_channels=16, kernel_size=3, padding=1, inputs=("stem",)
            ),
            ConvLayer(name="a5red", out_channels=8, kernel_size=1, inputs=("stem",)),
            ConvLayer(name="a5x5", out_channels=16, kernel_size=5, padding=2),
            ConvLayer(
                name="reduce",
                out_channels=32,
                kernel_size=1,
                inputs=("a1x1", "a3x3", "a5x5"),
                merge=MergeOp.CONCAT,
            ),
            ConvLayer(name="b1x1", out_channels=16, kernel_size=1, inputs=("reduce",)),
            ConvLayer(
                name="b3x3", out_channels=32, kernel_size=3, padding=1, inputs=("reduce",)
            ),
            ConvLayer(name="b5red", out_channels=8, kernel_size=1, inputs=("reduce",)),
            ConvLayer(name="b5x5", out_channels=16, kernel_size=5, padding=2),
            FCLayer(
                name="fc",
                out_features=10,
                activation=Activation.NONE,
                inputs=("b1x1", "b3x3", "b5x5"),
                merge=MergeOp.CONCAT,
            ),
        ],
    )


#: Default transformer depth (in attention+MLP blocks) used when a
#: parameterized builder is invoked without an explicit ``layers=``.
DEFAULT_TRANSFORMER_LAYERS = 12


def _transformer_chain(
    name: str, hidden: int, input_shape: Tuple[int, int, int], vocab: int, blocks: int
) -> DNNModel:
    """A GPT/BERT-style chain: embed stem, repeated blocks, softmax head.

    Each block is the four weighted projections of one transformer layer
    (``qkv`` fused 3h, attention output ``proj`` h, MLP ``up`` 4h, MLP
    ``down`` h), so a depth-``N`` model is a chain of ``4N + 2`` weighted
    layers.  Per-token shapes (``1x1`` spatial, ``hidden`` channels) keep
    the chain IR -- and therefore every existing search engine -- working
    unchanged; the interior repetition is exactly what the DP memoization
    of :meth:`repro.core.costs.CostTable.dp_partition` exploits.
    """
    if blocks < 1:
        raise ValueError(f"layers must be a positive block count, got {blocks}")
    specs: List[LayerSpec] = [FCLayer(name="embed", out_features=hidden)]
    for i in range(blocks):
        specs += [
            FCLayer(name=f"b{i}_qkv", out_features=3 * hidden),
            FCLayer(name=f"b{i}_proj", out_features=hidden),
            FCLayer(name=f"b{i}_up", out_features=4 * hidden),
            FCLayer(name=f"b{i}_down", out_features=hidden),
        ]
    specs.append(FCLayer(name="head", out_features=vocab, activation=Activation.SOFTMAX))
    return build_model(name, input_shape, specs)


def gpt_s(layers: int = DEFAULT_TRANSFORMER_LAYERS) -> DNNModel:
    """``gpt_s``: a small-GPT-proportioned transformer chain, depth ``layers``.

    Hidden width 192 (so the fused QKV is 576 and the MLP expands to 768),
    vocabulary 1000.  ``layers`` counts attention+MLP blocks; the built
    model is named ``gpt_s-{layers}`` and has ``4 * layers + 2`` weighted
    layers.
    """
    return _transformer_chain(f"gpt_s-{layers}", 192, (1, 1, 64), 1000, layers)


def bert_s(layers: int = DEFAULT_TRANSFORMER_LAYERS) -> DNNModel:
    """``bert_s``: a small-BERT-proportioned transformer chain, depth ``layers``.

    Wider than :func:`gpt_s` (hidden 256, vocabulary 2000, 128-channel
    token input) so the two families exercise different cost tables at the
    same depth.  Named ``bert_s-{layers}``, ``4 * layers + 2`` weighted
    layers.
    """
    return _transformer_chain(f"bert_s-{layers}", 256, (1, 1, 128), 2000, layers)


def _transformer_dag(
    name: str, hidden: int, input_shape: Tuple[int, int, int], vocab: int, blocks: int
) -> DNNModel:
    """A residual transformer *DAG*: chain blocks plus ``ADD`` skips.

    Same four weighted projections per block as
    :func:`_transformer_chain`, but every block past the first merges its
    ``qkv`` input from the previous block's ``down`` output *and* a
    residual skip from the previous block's ``proj`` output (both width
    ``hidden``, so the ``ADD`` shapes agree).  The skips span the
    previous block's MLP, so ``up``/``down`` become branch interiors and
    the cut-vertex DP alternates between a trivial connector segment and
    a two-interior enumeration segment -- a block-space period of two
    that the DAG repetition memoizer detects and jumps.
    """
    if blocks < 1:
        raise ValueError(f"layers must be a positive block count, got {blocks}")
    specs: List[LayerSpec] = [FCLayer(name="embed", out_features=hidden)]
    for i in range(blocks):
        if i == 0:
            qkv = FCLayer(name=f"b{i}_qkv", out_features=3 * hidden)
        else:
            qkv = FCLayer(
                name=f"b{i}_qkv",
                out_features=3 * hidden,
                inputs=(f"b{i - 1}_down", f"b{i - 1}_proj"),
                merge=MergeOp.ADD,
            )
        specs += [
            qkv,
            FCLayer(name=f"b{i}_proj", out_features=hidden),
            FCLayer(name=f"b{i}_up", out_features=4 * hidden),
            FCLayer(name=f"b{i}_down", out_features=hidden),
        ]
    specs.append(FCLayer(name="head", out_features=vocab, activation=Activation.SOFTMAX))
    return build_model(name, input_shape, specs)


def gpt_r(layers: int = DEFAULT_TRANSFORMER_LAYERS) -> DNNModel:
    """``gpt_r``: :func:`gpt_s` proportions with residual ``ADD`` skips.

    The residual variant of the small-GPT chain: identical widths (hidden
    192, vocabulary 1000) and the same ``4 * layers + 2`` weighted
    layers, but each block's fused QKV adds the previous block's
    attention output to its MLP output, making the model a branching DAG
    routed through the cut-vertex dynamic program.  Named
    ``gpt_r-{layers}``.
    """
    return _transformer_dag(f"gpt_r-{layers}", 192, (1, 1, 64), 1000, layers)


#: Parameterized (depth-``N``) builders.  Unlike :data:`MODEL_BUILDERS`
#: entries these accept a ``layers=`` block count; name resolution accepts
#: both the bare family name (``gpt_s`` -> default depth) and the
#: depth-suffixed spelling (``gpt_s-96``, ``bert_s-24``, ``gpt_r-48``).
PARAMETERIZED_MODEL_BUILDERS: Dict[str, Callable[..., DNNModel]] = {
    "gpt_s": gpt_s,
    "bert_s": bert_s,
    "gpt_r": gpt_r,
}

#: Ordered mapping from canonical model name to its builder.  The order
#: matches the x-axis of Figures 6-8 and 12 of the paper.
MODEL_BUILDERS: Dict[str, Callable[[], DNNModel]] = {
    "SFC": sfc,
    "SCONV": sconv,
    "Lenet-c": lenet_c,
    "Cifar-c": cifar_c,
    "AlexNet": alexnet,
    "VGG-A": vgg_a,
    "VGG-B": vgg_b,
    "VGG-C": vgg_c,
    "VGG-D": vgg_d,
    "VGG-E": vgg_e,
}

#: The branching (DAG) additions to the zoo.  Kept separate from
#: :data:`MODEL_BUILDERS` so the paper's figure reproductions (which iterate
#: the ten chains) stay byte-identical; :func:`get_model` and the CLI model
#: listing resolve both.
GRAPH_MODEL_BUILDERS: Dict[str, Callable[[], DNNModel]] = {
    "ResNet-S": resnet_s,
    "Inception-S": inception_s,
}

def all_model_builders() -> Dict[str, Callable[[], DNNModel]]:
    """Every builder: canonical chains, the graph zoo, then parameterized.

    Built per call from the live dicts, so downstream registration
    (``MODEL_BUILDERS["MyNet"] = builder``) is visible to the model
    listing and to :func:`get_model` alike.  Parameterized entries appear
    under their bare family names and build the default depth when called
    with no arguments.
    """
    return {**MODEL_BUILDERS, **GRAPH_MODEL_BUILDERS, **PARAMETERIZED_MODEL_BUILDERS}

#: Aliases accepted by :func:`get_model` in addition to the canonical names.
#: Lookup normalizes case and strips ``-``/``_`` separators on both sides,
#: so every spelling variant of an alias (``vgg-a``, ``vgg_a``, ``VGG_A``)
#: resolves without listing each one.
_ALIASES: Dict[str, str] = {
    "lenet": "Lenet-c",
    "cifar": "Cifar-c",
    "vgg11": "VGG-A",
    "vgg13": "VGG-B",
    "vgg16": "VGG-D",
    "vgg19": "VGG-E",
    "resnet": "ResNet-S",
    "inception": "Inception-S",
}


def _normalize_model_name(name: str) -> str:
    """Case-fold and strip the ``-``/``_`` separators of a model name."""
    return name.strip().lower().replace("-", "").replace("_", "")


def _normalized_lookup(builders: Dict[str, Callable[[], DNNModel]]) -> Dict[str, str]:
    # Built per call (cheap: ~20 short-string normalizations) so live
    # registration stays visible; see :func:`all_model_builders`.
    lookup: Dict[str, str] = {}
    for canonical in builders:
        lookup[_normalize_model_name(canonical)] = canonical
    for alias, canonical in _ALIASES.items():
        lookup.setdefault(_normalize_model_name(alias), canonical)
    return lookup


def _split_parameterized(canonical: str) -> Tuple[Optional[str], Optional[int]]:
    """``(family, depth)`` of a canonical parameterized name, else ``(None, None)``.

    ``"gpt_s"`` -> ``("gpt_s", None)`` (default depth), ``"gpt_s-96"`` ->
    ``("gpt_s", 96)``, ``"VGG-A"`` -> ``(None, None)``.
    """
    if canonical in PARAMETERIZED_MODEL_BUILDERS:
        return canonical, None
    family, separator, suffix = canonical.rpartition("-")
    if separator and family in PARAMETERIZED_MODEL_BUILDERS and suffix.isdigit():
        return family, int(suffix)
    return None, None


def _parse_depth_suffix(normalized: str) -> Optional[str]:
    """Resolve a normalized depth-suffixed spelling to its canonical name.

    ``"gpts96"`` (any of ``gpt_s-96``/``gpt-s-96``/``GPT_S_96``/``gpts96``
    before normalization) -> ``"gpt_s-96"``.  Returns ``None`` when the
    name is not ``<family><digits>`` for a parameterized family.
    """
    match = re.fullmatch(r"([a-z]+?)0*(\d+)", normalized)
    if match is None:
        return None
    family_lookup = {
        _normalize_model_name(family): family for family in PARAMETERIZED_MODEL_BUILDERS
    }
    family = family_lookup.get(match.group(1))
    if family is None:
        return None
    return f"{family}-{int(match.group(2))}"


def canonical_model_name(name: str) -> str:
    """Resolve ``name`` to the canonical zoo spelling without building it.

    Accepts everything :func:`get_model` accepts (case and ``-``/``_``
    variants, aliases, depth-suffixed parameterized spellings such as
    ``gpt_s-96``) and raises the same :class:`KeyError` for unknown names.
    The service layer canonicalizes request payloads with this so
    ``vgg_a`` and ``VGG-A`` hash to the same cache key (and ``gpts96`` /
    ``GPT_S-96`` to ``gpt_s-96``).
    """
    builders = all_model_builders()
    normalized = _normalize_model_name(name)
    canonical = _normalized_lookup(builders).get(normalized)
    if canonical is not None:
        return canonical
    # Depth-suffixed parameterized spellings resolve after the exact table
    # so digit-bearing aliases ("vgg16") and registered names keep winning.
    parameterized = _parse_depth_suffix(normalized)
    if parameterized is not None:
        return parameterized
    known = ", ".join(builders)
    aliases = ", ".join(sorted(_ALIASES))
    parameterized_names = ", ".join(
        f"{family}-<N>" for family in PARAMETERIZED_MODEL_BUILDERS
    )
    raise KeyError(
        f"unknown model {name!r}; known models: {known}; "
        f"aliases (separators '-'/'_' are interchangeable): {aliases}; "
        f"parameterized (depth-N transformer chains): {parameterized_names}"
    )


def get_model(name: str, layers: Optional[int] = None) -> DNNModel:
    """Return one of the evaluation networks by (case-insensitive) name.

    Lookup is tolerant of ``-`` versus ``_`` separators (``vgg-a``,
    ``vgg_a`` and ``VGG_A`` all resolve to ``VGG-A``) and accepts the
    aliases of :data:`_ALIASES` (``lenet``, ``vgg16``, ``resnet``, ...).
    Parameterized transformer chains resolve from the bare family name
    (``gpt_s`` builds the default depth), a depth-suffixed spelling
    (``gpt_s-96``), or the family name plus ``layers=``.

    Raises
    ------
    KeyError
        If the name is not one of the known models or aliases; the message
        lists the canonical names, the accepted aliases, and the
        parameterized families.
    ValueError
        If ``layers`` is passed for a non-parameterized model, or
        contradicts a depth-suffixed spelling (``get_model("gpt_s-96",
        layers=12)``).
    """
    canonical = canonical_model_name(name)
    family, depth = _split_parameterized(canonical)
    if family is not None:
        if layers is not None:
            if depth is not None and depth != layers:
                raise ValueError(
                    f"conflicting depths for {name!r}: name says {depth} "
                    f"blocks but layers={layers}"
                )
            depth = layers
        builder = PARAMETERIZED_MODEL_BUILDERS[family]
        return builder(depth) if depth is not None else builder()
    if layers is not None:
        parameterized_names = ", ".join(PARAMETERIZED_MODEL_BUILDERS)
        raise ValueError(
            f"layers= only applies to the parameterized models "
            f"({parameterized_names}); {canonical!r} has a fixed depth"
        )
    return all_model_builders()[canonical]()


def all_models() -> List[DNNModel]:
    """Build all ten evaluation networks, in the paper's reporting order."""
    return [builder() for builder in MODEL_BUILDERS.values()]


def all_graph_models() -> List[DNNModel]:
    """Build the branching-DAG zoo additions (``ResNet-S``, ``Inception-S``)."""
    return [builder() for builder in GRAPH_MODEL_BUILDERS.values()]
