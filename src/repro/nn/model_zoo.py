"""The ten evaluation networks of the HyPar paper.

Section 6.1 of the paper evaluates HyPar on ten models spanning three
datasets:

* ``SFC`` and ``SCONV`` -- two purpose-built extreme cases for MNIST
  (Table 3): ``SFC`` is purely fully-connected (784-8192-8192-8192-10) and
  ``SCONV`` is purely convolutional.
* ``Lenet-c`` (MNIST) and ``Cifar-c`` (CIFAR-10) -- the classic Caffe
  reference networks.
* ``AlexNet`` and ``VGG-A`` ... ``VGG-E`` (ImageNet) -- with the
  hyper-parameters from Krizhevsky et al. (2012) and Simonyan & Zisserman
  (2015) respectively.

The number of weighted layers ranges from four (``SFC``, ``SCONV``,
``Lenet-c``) to nineteen (``VGG-E``), matching the paper's description.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.nn.layers import Activation, ConvLayer, FCLayer, LayerSpec, PoolSpec
from repro.nn.model import DNNModel, build_model

MNIST_INPUT = (28, 28, 1)
CIFAR_INPUT = (32, 32, 3)
IMAGENET_INPUT = (224, 224, 3)
ALEXNET_INPUT = (227, 227, 3)


def sfc() -> DNNModel:
    """``SFC``: the all-fully-connected extreme case (Table 3).

    Architecture 784-8192-8192-8192-10; four weighted layers, no
    convolutions.  The paper reports 98.28% MNIST accuracy for this network
    and uses it to show that Model Parallelism can beat Data Parallelism
    when every layer is fully connected.
    """
    return build_model(
        "SFC",
        MNIST_INPUT,
        [
            FCLayer(name="fc1", out_features=8192),
            FCLayer(name="fc2", out_features=8192),
            FCLayer(name="fc3", out_features=8192),
            FCLayer(name="fc4", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def sconv() -> DNNModel:
    """``SCONV``: the all-convolutional extreme case (Table 3).

    ``20@5x5, 50@5x5 (2x2 max pool), 50@5x5, 10@5x5 (2x2 max pool)``; four
    weighted layers, no fully-connected layers.  The paper reports 98.71%
    MNIST accuracy and uses it to show that pure Data Parallelism is optimal
    when every layer is convolutional.
    """
    return build_model(
        "SCONV",
        MNIST_INPUT,
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv3", out_channels=50, kernel_size=5),
            ConvLayer(
                name="conv4",
                out_channels=10,
                kernel_size=5,
                pool=PoolSpec(2),
                activation=Activation.SOFTMAX,
            ),
        ],
    )


def lenet_c() -> DNNModel:
    """``Lenet-c``: the Caffe LeNet reference network for MNIST.

    Two convolutional layers followed by two fully-connected layers (four
    weighted layers), as in Figure 5 (c) of the paper.
    """
    return build_model(
        "Lenet-c",
        MNIST_INPUT,
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            FCLayer(name="fc1", out_features=500),
            FCLayer(name="fc2", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def cifar_c() -> DNNModel:
    """``Cifar-c``: the Caffe CIFAR-10 "quick" reference network.

    Three convolutional layers and two fully-connected layers (five weighted
    layers), as in Figure 5 (d).
    """
    return build_model(
        "Cifar-c",
        CIFAR_INPUT,
        [
            ConvLayer(
                name="conv1",
                out_channels=32,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, ceil_mode=True),
            ),
            ConvLayer(
                name="conv2",
                out_channels=32,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, kind="avg", ceil_mode=True),
            ),
            ConvLayer(
                name="conv3",
                out_channels=64,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2, kind="avg", ceil_mode=True),
            ),
            FCLayer(name="fc1", out_features=64),
            FCLayer(name="fc2", out_features=10, activation=Activation.SOFTMAX),
        ],
    )


def alexnet() -> DNNModel:
    """``AlexNet`` (Krizhevsky et al., 2012): five conv + three fc layers."""
    return build_model(
        "AlexNet",
        ALEXNET_INPUT,
        [
            ConvLayer(
                name="conv1",
                out_channels=96,
                kernel_size=11,
                stride=4,
                pool=PoolSpec(3, stride=2),
            ),
            ConvLayer(
                name="conv2",
                out_channels=256,
                kernel_size=5,
                padding=2,
                pool=PoolSpec(3, stride=2),
            ),
            ConvLayer(name="conv3", out_channels=384, kernel_size=3, padding=1),
            ConvLayer(name="conv4", out_channels=384, kernel_size=3, padding=1),
            ConvLayer(
                name="conv5",
                out_channels=256,
                kernel_size=3,
                padding=1,
                pool=PoolSpec(3, stride=2),
            ),
            FCLayer(name="fc1", out_features=4096),
            FCLayer(name="fc2", out_features=4096),
            FCLayer(name="fc3", out_features=1000, activation=Activation.SOFTMAX),
        ],
    )


def _vgg_classifier() -> List[LayerSpec]:
    """The three fully-connected layers shared by all VGG variants."""
    return [
        FCLayer(name="fc1", out_features=4096),
        FCLayer(name="fc2", out_features=4096),
        FCLayer(name="fc3", out_features=1000, activation=Activation.SOFTMAX),
    ]


def _vgg_conv(name: str, channels: int, kernel_size: int = 3, pool: bool = False) -> ConvLayer:
    """One VGG convolution: 3x3 pad 1 by default, optional trailing 2x2 max pool."""
    padding = 1 if kernel_size == 3 else 0
    return ConvLayer(
        name=name,
        out_channels=channels,
        kernel_size=kernel_size,
        padding=padding,
        pool=PoolSpec(2) if pool else None,
    )


def vgg_a() -> DNNModel:
    """``VGG-A`` (configuration A, 11 weighted layers)."""
    return build_model(
        "VGG-A",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64, pool=True),
            _vgg_conv("conv2_1", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_b() -> DNNModel:
    """``VGG-B`` (configuration B, 13 weighted layers)."""
    return build_model(
        "VGG-B",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_c() -> DNNModel:
    """``VGG-C`` (configuration C, 16 weighted layers; the extra per-block convs are 1x1)."""
    return build_model(
        "VGG-C",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256, kernel_size=1, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512, kernel_size=1, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512, kernel_size=1, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_d() -> DNNModel:
    """``VGG-D`` (configuration D, 16 weighted layers, all 3x3 -- the common "VGG-16")."""
    return build_model(
        "VGG-D",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


def vgg_e() -> DNNModel:
    """``VGG-E`` (configuration E, 19 weighted layers -- the common "VGG-19")."""
    return build_model(
        "VGG-E",
        IMAGENET_INPUT,
        [
            _vgg_conv("conv1_1", 64),
            _vgg_conv("conv1_2", 64, pool=True),
            _vgg_conv("conv2_1", 128),
            _vgg_conv("conv2_2", 128, pool=True),
            _vgg_conv("conv3_1", 256),
            _vgg_conv("conv3_2", 256),
            _vgg_conv("conv3_3", 256),
            _vgg_conv("conv3_4", 256, pool=True),
            _vgg_conv("conv4_1", 512),
            _vgg_conv("conv4_2", 512),
            _vgg_conv("conv4_3", 512),
            _vgg_conv("conv4_4", 512, pool=True),
            _vgg_conv("conv5_1", 512),
            _vgg_conv("conv5_2", 512),
            _vgg_conv("conv5_3", 512),
            _vgg_conv("conv5_4", 512, pool=True),
            *_vgg_classifier(),
        ],
    )


#: Ordered mapping from canonical model name to its builder.  The order
#: matches the x-axis of Figures 6-8 and 12 of the paper.
MODEL_BUILDERS: Dict[str, Callable[[], DNNModel]] = {
    "SFC": sfc,
    "SCONV": sconv,
    "Lenet-c": lenet_c,
    "Cifar-c": cifar_c,
    "AlexNet": alexnet,
    "VGG-A": vgg_a,
    "VGG-B": vgg_b,
    "VGG-C": vgg_c,
    "VGG-D": vgg_d,
    "VGG-E": vgg_e,
}

#: Aliases accepted by :func:`get_model` in addition to the canonical names.
_ALIASES: Dict[str, str] = {
    "sfc": "SFC",
    "sconv": "SCONV",
    "lenet": "Lenet-c",
    "lenet-c": "Lenet-c",
    "lenet_c": "Lenet-c",
    "cifar": "Cifar-c",
    "cifar-c": "Cifar-c",
    "cifar_c": "Cifar-c",
    "alexnet": "AlexNet",
    "vgg-a": "VGG-A",
    "vgg_a": "VGG-A",
    "vgg11": "VGG-A",
    "vgg-b": "VGG-B",
    "vgg_b": "VGG-B",
    "vgg13": "VGG-B",
    "vgg-c": "VGG-C",
    "vgg_c": "VGG-C",
    "vgg-d": "VGG-D",
    "vgg_d": "VGG-D",
    "vgg16": "VGG-D",
    "vgg-e": "VGG-E",
    "vgg_e": "VGG-E",
    "vgg19": "VGG-E",
}


def get_model(name: str) -> DNNModel:
    """Return one of the ten evaluation networks by (case-insensitive) name.

    Raises
    ------
    KeyError
        If the name is not one of the known models or aliases.
    """
    canonical = name if name in MODEL_BUILDERS else _ALIASES.get(name.lower())
    if canonical is None or canonical not in MODEL_BUILDERS:
        known = ", ".join(MODEL_BUILDERS)
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_BUILDERS[canonical]()


def all_models() -> List[DNNModel]:
    """Build all ten evaluation networks, in the paper's reporting order."""
    return [builder() for builder in MODEL_BUILDERS.values()]
