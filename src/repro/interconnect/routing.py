"""Routing helpers shared by the topology models.

These utilities answer structural questions about a topology graph that the
simulator and the topology studies need: shortest paths between
accelerators, bisection bandwidth, and link-load estimates when a
hierarchical traffic pattern is mapped onto a physical graph.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import networkx as nx

from repro.interconnect.topology import Topology, hierarchical_groups


def shortest_path_hops(topology: Topology, source: int, destination: int) -> int:
    """Number of link hops on the shortest path between two accelerators."""
    return nx.shortest_path_length(topology.graph, source, destination)


def bisection_bandwidth(topology: Topology) -> float:
    """Bandwidth crossing the top-level bisection of the array (bytes/s)."""
    pairs = hierarchical_groups(topology.num_accelerators, 0)
    left, right = pairs[0]
    return topology._cut_bandwidth(left, right)


def pairwise_hop_matrix(topology: Topology) -> Dict[Tuple[int, int], int]:
    """Hop counts between every ordered pair of accelerators."""
    lengths = dict(nx.all_pairs_shortest_path_length(topology.graph))
    accelerators = range(topology.num_accelerators)
    return {
        (a, b): lengths[a][b]
        for a in accelerators
        for b in accelerators
        if a != b
    }


def link_loads(
    topology: Topology,
    traffic_bytes_per_level: Sequence[float],
) -> Dict[Tuple, float]:
    """Bytes carried by each physical link for a hierarchical traffic pattern.

    ``traffic_bytes_per_level[h]`` is the traffic crossing *one* pair
    boundary at hierarchy level ``h``.  The traffic of every boundary at
    every level is routed over shortest paths (split evenly across the
    members of the two groups) and accumulated per link.  The result lets a
    study check how evenly a topology spreads HyPar's traffic.
    """
    graph = topology.graph
    loads: Dict[Tuple, float] = {tuple(sorted(edge, key=str)): 0.0 for edge in graph.edges}
    for level, traffic in enumerate(traffic_bytes_per_level):
        if traffic < 0:
            raise ValueError("traffic volumes must be non-negative")
        if traffic == 0:
            continue
        for left, right in hierarchical_groups(topology.num_accelerators, level):
            num_flows = len(left) * len(right)
            per_flow = traffic / num_flows
            for a in left:
                for b in right:
                    path = nx.shortest_path(graph, a, b)
                    for u, v in zip(path, path[1:]):
                        key = tuple(sorted((u, v), key=str))
                        loads[key] += per_flow
    return loads


def max_link_load(
    topology: Topology,
    traffic_bytes_per_level: Sequence[float],
) -> float:
    """The most-loaded link's traffic for a hierarchical pattern (bytes)."""
    loads = link_loads(topology, traffic_bytes_per_level)
    return max(loads.values()) if loads else 0.0
